//! Forward recovery — §3.3 of the paper:
//!
//! > "In most WFMSs the execution of a process is persistent in the
//! > sense that forward recovery is always guaranteed … In case of
//! > failures, the process execution will stop. Once the failures have
//! > been repaired, the process execution is resumed from the point
//! > where the failure occurred."
//!
//! Recovery rebuilds every instance's scope tree by replaying the
//! journal, then applies the paper's explicit caveat: activities that
//! were mid-execution at the crash are **re-executed from the
//! beginning** (workflow activities are not failure atomic; it is the
//! designer's job to make programs re-runnable — our substrate
//! programs are transactions, so an interrupted one simply never
//! committed).
//!
//! The journal records human-readable string paths (it is an audit
//! trail first); replay resolves them against the **compiled
//! template** once per event, and all reconstructed state lands in the
//! same slot-indexed [`StateSlab`](crate::state::StateSlab) the live
//! navigator runs on — compilation is deterministic, so slots assigned
//! at recovery address exactly the state the crashed engine used.

use crate::compiled::{CompiledProcess, ScopeId};
use crate::engine::{Engine, EngineConfig};
use crate::event::{Event, InstanceId};
use crate::journal::Journal;
use crate::metrics::EngineObs;
use crate::navigator::{self, NavServices};
use crate::org::OrgModel;
use crate::registry::TemplateRegistry;
use crate::state::{split_path, ActState, Instance, InstanceStatus};
use crate::worklist::{WorkItem, WorkItemState, WorklistStore};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry};
use wfms_model::ProcessDefinition;
use wfms_observe::Observer;

/// Errors surfaced by recovery.
#[derive(Debug)]
pub enum RecoveryError {
    /// The journal references a process template that was not supplied
    /// to [`recover`]. Templates are definitions, not state, so they
    /// are re-registered by the operator, exactly as in FlowMark where
    /// process templates live in the definition database.
    MissingTemplate(String),
    /// The journal pins an instance to a template *version* (spec
    /// content hash) that none of the supplied definitions hashes to —
    /// the operator re-registered an **edited** spec, which would
    /// silently replay the journal against the wrong template.
    MissingVersion {
        /// Process name.
        process: String,
        /// The pinned version (hex spec hash) no supplied definition
        /// matches.
        version: String,
    },
    /// A journalled `Migrated` event could not be re-applied — the
    /// journal and the supplied templates disagree about the state
    /// transfer that succeeded live.
    Migration {
        /// The instance being migrated.
        instance: InstanceId,
        /// Why the transfer was refused.
        detail: String,
    },
    /// The journal file could not be read.
    Io(std::io::Error),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::MissingTemplate(t) => {
                write!(f, "journal references unknown template {t:?}")
            }
            RecoveryError::MissingVersion { process, version } => write!(
                f,
                "journal pins process {process:?} to version {version}, but no supplied \
                 definition has that content hash — the spec changed; re-register the \
                 original definition (or deploy the new one side-by-side)"
            ),
            RecoveryError::Migration { instance, detail } => {
                write!(
                    f,
                    "cannot re-apply journalled migration of {instance}: {detail}"
                )
            }
            RecoveryError::Io(e) => write!(f, "journal unreadable: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Rebuilds an engine from the journal at `journal_path`.
///
/// `templates` must contain every process definition the journal's
/// instances were started from. The rebuilt engine appends new events
/// to the same journal file, so crash–recover cycles can be chained.
pub fn recover(
    journal_path: &Path,
    templates: Vec<ProcessDefinition>,
    org: OrgModel,
    multidb: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
) -> Result<Engine, RecoveryError> {
    recover_with_policy(
        journal_path,
        txn_substrate::DurabilityPolicy::default(),
        templates,
        org,
        multidb,
        programs,
    )
}

/// [`recover`] with an explicit [`txn_substrate::DurabilityPolicy`]
/// for the reopened journal. A server shard running under group
/// commit (`Batched{n}`) recovers with the same policy so the
/// rebuilt engine keeps batching instead of silently reverting to
/// per-event flushes.
pub fn recover_with_policy(
    journal_path: &Path,
    policy: txn_substrate::DurabilityPolicy,
    templates: Vec<ProcessDefinition>,
    org: OrgModel,
    multidb: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
) -> Result<Engine, RecoveryError> {
    let journal = Journal::with_file_policy(journal_path, policy).map_err(RecoveryError::Io)?;
    let events = journal.events();
    recover_from(journal, events, templates, org, multidb, programs)
}

/// In-memory variant used by tests and benchmarks: rebuilds from an
/// explicit event list (the journal keeps accumulating into `journal`;
/// if it is empty the replayed events are seeded into it first, so
/// the recovered engine's history matches the file-based variant).
pub fn recover_from(
    journal: Journal,
    events: Vec<Event>,
    templates: Vec<ProcessDefinition>,
    org: OrgModel,
    multidb: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
) -> Result<Engine, RecoveryError> {
    if journal.is_empty() {
        for ev in &events {
            journal.append(ev.clone());
        }
    }
    // The supplied definitions seed the registry in order; the *first*
    // definition per name fixes that name's initial default, and
    // journalled TemplateDeployed events advance it during replay —
    // so every InstanceStarted resolves against the same default the
    // live engine used at that journal position.
    let mut registry = TemplateRegistry::new();
    for d in templates {
        let tpl = Arc::new(CompiledProcess::compile_arc(Arc::new(d)));
        registry.insert(tpl, false);
    }

    let mut instances: BTreeMap<InstanceId, Instance> = BTreeMap::new();
    let mut worklists = WorklistStore::new();
    let mut next_instance = 1u64;
    let mut next_item = 1u64;
    let mut max_tick = 0;

    for ev in &events {
        max_tick = max_tick.max(ev.at());
        apply(
            ev,
            &mut registry,
            &mut instances,
            &mut worklists,
            &mut next_instance,
            &mut next_item,
        )?;
    }

    // Rebuild the ready queues: replay set activity states directly,
    // bypassing the live navigator's queue maintenance.
    for inst in instances.values_mut() {
        inst.rebuild_ready();
    }

    // Claims are leases held by a live session: the replay just
    // re-claimed items for workers that died with the crashed engine,
    // which would park those items on dead worklists forever. Put them
    // back on offer. Not journalled — replaying the same journal again
    // (a chained crash–recover cycle) re-claims and re-releases
    // identically, so the repair is deterministic.
    let stale_claims = worklists.release_stale_claims();

    let clock = multidb.clock().clone();
    clock.advance_to(max_tick);

    let engine = Engine {
        templates: Mutex::new(registry),
        instances: Mutex::new(instances),
        org: Mutex::new(org),
        worklists: Mutex::new(worklists),
        journal,
        next_instance: AtomicU64::new(next_instance),
        next_item: AtomicU64::new(next_item),
        step_limit: EngineConfig::default().step_limit,
        programs,
        multidb,
        clock,
        obs: EngineObs::new(Arc::new(Observer::disabled())),
        probes: Mutex::new(HashMap::new()),
    };
    if stale_claims > 0 {
        engine
            .obs
            .observer
            .registry()
            .counter("recovery.stale_claims_released")
            .add(stale_claims as u64);
    }

    resume(&engine);
    Ok(engine)
}

/// Applies one journal event to the state under reconstruction.
fn apply(
    ev: &Event,
    registry: &mut TemplateRegistry,
    instances: &mut BTreeMap<InstanceId, Instance>,
    worklists: &mut WorklistStore,
    next_instance: &mut u64,
    next_item: &mut u64,
) -> Result<(), RecoveryError> {
    match ev {
        Event::InstanceStarted {
            instance,
            process,
            tenant,
            input,
            ..
        } => {
            // The default at this journal position — TemplateDeployed
            // events earlier in the journal have already advanced it.
            let tpl = registry
                .default_tpl(process)
                .ok_or_else(|| RecoveryError::MissingTemplate(process.clone()))?;
            let mut inst = Instance::new(*instance, tpl);
            inst.tenant = tenant.clone();
            for (k, v) in input.iter() {
                inst.root_input_mut().set(k, v.clone());
            }
            *next_instance = (*next_instance).max(instance.0 + 1);
            instances.insert(*instance, inst);
        }
        Event::ActivityReady {
            instance,
            path,
            attempt,
            at,
        } => with_slot(instances, *instance, path, |inst, slot| {
            inst.set_act_state(slot, ActState::Ready);
            inst.slab.attempt[slot as usize] = *attempt;
            inst.slab.ready_since[slot as usize] = Some(*at);
            inst.slab.notified[slot as usize] = false;
        }),
        Event::ActivityStarted {
            instance,
            path,
            input,
            ..
        } => {
            with_slot(instances, *instance, path, |inst, slot| {
                inst.set_act_state(slot, ActState::Running);
                inst.slab.input[slot as usize] = input.clone();
                // A started block opens its child scope; the child's
                // own events follow in the journal.
                if let Some(c) = inst.tpl.layout.block_child[slot as usize] {
                    inst.open_scope(c);
                    for (k, v) in input.iter() {
                        inst.slab.scope_input[c as usize].set(k, v.clone());
                    }
                }
            });
        }
        Event::ActivityFinished {
            instance,
            path,
            output,
            ..
        } => {
            with_slot(instances, *instance, path, |inst, slot| {
                inst.set_act_state(slot, ActState::Finished);
                inst.slab.output[slot as usize] = output.clone();
            });
            // Mirror the live navigator: finishing an activity closes
            // its work items (a reschedule re-offers a fresh one via
            // the following WorkItemOffered event).
            worklists.close_for(*instance, path);
        }
        Event::ActivityRescheduled {
            instance,
            path,
            next_attempt,
            ..
        } => {
            with_slot(instances, *instance, path, |inst, slot| {
                if let Some(c) = inst.tpl.layout.block_child[slot as usize] {
                    inst.close_scope(c);
                }
                inst.set_act_state(slot, ActState::Waiting);
                inst.slab.attempt[slot as usize] = *next_attempt;
            });
        }
        Event::ActivityTerminated {
            instance,
            path,
            executed,
            ..
        } => {
            with_slot(instances, *instance, path, |inst, slot| {
                let sl = slot as usize;
                inst.set_act_state(slot, ActState::Terminated);
                inst.slab.executed[sl] = *executed;
                // Re-apply the activity-output → scope-output data
                // connectors, as the navigator did live.
                if *executed {
                    let tpl = Arc::clone(&inst.tpl);
                    let s = tpl.layout.owner[sl] as usize;
                    let output = inst.slab.output[sl].clone();
                    for (from, to) in &tpl.layout.act(slot).data_out {
                        if let Some(v) = output.get(from) {
                            inst.slab.scope_output[s].set(to, v.clone());
                        }
                    }
                }
            });
            worklists.close_for(*instance, path);
        }
        Event::ConnectorEvaluated {
            instance,
            scope,
            from,
            to,
            value,
            ..
        } => {
            let scope_names = split_path(scope);
            if let Some(inst) = instances.get_mut(instance) {
                let tpl = Arc::clone(&inst.tpl);
                if let Some(s) = tpl
                    .resolve_path(&scope_names)
                    .and_then(|ids| inst.live_scope_of(&ids))
                {
                    let m = tpl.layout.scope(s);
                    if let Some(edge) = m.cs.edge_id(from, to) {
                        inst.slab.connectors[(m.edge_base + edge) as usize] = Some(*value);
                    }
                }
            }
        }
        Event::WorkItemOffered {
            instance,
            path,
            item,
            persons,
            at,
        } => {
            *next_item = (*next_item).max(item.0 + 1);
            worklists.offer(WorkItem {
                id: *item,
                instance: *instance,
                path: path.to_string(),
                attempt: 0,
                offered_to: persons.clone(),
                state: WorkItemState::Offered,
                offered_at: *at,
            });
        }
        Event::WorkItemClaimed { item, person, .. } => {
            let _ = worklists.claim(*item, person);
        }
        Event::NotificationSent { instance, path, .. } => {
            with_slot(instances, *instance, path, |inst, slot| {
                inst.slab.notified[slot as usize] = true;
            })
        }
        Event::UserIntervention { .. } => {}
        Event::InstanceFinished {
            instance, output, ..
        } => {
            if let Some(inst) = instances.get_mut(instance) {
                inst.status = InstanceStatus::Finished;
                for (k, v) in output.iter() {
                    inst.root_output_mut().set(k, v.clone());
                }
            }
        }
        Event::InstanceCancelled { instance, .. } => {
            if let Some(inst) = instances.get_mut(instance) {
                inst.status = InstanceStatus::Cancelled;
            }
            let stale: Vec<_> = worklists
                .open_items()
                .iter()
                .filter(|it| it.instance == *instance)
                .map(|it| it.id)
                .collect();
            for id in stale {
                worklists.close(id);
            }
        }
        Event::EngineCheckpoint {
            instances: snaps,
            items,
            next_instance: ni,
            next_item: nw,
            ..
        } => {
            // A checkpoint is the complete engine state: replace
            // everything reconstructed so far and continue applying
            // the tail on top of it.
            instances.clear();
            for snap in snaps {
                // Snapshots resolve by pinned version, not by name —
                // two instances of one process may be on different
                // versions at checkpoint time.
                let tpl = registry.by_version(&snap.version).ok_or_else(|| {
                    RecoveryError::MissingVersion {
                        process: snap.process.clone(),
                        version: snap.version.clone(),
                    }
                })?;
                let mut inst = Instance::new(snap.id, tpl);
                inst.status = snap.status;
                inst.tenant = snap.tenant.clone();
                inst.restore_root(&snap.root);
                instances.insert(snap.id, inst);
            }
            *worklists = WorklistStore::new();
            for item in items {
                worklists.offer(item.clone());
            }
            *next_instance = *ni;
            *next_item = *nw;
        }
        Event::TemplateDeployed {
            process, version, ..
        } => {
            let hash = u64::from_str_radix(version, 16).unwrap_or(0);
            if !registry.set_default(process, hash) {
                return Err(RecoveryError::MissingVersion {
                    process: process.clone(),
                    version: version.clone(),
                });
            }
        }
        Event::Migrated { instance, to, .. } => {
            // Replay the state transfer only; the live engine's
            // post-transfer fix-up events follow in the journal (or,
            // after a crash right here, `resume` re-derives them).
            if let Some(inst) = instances.get_mut(instance) {
                let target =
                    registry
                        .by_version(to)
                        .ok_or_else(|| RecoveryError::MissingVersion {
                            process: inst.tpl.name().to_owned(),
                            version: to.clone(),
                        })?;
                let migrated =
                    inst.migrate_to(&target)
                        .map_err(|detail| RecoveryError::Migration {
                            instance: *instance,
                            detail,
                        })?;
                *inst = migrated;
            }
        }
    }
    Ok(())
}

/// Resolves a journalled string path to its **live** global act slot
/// against the instance's compiled template (every enclosing scope
/// must be open) and hands both to `f`.
fn with_slot(
    instances: &mut BTreeMap<InstanceId, Instance>,
    instance: InstanceId,
    path: &str,
    f: impl FnOnce(&mut Instance, u32),
) {
    let Some(inst) = instances.get_mut(&instance) else {
        return;
    };
    let Some(slot) = inst
        .tpl
        .resolve_path(&split_path(path))
        .and_then(|ids| inst.live_slot_of(&ids))
    else {
        return;
    };
    f(inst, slot);
}

/// Post-replay fix-ups for the (at most one) navigation operation the
/// crash interrupted mid-append:
///
/// * re-ready crashed `Running` program activities (§3.3: re-executed
///   from the beginning);
/// * re-seed/re-decide `Waiting` activities whose ready/dead decision
///   event was cut off (lost seeding after `InstanceStarted`, lost
///   re-ready after `ActivityRescheduled`, lost join decision after
///   the final `ConnectorEvaluated`);
/// * complete the outgoing-connector evaluations of `Terminated`
///   activities interrupted mid-cascade — processed innermost-first
///   (reverse order of their `ActivityTerminated` events), unwinding
///   the crashed navigation's call stack the way the live run would
///   have;
/// * re-decide `Finished` activities whose exit decision was lost;
/// * re-check scope completion (in case the crash hit between the last
///   termination and the completion event).
fn resume(engine: &Engine) {
    let events = engine.journal.events();
    let mut instances = engine.instances.lock();
    let svc = crate::navigator::NavServices {
        journal: &engine.journal,
        clock: &engine.clock,
        org: &engine.org,
        worklists: &engine.worklists,
        next_item: &engine.next_item,
        programs: &engine.programs,
        multidb: &engine.multidb,
        obs: &engine.obs,
    };
    // Recovery is cold: count every fix-up category unconditionally so
    // `Engine::metrics` answers "what did recovery repair" even on
    // engines without an enabled observer.
    let reg = engine.obs.observer.registry();
    for inst in instances.values_mut() {
        if inst.status != InstanceStatus::Running {
            continue;
        }
        let counts = fixup_instance(inst, &svc, &events);
        counts.record(reg, "recovery.fixups");
    }
}

/// How much navigation one fix-up pass repaired, by category.
#[derive(Default)]
pub(crate) struct FixupCounts {
    pub(crate) running_restarted: u64,
    pub(crate) waiting_renavigated: u64,
    pub(crate) connectors_reevaluated: u64,
    pub(crate) exits_redecided: u64,
}

impl FixupCounts {
    /// Adds the counts to `prefix`-namespaced registry counters
    /// (`recovery.fixups` for cold recovery, `migration.fixups` for
    /// live migration repair).
    pub(crate) fn record(&self, reg: &wfms_observe::Registry, prefix: &str) {
        reg.counter(&format!("{prefix}.running_restarted"))
            .add(self.running_restarted);
        reg.counter(&format!("{prefix}.waiting_renavigated"))
            .add(self.waiting_renavigated);
        reg.counter(&format!("{prefix}.connectors_reevaluated"))
            .add(self.connectors_reevaluated);
        reg.counter(&format!("{prefix}.exits_redecided"))
            .add(self.exits_redecided);
    }
}

/// Repairs the navigation one instance is owed: the per-instance body
/// of [`resume`], also applied after a live
/// [`Engine::migrate_to_default`](crate::Engine::migrate_to_default)
/// state transfer (a migrated frontier owes exactly the same kinds of
/// navigation as a crashed one — joins to re-decide, connector
/// cascades to finish, exits to re-check). Journals live events
/// through `svc`; `events` is the journal content used to order
/// terminated-cascade repairs.
pub(crate) fn fixup_instance(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    events: &[Event],
) -> FixupCounts {
    // Collect fix-up targets (deepest scopes last-in so child
    // fixes land before parent completion checks).
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let mut fx = Fixups::default();
    collect_fixups(inst, 0, &mut fx);
    let counts = FixupCounts {
        running_restarted: fx.running_programs.len() as u64,
        waiting_renavigated: fx.waiting.len() as u64,
        connectors_reevaluated: fx.terminated_missing.len() as u64,
        exits_redecided: fx.finished.len() as u64,
    };

    // Offers come first: the live run journals `WorkItemOffered`
    // immediately after `ActivityReady`, so a lost offer is the
    // earliest missing event a crash can leave behind.
    for slot in fx.ready {
        navigator::reoffer_ready(inst, svc, slot);
    }
    for slot in fx.running_programs {
        navigator::reset_running_to_ready(inst, svc, slot);
    }
    for slot in fx.waiting {
        navigator::renavigate_waiting(inst, svc, slot);
    }
    // A crash inside a dead-path cascade leaves a *stack* of
    // terminated activities with unevaluated outgoing connectors:
    // terminate(A) → update_target(B) → terminate(B) → … died
    // somewhere inside B. The live run would finish B's edges
    // before returning to A's remaining ones, so process the
    // stack innermost-first — i.e. in reverse order of the
    // `ActivityTerminated` events in the journal.
    let mut terminated: Vec<(usize, u32)> = fx
        .terminated_missing
        .into_iter()
        .map(|slot| {
            let ps: &str = &lay.paths[slot as usize];
            let pos = events
                .iter()
                .rposition(|e| {
                    matches!(e, Event::ActivityTerminated { instance, path, .. }
                        if *instance == inst.id && *path == *ps)
                })
                .unwrap_or(0);
            (pos, slot)
        })
        .collect();
    terminated.sort_by_key(|(pos, _)| std::cmp::Reverse(*pos));
    for (_, slot) in terminated {
        navigator::reevaluate_outgoing(inst, svc, slot);
    }
    for slot in fx.finished {
        navigator::decide_exit(inst, svc, slot);
    }
    fx.scopes
        .sort_by_key(|&s| std::cmp::Reverse(lay.scope(s).depth));
    for scope in fx.scopes {
        if inst.status != InstanceStatus::Running {
            break;
        }
        navigator::check_scope_completion(inst, svc, scope);
    }
    counts
}

/// Fix-up targets gathered in one depth-first declaration-order walk,
/// as global act slots (and [`ScopeId`]s for the completion checks).
#[derive(Default)]
struct Fixups {
    running_programs: Vec<u32>,
    waiting: Vec<u32>,
    terminated_missing: Vec<u32>,
    finished: Vec<u32>,
    /// `Ready` manual activities — re-offered if their work item was
    /// lost with the crash (offer not yet durable).
    ready: Vec<u32>,
    scopes: Vec<ScopeId>,
}

fn collect_fixups(inst: &Instance, s: ScopeId, fx: &mut Fixups) {
    let lay = &inst.tpl.layout;
    fx.scopes.push(s);
    let m = lay.scope(s);
    for i in 0..m.cs.acts.len() {
        let slot = m.act_base + i as u32;
        let sl = slot as usize;
        match inst.slab.state[sl] {
            ActState::Running => match lay.block_child[sl] {
                Some(c) if inst.slab.scope_live[c as usize] => collect_fixups(inst, c, fx),
                // Block recorded running but its child scope was never
                // opened (crash inside execute): restart it, exactly
                // like an interrupted program.
                _ => fx.running_programs.push(slot),
            },
            ActState::Waiting => fx.waiting.push(slot),
            ActState::Terminated => {
                if m.cs.acts[i]
                    .outgoing
                    .iter()
                    .any(|&e| inst.slab.connectors[(m.edge_base + e) as usize].is_none())
                {
                    fx.terminated_missing.push(slot);
                }
            }
            ActState::Finished => fx.finished.push(slot),
            ActState::Ready => {
                if !lay.automatic[sl] {
                    fx.ready.push(slot);
                }
            }
        }
    }
}
