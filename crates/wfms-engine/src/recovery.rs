//! Forward recovery — §3.3 of the paper:
//!
//! > "In most WFMSs the execution of a process is persistent in the
//! > sense that forward recovery is always guaranteed … In case of
//! > failures, the process execution will stop. Once the failures have
//! > been repaired, the process execution is resumed from the point
//! > where the failure occurred."
//!
//! Recovery rebuilds every instance's scope tree by replaying the
//! journal, then applies the paper's explicit caveat: activities that
//! were mid-execution at the crash are **re-executed from the
//! beginning** (workflow activities are not failure atomic; it is the
//! designer's job to make programs re-runnable — our substrate
//! programs are transactions, so an interrupted one simply never
//! committed).

use crate::engine::{Engine, EngineConfig, Inner};
use crate::event::{Event, InstanceId};
use crate::journal::Journal;
use crate::navigator;
use crate::org::OrgModel;
use crate::state::{split_path, ActState, Instance, InstanceStatus, ScopeState};
use crate::worklist::{WorkItem, WorkItemState, WorklistStore};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry};
use wfms_model::{ActivityKind, ProcessDefinition};

/// Errors surfaced by recovery.
#[derive(Debug)]
pub enum RecoveryError {
    /// The journal references a process template that was not supplied
    /// to [`recover`]. Templates are definitions, not state, so they
    /// are re-registered by the operator, exactly as in FlowMark where
    /// process templates live in the definition database.
    MissingTemplate(String),
    /// The journal file could not be read.
    Io(std::io::Error),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::MissingTemplate(t) => {
                write!(f, "journal references unknown template {t:?}")
            }
            RecoveryError::Io(e) => write!(f, "journal unreadable: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Rebuilds an engine from the journal at `journal_path`.
///
/// `templates` must contain every process definition the journal's
/// instances were started from. The rebuilt engine appends new events
/// to the same journal file, so crash–recover cycles can be chained.
pub fn recover(
    journal_path: &Path,
    templates: Vec<ProcessDefinition>,
    org: OrgModel,
    multidb: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
) -> Result<Engine, RecoveryError> {
    let journal = Journal::with_file(journal_path).map_err(RecoveryError::Io)?;
    let events = journal.events();
    recover_from(journal, events, templates, org, multidb, programs)
}

/// In-memory variant used by tests and benchmarks: rebuilds from an
/// explicit event list (the journal keeps accumulating into `journal`;
/// if it is empty the replayed events are seeded into it first, so
/// the recovered engine's history matches the file-based variant).
pub fn recover_from(
    journal: Journal,
    events: Vec<Event>,
    templates: Vec<ProcessDefinition>,
    org: OrgModel,
    multidb: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
) -> Result<Engine, RecoveryError> {
    if journal.is_empty() {
        for ev in &events {
            journal.append(ev.clone());
        }
    }
    let template_map: HashMap<String, Arc<ProcessDefinition>> = templates
        .into_iter()
        .map(|d| (d.name.clone(), Arc::new(d)))
        .collect();

    let mut instances: BTreeMap<InstanceId, Instance> = BTreeMap::new();
    let mut worklists = WorklistStore::new();
    let mut next_instance = 1u64;
    let mut next_item = 1u64;
    let mut max_tick = 0;

    for ev in &events {
        max_tick = max_tick.max(ev.at());
        apply(
            ev,
            &template_map,
            &mut instances,
            &mut worklists,
            &mut next_instance,
            &mut next_item,
        )?;
    }

    let clock = multidb.clock().clone();
    clock.advance_to(max_tick);

    let engine = Engine {
        inner: Mutex::new(Inner {
            templates: template_map,
            instances,
            org,
            worklists,
            journal,
            next_instance,
            next_item,
            step_limit: EngineConfig::default().step_limit,
        }),
        programs,
        multidb,
        clock,
    };

    resume(&engine);
    Ok(engine)
}

/// Applies one journal event to the state under reconstruction.
fn apply(
    ev: &Event,
    templates: &HashMap<String, Arc<ProcessDefinition>>,
    instances: &mut BTreeMap<InstanceId, Instance>,
    worklists: &mut WorklistStore,
    next_instance: &mut u64,
    next_item: &mut u64,
) -> Result<(), RecoveryError> {
    match ev {
        Event::InstanceStarted {
            instance,
            process,
            input,
            ..
        } => {
            let def = templates
                .get(process)
                .ok_or_else(|| RecoveryError::MissingTemplate(process.clone()))?;
            let mut inst = Instance::new(*instance, Arc::clone(def));
            for (k, v) in input.iter() {
                inst.root.input.set(k, v.clone());
            }
            *next_instance = (*next_instance).max(instance.0 + 1);
            instances.insert(*instance, inst);
        }
        Event::ActivityReady {
            instance,
            path,
            attempt,
            at,
        } => with_rt(instances, *instance, path, |rt| {
            rt.state = ActState::Ready;
            rt.attempt = *attempt;
            rt.ready_since = Some(*at);
            rt.notified = false;
        }),
        Event::ActivityStarted {
            instance,
            path,
            input,
            ..
        } => {
            let segs = split_path(path);
            if let Some(inst) = instances.get_mut(instance) {
                // Record the running state and materialised input.
                if let Some((name, scope_path)) = segs.split_last() {
                    let is_block = if let Some((def, scope)) = inst.resolve_mut(scope_path) {
                        let is_block = def
                            .activity(name)
                            .map(|a| a.kind.is_block())
                            .unwrap_or(false);
                        if let Some(rt) = scope.activities.get_mut(name) {
                            rt.state = ActState::Running;
                            rt.input = input.clone();
                        }
                        is_block
                    } else {
                        false
                    };
                    // A started block opens its child scope; the
                    // child's own events follow in the journal.
                    if is_block {
                        if let Some((def, scope)) = inst.resolve_mut(scope_path) {
                            if let Some(ActivityKind::Block { process }) =
                                def.activity(name).map(|a| a.kind.clone())
                            {
                                let mut child = ScopeState::for_definition(&process);
                                for (k, v) in input.iter() {
                                    child.input.set(k, v.clone());
                                }
                                scope.children.insert(name.clone(), child);
                            }
                        }
                    }
                }
            }
        }
        Event::ActivityFinished {
            instance,
            path,
            output,
            ..
        } => {
            with_rt(instances, *instance, path, |rt| {
                rt.state = ActState::Finished;
                rt.output = output.clone();
            });
            // Mirror the live navigator: finishing an activity closes
            // its work items (a reschedule re-offers a fresh one via
            // the following WorkItemOffered event).
            worklists.close_for(*instance, path);
        }
        Event::ActivityRescheduled {
            instance,
            path,
            next_attempt,
            ..
        } => {
            let segs = split_path(path);
            if let Some(inst) = instances.get_mut(instance) {
                if let Some((name, scope_path)) = segs.split_last() {
                    if let Some((def, scope)) = inst.resolve_mut(scope_path) {
                        let is_block = def
                            .activity(name)
                            .map(|a| a.kind.is_block())
                            .unwrap_or(false);
                        if is_block {
                            scope.children.remove(name);
                        }
                        if let Some(rt) = scope.activities.get_mut(name) {
                            rt.state = ActState::Waiting;
                            rt.attempt = *next_attempt;
                        }
                    }
                }
            }
        }
        Event::ActivityTerminated {
            instance,
            path,
            executed,
            ..
        } => {
            let segs = split_path(path);
            if let Some(inst) = instances.get_mut(instance) {
                if let Some((name, scope_path)) = segs.split_last() {
                    if let Some((def, scope)) = inst.resolve_mut(scope_path) {
                        let mut output = None;
                        if let Some(rt) = scope.activities.get_mut(name) {
                            rt.state = ActState::Terminated;
                            rt.executed = *executed;
                            if *executed {
                                output = Some(rt.output.clone());
                            }
                        }
                        // (work items for this path close below)
                        // Re-apply the activity-output → process-output
                        // data connectors, as the navigator did live.
                        if let Some(output) = output {
                            for d in &def.data {
                                let from_us = matches!(
                                    &d.from,
                                    wfms_model::DataEndpoint::ActivityOutput(a) if a == name
                                );
                                if from_us && d.to == wfms_model::DataEndpoint::ProcessOutput {
                                    for m in &d.mappings {
                                        if let Some(v) = output.get(&m.from_member) {
                                            scope.output.set(&m.to_member, v.clone());
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            worklists.close_for(*instance, path);
        }
        Event::ConnectorEvaluated {
            instance,
            scope,
            from,
            to,
            value,
            ..
        } => {
            let scope_segs = split_path(scope);
            if let Some(inst) = instances.get_mut(instance) {
                if let Some((_, sc)) = inst.resolve_mut(&scope_segs) {
                    sc.connectors.insert((from.clone(), to.clone()), *value);
                }
            }
        }
        Event::WorkItemOffered {
            instance,
            path,
            item,
            persons,
            at,
        } => {
            *next_item = (*next_item).max(item.0 + 1);
            worklists.offer(WorkItem {
                id: *item,
                instance: *instance,
                path: path.clone(),
                attempt: 0,
                offered_to: persons.clone(),
                state: WorkItemState::Offered,
                offered_at: *at,
            });
        }
        Event::WorkItemClaimed { item, person, .. } => {
            let _ = worklists.claim(*item, person);
        }
        Event::NotificationSent { instance, path, .. } => {
            with_rt(instances, *instance, path, |rt| rt.notified = true)
        }
        Event::UserIntervention { .. } => {}
        Event::InstanceFinished {
            instance, output, ..
        } => {
            if let Some(inst) = instances.get_mut(instance) {
                inst.status = InstanceStatus::Finished;
                for (k, v) in output.iter() {
                    inst.root.output.set(k, v.clone());
                }
            }
        }
        Event::InstanceCancelled { instance, .. } => {
            if let Some(inst) = instances.get_mut(instance) {
                inst.status = InstanceStatus::Cancelled;
            }
            let stale: Vec<_> = worklists
                .open_items()
                .iter()
                .filter(|it| it.instance == *instance)
                .map(|it| it.id)
                .collect();
            for id in stale {
                worklists.close(id);
            }
        }
        Event::EngineCheckpoint {
            instances: snaps,
            items,
            next_instance: ni,
            next_item: nw,
            ..
        } => {
            // A checkpoint is the complete engine state: replace
            // everything reconstructed so far and continue applying
            // the tail on top of it.
            instances.clear();
            for snap in snaps {
                let def = templates
                    .get(&snap.process)
                    .ok_or_else(|| RecoveryError::MissingTemplate(snap.process.clone()))?;
                let mut inst = Instance::new(snap.id, Arc::clone(def));
                inst.status = snap.status;
                inst.root = snap.root.clone();
                instances.insert(snap.id, inst);
            }
            *worklists = WorklistStore::new();
            for item in items {
                worklists.offer(item.clone());
            }
            *next_instance = *ni;
            *next_item = *nw;
        }
    }
    Ok(())
}

fn with_rt(
    instances: &mut BTreeMap<InstanceId, Instance>,
    instance: InstanceId,
    path: &str,
    f: impl FnOnce(&mut crate::state::ActivityRt),
) {
    let segs = split_path(path);
    if let Some(inst) = instances.get_mut(&instance) {
        if let Some((name, scope_path)) = segs.split_last() {
            if let Some((_, scope)) = inst.resolve_mut(scope_path) {
                if let Some(rt) = scope.activities.get_mut(name) {
                    f(rt);
                }
            }
        }
    }
}

/// Post-replay fix-ups: re-ready crashed `Running` program activities,
/// re-decide `Finished` activities whose exit decision was lost, and
/// re-check scope completion (in case the crash hit between the last
/// termination and the completion event).
fn resume(engine: &Engine) {
    let ids: Vec<InstanceId> = engine.inner.lock().instances.keys().copied().collect();
    for id in ids {
        let mut inner = engine.inner.lock();
        let Inner {
            journal,
            org,
            worklists,
            next_item,
            instances,
            ..
        } = &mut *inner;
        let Some(inst) = instances.get_mut(&id) else {
            continue;
        };
        if inst.status != InstanceStatus::Running {
            continue;
        }

        // Collect fix-up targets (deepest scopes first so child fixes
        // land before parent completion checks).
        let mut running_programs: Vec<Vec<String>> = Vec::new();
        let mut finished: Vec<Vec<String>> = Vec::new();
        let mut scopes: Vec<Vec<String>> = Vec::new();
        collect_fixups(
            &inst.def,
            &inst.root,
            &mut Vec::new(),
            &mut running_programs,
            &mut finished,
            &mut scopes,
        );

        let mut svc = navigator::NavServices {
            journal,
            clock: &engine.clock,
            org,
            worklists,
            next_item,
            programs: &engine.programs,
            multidb: &engine.multidb,
        };
        for path in running_programs {
            navigator::reset_running_to_ready(inst, &mut svc, &path);
        }
        for path in finished {
            navigator::decide_exit(inst, &mut svc, &path);
        }
        scopes.sort_by_key(|s| std::cmp::Reverse(s.len()));
        for scope in scopes {
            if inst.status != InstanceStatus::Running {
                break;
            }
            navigator::check_scope_completion(inst, &mut svc, &scope);
        }
    }
}

fn collect_fixups(
    def: &ProcessDefinition,
    scope: &ScopeState,
    prefix: &mut Vec<String>,
    running_programs: &mut Vec<Vec<String>>,
    finished: &mut Vec<Vec<String>>,
    scopes: &mut Vec<Vec<String>>,
) {
    scopes.push(prefix.clone());
    for act in &def.activities {
        let Some(rt) = scope.activities.get(&act.name) else {
            continue;
        };
        let mut path = prefix.clone();
        path.push(act.name.clone());
        match rt.state {
            ActState::Running => match &act.kind {
                ActivityKind::Block { process } => {
                    if let Some(child) = scope.children.get(&act.name) {
                        prefix.push(act.name.clone());
                        collect_fixups(process, child, prefix, running_programs, finished, scopes);
                        prefix.pop();
                    } else {
                        // Block recorded running but its child scope was
                        // never opened (crash inside execute): restart it.
                        running_programs.push(path);
                    }
                }
                _ => running_programs.push(path),
            },
            ActState::Finished => finished.push(path),
            _ => {}
        }
    }
}
