//! Deeper engine coverage: multi-level block nesting, manual
//! activities and deadlines inside blocks, template versioning,
//! multi-instance isolation, cancellation of nested instances, and
//! operator interventions on failure paths.

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry, Value};
use wfms_engine::{audit, Engine, EngineConfig, EngineError, InstanceStatus, OrgModel};
use wfms_model::{
    Activity, Container, ContainerSchema, DataType, ProcessBuilder, ProcessDefinition,
};

fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    registry.register_fn("fail", |_| ProgramOutcome::aborted("scripted"));
    (fed, registry)
}

/// Three levels of blocks, data threaded from the innermost activity
/// to the root process output.
#[test]
fn three_level_nesting_threads_data_to_the_root() {
    let (fed, registry) = world();
    registry.register_fn("deep", |_| ProgramOutcome::Committed {
        rc: 1,
        outputs: [("v".to_string(), Value::Int(77))].into_iter().collect(),
    });
    let level3 = ProcessBuilder::new("L3")
        .output(ContainerSchema::of(&[("v", DataType::Int)]))
        .activity(
            Activity::program("Leaf", "deep")
                .with_output(ContainerSchema::of(&[("v", DataType::Int)])),
        )
        .map_to_process_output("Leaf", &[("v", "v")])
        .build()
        .unwrap();
    let level2 = ProcessBuilder::new("L2")
        .output(ContainerSchema::of(&[("v", DataType::Int)]))
        .block("Inner", level3)
        .map_to_process_output("Inner", &[("v", "v")])
        .build()
        .unwrap();
    let root = ProcessBuilder::new("L1")
        .output(ContainerSchema::of(&[("out", DataType::Int)]))
        .block("Mid", level2)
        .map_to_process_output("Mid", &[("v", "out")])
        .build()
        .unwrap();
    assert_eq!(root.nesting_depth(), 3);

    let engine = Engine::new(fed, registry);
    engine.register(root).unwrap();
    let id = engine.start("L1", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    assert_eq!(engine.output(id).unwrap().get("out"), Some(&Value::Int(77)));
    // Nested paths appear with full scope prefixes.
    let order = audit::execution_order(&engine.journal_events(), id);
    assert_eq!(order, vec!["Mid", "Mid/Inner", "Mid/Inner/Leaf"]);
}

/// A manual activity inside a block surfaces on worklists with its
/// nested path, and executing it completes the block.
#[test]
fn manual_activity_inside_a_block() {
    let (fed, registry) = world();
    let org = OrgModel::new().person("ann", &["clerk"]);
    let inner = ProcessBuilder::new("Review")
        .activity(Activity::program("Check", "ok").for_role("clerk"))
        .build()
        .unwrap();
    let root = ProcessBuilder::new("proc")
        .block("Review", inner)
        .program("After", "ok")
        .connect("Review", "After")
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(root).unwrap();
    let id = engine.start("proc", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let items = engine.worklist("ann");
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].path, "Review/Check");
    engine.execute_item(items[0].id, "ann").unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
}

/// Deadlines fire for ready manual activities inside running blocks.
#[test]
fn deadline_notification_reaches_into_blocks() {
    let (fed, registry) = world();
    let org = OrgModel::new()
        .person("boss", &["chief"])
        .person_under("ann", &["clerk"], "boss", 2);
    let inner = ProcessBuilder::new("Inner")
        .activity(
            Activity::program("Slow", "ok")
                .for_role("clerk")
                .with_deadline(5),
        )
        .build()
        .unwrap();
    let root = ProcessBuilder::new("proc")
        .block("Inner", inner)
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(root).unwrap();
    let id = engine.start("proc", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let sent = engine.advance_clock(10);
    assert_eq!(sent, vec![("Inner/Slow".to_string(), "boss".to_string())]);
    let _ = id;
}

/// Re-registering a template under the same name affects future
/// instances only; running instances keep their definition.
#[test]
fn template_versioning_isolates_running_instances() {
    let (fed, registry) = world();
    let org = OrgModel::new().person("ann", &["clerk"]);
    let v1 = ProcessBuilder::new("p")
        .version(1)
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .program("OldTail", "ok")
        .connect("M", "OldTail")
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(v1).unwrap();
    let id1 = engine.start("p", Container::empty()).unwrap();
    engine.run_to_quiescence(id1).unwrap(); // waits on M

    // Version 2 renames the tail.
    let v2 = ProcessBuilder::new("p")
        .version(2)
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .program("NewTail", "ok")
        .connect("M", "NewTail")
        .build()
        .unwrap();
    engine.register(v2).unwrap();
    let id2 = engine.start("p", Container::empty()).unwrap();
    engine.run_to_quiescence(id2).unwrap();

    // Finish both manual steps.
    for item in engine.worklist("ann") {
        engine.execute_item(item.id, "ann").unwrap();
    }
    assert_eq!(engine.status(id1).unwrap(), InstanceStatus::Finished);
    assert_eq!(engine.status(id2).unwrap(), InstanceStatus::Finished);
    // The old instance ran OldTail; the new one ran NewTail.
    let ev = engine.journal_events();
    let o1 = audit::execution_order(&ev, id1);
    let o2 = audit::execution_order(&ev, id2);
    assert!(o1.contains(&"OldTail".to_string()));
    assert!(!o1.contains(&"NewTail".to_string()));
    assert!(o2.contains(&"NewTail".to_string()));
    assert!(!o2.contains(&"OldTail".to_string()));
}

/// Instances are isolated: many concurrent instances of one template
/// finish independently with their own containers.
#[test]
fn multi_instance_isolation() {
    let (fed, registry) = world();
    registry.register_fn("echo", |ctx| {
        let n = ctx.params.get("n").and_then(|v| v.as_int()).unwrap_or(-1);
        ProgramOutcome::Committed {
            rc: 1,
            outputs: [("m".to_string(), Value::Int(n * 2))].into_iter().collect(),
        }
    });
    let def = ProcessBuilder::new("echoer")
        .input(ContainerSchema::of(&[("n", DataType::Int)]))
        .output(ContainerSchema::of(&[("m", DataType::Int)]))
        .activity(
            Activity::program("E", "echo")
                .with_input(ContainerSchema::of(&[("n", DataType::Int)]))
                .with_output(ContainerSchema::of(&[("m", DataType::Int)])),
        )
        .map_process_input("E", &[("n", "n")])
        .map_to_process_output("E", &[("m", "m")])
        .build()
        .unwrap();
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    let ids: Vec<_> = (0..20)
        .map(|i| {
            let mut input = Container::empty();
            input.set("n", Value::Int(i));
            engine.start("echoer", input).unwrap()
        })
        .collect();
    engine.run_all().unwrap();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(engine.status(*id).unwrap(), InstanceStatus::Finished);
        assert_eq!(
            engine.output(*id).unwrap().get("m"),
            Some(&Value::Int(i as i64 * 2))
        );
    }
}

/// Cancelling an instance with a running nested block stops all
/// navigation and clears nested work items.
#[test]
fn cancel_with_running_nested_block() {
    let (fed, registry) = world();
    let org = OrgModel::new().person("ann", &["clerk"]);
    let inner = ProcessBuilder::new("Inner")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .build()
        .unwrap();
    let root = ProcessBuilder::new("proc")
        .block("Inner", inner)
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(root).unwrap();
    let id = engine.start("proc", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(engine.worklist("ann").len(), 1);
    engine.cancel(id).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Cancelled);
    assert!(engine.worklist("ann").is_empty());
    // Executing the stale item now fails cleanly.
    let events = engine.journal_events();
    let item = events
        .iter()
        .find_map(|e| match e {
            wfms_engine::Event::WorkItemOffered { item, .. } => Some(*item),
            _ => None,
        })
        .unwrap();
    assert!(matches!(
        engine.execute_item(item, "ann"),
        Err(EngineError::Worklist(_))
    ));
}

/// Racing claims: with many threads fighting over one work item,
/// exactly one wins and the item vanishes from every other worklist.
#[test]
fn concurrent_claims_are_exclusive() {
    let (fed, registry) = world();
    let mut org = OrgModel::new();
    for i in 0..8 {
        org = org.person(&format!("p{i}"), &["clerk"]);
    }
    let def = ProcessBuilder::new("race")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .build()
        .unwrap();
    let engine = Arc::new(Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    ));
    engine.register(def).unwrap();
    let id = engine.start("race", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let item = engine.worklist("p0")[0].id;

    let wins = Arc::new(std::sync::atomic::AtomicU32::new(0));
    std::thread::scope(|s| {
        for i in 0..8 {
            let engine = Arc::clone(&engine);
            let wins = Arc::clone(&wins);
            s.spawn(move || {
                if engine.claim(item, &format!("p{i}")).is_ok() {
                    wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(wins.load(std::sync::atomic::Ordering::SeqCst), 1);
    // Exactly one worklist still shows the item (the claimer's).
    let visible = (0..8)
        .filter(|i| !engine.worklist(&format!("p{i}")).is_empty())
        .count();
    assert_eq!(visible, 1);
}

/// Releasing a claim re-offers the item to everyone; a different
/// person can then execute it.
#[test]
fn release_returns_item_to_all_worklists() {
    let (fed, registry) = world();
    let org = OrgModel::new()
        .person("ann", &["clerk"])
        .person("bob", &["clerk"]);
    let def = ProcessBuilder::new("rel")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let id = engine.start("rel", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let item = engine.worklist("ann")[0].id;

    engine.claim(item, "ann").unwrap();
    assert!(engine.worklist("bob").is_empty());
    // Only the claimer may release.
    assert!(matches!(
        engine.release(item, "bob"),
        Err(EngineError::Worklist(_))
    ));
    engine.release(item, "ann").unwrap();
    assert_eq!(engine.worklist("bob").len(), 1, "bob sees it again");
    engine.execute_item(item, "bob").unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
}

/// Absence substitution at offer time: work for an absent person is
/// offered to the substitute; returning restores direct offers.
#[test]
fn absence_redirects_new_offers() {
    let (fed, registry) = world();
    let org = OrgModel::new()
        .person("ann", &["clerk"])
        .person("bob", &["backup"]);
    let def = ProcessBuilder::new("abs")
        .activity(Activity::program("M", "ok").for_person("ann"))
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();

    engine.set_absent("ann", true, Some("bob"));
    let id = engine.start("abs", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert!(engine.worklist("ann").is_empty(), "ann is away");
    let items = engine.worklist("bob");
    assert_eq!(items.len(), 1, "bob covers for ann");
    engine.execute_item(items[0].id, "bob").unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);

    // ann returns: the next instance goes to her directly.
    engine.set_absent("ann", false, None);
    let id2 = engine.start("abs", Container::empty()).unwrap();
    engine.run_to_quiescence(id2).unwrap();
    assert_eq!(engine.worklist("ann").len(), 1);
    assert!(engine.worklist("bob").is_empty());
}

/// The engine enumerates its instances with statuses.
#[test]
fn instance_listing() {
    let (fed, registry) = world();
    let def = ProcessBuilder::new("p").program("A", "ok").build().unwrap();
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    let a = engine.start("p", Container::empty()).unwrap();
    let b = engine.start("p", Container::empty()).unwrap();
    engine.run_to_quiescence(a).unwrap();
    engine.cancel(b).unwrap();
    let listing = engine.instances();
    assert_eq!(listing.len(), 2);
    assert!(listing.contains(&(a, "p".to_string(), InstanceStatus::Finished)));
    assert!(listing.contains(&(b, "p".to_string(), InstanceStatus::Cancelled)));
}

/// `activity_state` and error paths for unknown addresses.
#[test]
fn introspection_error_paths() {
    let (fed, registry) = world();
    let def: ProcessDefinition = ProcessBuilder::new("p").program("A", "ok").build().unwrap();
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    let id = engine.start("p", Container::empty()).unwrap();
    assert!(matches!(
        engine.activity_state(id, "Nope"),
        Err(EngineError::BadActivityState { .. })
    ));
    assert!(matches!(
        engine.status(wfms_engine::InstanceId(99)),
        Err(EngineError::UnknownInstance(_))
    ));
    assert!(matches!(
        engine.force_finish(id, "Nope", 1),
        Err(EngineError::BadActivityState { .. })
    ));
    assert!(matches!(
        engine.cancel(wfms_engine::InstanceId(99)),
        Err(EngineError::UnknownInstance(_))
    ));
    engine.run_to_quiescence(id).unwrap();
    // Force-finish on a terminated activity is rejected.
    assert!(matches!(
        engine.force_finish(id, "A", 1),
        Err(EngineError::BadActivityState { .. })
    ));
}
