//! The engine observability layer end to end: metrics snapshots on
//! observed and unobserved engines, counter semantics (executions,
//! retries, dead paths, work items, notifications), journal probes,
//! trace sinks — and the invariant everything else depends on: the
//! journal is **byte-for-byte identical** with observability enabled.

use std::sync::Arc;
use txn_substrate::{KvProgram, MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{recover, Engine, EngineConfig, InstanceStatus, OrgModel};
use wfms_model::{Activity, Container, ProcessBuilder, ProcessDefinition};
use wfms_observe::{Observer, RecordingSink, TraceKind};

fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register(Arc::new(KvProgram::write("mark_a", "db", "a", 1i64)));
    registry.register(Arc::new(KvProgram::write("mark_b", "db", "b", 1i64)));
    (fed, registry)
}

/// A → (B | C): B runs when RC = 1, C is dead-path-eliminated.
fn branching() -> ProcessDefinition {
    ProcessBuilder::new("branch")
        .program("A", "mark_a")
        .program("B", "mark_b")
        .program("C", "mark_b")
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 2")
        .build()
        .unwrap()
}

fn observed_engine(
    fed: Arc<MultiDatabase>,
    registry: Arc<ProgramRegistry>,
    org: OrgModel,
) -> Engine {
    Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            observer: Some(Arc::new(Observer::enabled())),
            ..EngineConfig::default()
        },
    )
}

#[test]
fn metrics_snapshot_has_latency_counters_and_federation() {
    let (fed, registry) = world();
    let engine = observed_engine(Arc::clone(&fed), registry, OrgModel::new());
    engine.register(branching()).unwrap();
    for _ in 0..3 {
        let id = engine.start("branch", Container::empty()).unwrap();
        assert_eq!(
            engine.run_to_quiescence(id).unwrap(),
            InstanceStatus::Finished
        );
    }

    let m = engine.metrics();
    assert_eq!(m.instances_finished, 3);
    assert_eq!(m.instances_running, 0);

    // Per-activity latency: A and B executed three times each; C never
    // ran (dead path), so its histogram is registered but empty.
    assert_eq!(m.activities["A"].count, 3);
    assert_eq!(m.activities["B"].count, 3);
    assert_eq!(m.activities["C"].count, 0);
    assert!(m.activities["A"].max_ns > 0, "a real duration was recorded");
    assert!(m.activities["A"].p50_ns <= m.activities["A"].p99_ns);

    // Navigator counters.
    assert_eq!(m.counters["nav.executions"], 6, "A and B, three runs");
    assert_eq!(m.counters["nav.dead_paths"], 3, "C eliminated per run");
    assert_eq!(m.counters["nav.retries"], 0);
    assert!(m.gauges["engine.ready_heap_depth"] >= 1);

    // Journal probes: every event of every run went through append.
    assert_eq!(
        m.counters["journal.appends"], m.journal_events,
        "append counter matches the journal length"
    );
    // Append latency is sampled 1-in-16 (the first append always
    // samples), so the histogram holds a subset of the appends.
    let sampled = m.histograms["journal.append_ns"].count;
    assert!(sampled >= 1 && sampled <= m.journal_events);
    assert_eq!(sampled, m.journal_events.div_ceil(16));

    // Federation statistics come straight from the substrate.
    assert_eq!(m.federation.len(), 1);
    let db = &m.federation[0];
    assert_eq!(db.name, "db");
    assert_eq!(db.txns_committed, 6);
    assert_eq!(db.writes, 6);
    assert!(db.wal_appends > 0);
}

#[test]
fn unobserved_engine_still_reports_cold_metrics() {
    let (fed, registry) = world();
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(branching()).unwrap();
    let id = engine.start("branch", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    let m = engine.metrics();
    assert_eq!(m.instances_finished, 1);
    assert!(m.activities.is_empty(), "no probes without an observer");
    assert_eq!(m.counters["nav.executions"], 0, "hot hooks gated off");
    assert_eq!(m.federation[0].txns_committed, 2, "substrate still counts");
    assert!(m.journal_events > 0);
}

#[test]
fn retries_and_reschedules_count_exit_condition_loops() {
    let (fed, _) = world();
    let registry = Arc::new(ProgramRegistry::new());
    // Commits rc = attempt + 1: the exit condition "RC >= 2" fails once.
    registry.register_fn("flaky", |ctx| ProgramOutcome::Committed {
        rc: i64::from(ctx.attempt) + 1,
        outputs: Default::default(),
    });
    let def = ProcessBuilder::new("loopy")
        .activity(Activity::program("F", "flaky").with_exit("RC >= 2"))
        .build()
        .unwrap();
    let engine = observed_engine(fed, registry, OrgModel::new());
    engine.register(def).unwrap();
    let id = engine.start("loopy", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );

    let m = engine.metrics();
    assert_eq!(m.counters["nav.executions"], 2, "attempt 0 and attempt 1");
    assert_eq!(m.counters["nav.reschedules"], 1);
    assert_eq!(m.counters["nav.retries"], 1);
    assert_eq!(m.activities["F"].count, 2, "both attempts timed");
}

#[test]
fn worklist_and_notification_counters() {
    let (fed, registry) = world();
    let org =
        OrgModel::new()
            .person("boss", &["manager"])
            .person_under("ann", &["clerk"], "boss", 2);
    let def = ProcessBuilder::new("m")
        .activity(
            Activity::program("M", "mark_a")
                .for_role("clerk")
                .with_deadline(5),
        )
        .build()
        .unwrap();
    let engine = observed_engine(fed, registry, org);
    engine.register(def).unwrap();
    let id = engine.start("m", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    let m = engine.metrics();
    assert_eq!(m.counters["worklist.items_offered"], 1);
    assert_eq!(m.items_offered, 1);
    assert_eq!(m.counters["nav.notifications"], 0);

    // Blow the deadline: ann's manager is notified.
    engine.advance_clock(10);
    let m = engine.metrics();
    assert_eq!(m.counters["nav.notifications"], 1);

    let item = engine.worklist("ann")[0].id;
    engine.execute_item(item, "ann").unwrap();
    let m = engine.metrics();
    assert_eq!(m.items_offered, 0);
    assert_eq!(m.items_closed, 1);
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
}

/// The load-bearing invariant: enabling observability changes *no*
/// journal bytes. Hooks never append events and never advance the
/// clock, so the golden appendix traces hold with metrics on.
#[test]
fn journal_is_byte_identical_with_observability_enabled() {
    let run = |observer: Option<Arc<Observer>>| -> Vec<String> {
        let (fed, registry) = world();
        let engine = Engine::with_config(
            fed,
            registry,
            EngineConfig {
                observer,
                ..EngineConfig::default()
            },
        );
        engine.register(branching()).unwrap();
        for _ in 0..3 {
            let id = engine.start("branch", Container::empty()).unwrap();
            engine.run_to_quiescence(id).unwrap();
        }
        engine
            .journal_events()
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect()
    };
    let plain = run(None);
    let observed = run(Some(Arc::new(Observer::enabled())));
    assert_eq!(
        plain, observed,
        "observability must not perturb the journal"
    );
}

#[test]
fn parallel_run_records_into_shared_instruments() {
    let (fed, registry) = world();
    let engine = observed_engine(fed, registry, OrgModel::new());
    engine.register(branching()).unwrap();
    for _ in 0..16 {
        engine.start("branch", Container::empty()).unwrap();
    }
    engine.run_all_parallel(4).unwrap();

    let m = engine.metrics();
    assert_eq!(m.instances_finished, 16);
    assert_eq!(m.counters["nav.executions"], 32, "atomics survive threads");
    assert_eq!(m.activities["A"].count, 16);
    // With more than one effective worker the shard merge lands as one
    // batched append on the main journal. The scheduler clamps to
    // available parallelism, and its single-worker path drives
    // instances in place — per-event appends, no shard merge.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(m.histograms["journal.batch_size"].count >= 1);
        assert!(m.histograms["journal.batch_size"].max_ns > 1);
    } else {
        assert_eq!(
            m.histograms
                .get("journal.batch_size")
                .map_or(0, |h| h.count),
            0,
            "in-place single-worker path must not batch"
        );
    }
}

#[test]
fn trace_sink_sees_spans_and_instance_events() {
    let (fed, registry) = world();
    let sink = Arc::new(RecordingSink::new());
    let observer = Arc::new(
        Observer::enabled().with_sink(Arc::clone(&sink) as Arc<dyn wfms_observe::TraceSink>),
    );
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            observer: Some(observer),
            ..EngineConfig::default()
        },
    );
    engine.register(branching()).unwrap();
    let id = engine.start("branch", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    let events = sink.events();
    let starts = events
        .iter()
        .filter(|e| e.kind == TraceKind::Event && e.name == "instance.start")
        .count();
    assert_eq!(starts, 1);
    let exec_spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Enter && e.name == "activity.execute")
        .collect();
    assert_eq!(exec_spans.len(), 2, "A and B entered");
    assert!(exec_spans.iter().any(|e| e.detail == "A"));
    let exits = events
        .iter()
        .filter(|e| e.kind == TraceKind::Exit && e.name == "activity.execute")
        .count();
    assert_eq!(exits, 2, "span guards closed");
    assert!(events
        .iter()
        .any(|e| e.kind == TraceKind::Event && e.name == "instance.finished"));
}

#[test]
fn exposition_formats_render_the_snapshot() {
    let (fed, registry) = world();
    let engine = observed_engine(fed, registry, OrgModel::new());
    engine.register(branching()).unwrap();
    let id = engine.start("branch", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let m = engine.metrics();

    let json = m.to_json();
    assert!(json.contains("\"instances_finished\": 1"), "{json}");
    assert!(json.contains("\"activities\""));
    assert!(json.contains("\"A\""));
    assert!(json.contains("\"txns_committed\": 2"));

    let prom = m.to_prometheus();
    assert!(prom.contains("# TYPE nav_executions counter"));
    assert!(prom.contains("nav_executions 2"));
    assert!(prom.contains("engine_instances_finished 1"));
    assert!(prom.contains("engine_act_latency_ns{label=\"A\",quantile=\"0.5\"}"));
    assert!(prom.contains("db_txns_committed{db=\"db\"} 2"));
}

#[test]
fn recovery_fixups_are_counted_on_unobserved_engines() {
    let dir = std::env::temp_dir().join(format!("wfms-obs-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rec.journal");
    let def = branching();
    let (fed, registry) = world();
    let engine = Engine::with_config(
        Arc::clone(&fed),
        Arc::clone(&registry),
        EngineConfig {
            journal_path: Some(path.clone()),
            ..EngineConfig::default()
        },
    );
    engine.register(def.clone()).unwrap();
    let id = engine.start("branch", Container::empty()).unwrap();
    engine.step(id).unwrap(); // A ran; B is ready, C is dead
    engine.crash();

    let recovered = recover(&path, vec![def], OrgModel::new(), fed, registry).unwrap();
    let m = recovered.metrics();
    // Cold-path recovery counters exist even though no observer was
    // ever configured; this run needed no fix-ups (clean step
    // boundary), so they read zero — but they are *present*.
    for key in [
        "recovery.fixups.running_restarted",
        "recovery.fixups.waiting_renavigated",
        "recovery.fixups.connectors_reevaluated",
        "recovery.fixups.exits_redecided",
    ] {
        assert!(m.counters.contains_key(key), "{key} registered");
    }
    assert_eq!(
        recovered.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    let _ = std::fs::remove_dir_all(&dir);
}
