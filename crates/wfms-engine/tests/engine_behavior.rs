//! Behavioural tests of the navigator against the semantics §3.2–3.3
//! of the paper prescribes: state machine, AND/OR joins, dead path
//! elimination, exit-condition loops, blocks, data flow, worklists,
//! deadlines, interventions and forward recovery.

use std::collections::BTreeMap;
use std::sync::Arc;
use txn_substrate::{
    FailurePlan, KvProgram, MultiDatabase, ProgramOutcome, ProgramRegistry, Value,
};
use wfms_engine::{
    audit, recover_from, ActState, Engine, EngineConfig, EngineError, InstanceStatus, Journal,
    OrgModel,
};
use wfms_model::{
    Activity, Container, ContainerSchema, DataType, ProcessBuilder, ProcessDefinition,
};

/// A test harness bundling federation + programs + engine.
struct Rig {
    fed: Arc<MultiDatabase>,
    programs: Arc<ProgramRegistry>,
}

impl Rig {
    fn new() -> Self {
        let fed = MultiDatabase::new(7);
        fed.add_database("db");
        let programs = Arc::new(ProgramRegistry::new());
        Self { fed, programs }
    }

    fn engine(&self) -> Engine {
        Engine::new(Arc::clone(&self.fed), Arc::clone(&self.programs))
    }

    fn engine_with_org(&self, org: OrgModel) -> Engine {
        Engine::with_config(
            Arc::clone(&self.fed),
            Arc::clone(&self.programs),
            EngineConfig {
                org,
                ..EngineConfig::default()
            },
        )
    }

    /// Registers a program that always commits with rc 1 and records
    /// its execution by appending to the db key `log:<name>`.
    fn ok_program(&self, name: &str) {
        let fed = Arc::clone(&self.fed);
        let pname = name.to_owned();
        self.programs.register_fn(name, move |_ctx| {
            let db = fed.db("db").unwrap();
            loop {
                let mut t = db.begin();
                let prev = match t.get("log") {
                    Ok(v) => v
                        .and_then(|v| v.as_str().map(str::to_owned))
                        .unwrap_or_default(),
                    Err(_) => continue,
                };
                let next = if prev.is_empty() {
                    pname.clone()
                } else {
                    format!("{prev},{pname}")
                };
                if t.put("log", next).is_err() {
                    continue;
                }
                if t.commit().is_ok() {
                    break;
                }
            }
            ProgramOutcome::committed()
        });
    }

    /// Registers a program returning a fixed rc without side effects.
    fn rc_program(&self, name: &str, rc: i64) {
        self.programs.register_fn(name, move |_ctx| {
            if rc == 0 {
                ProgramOutcome::aborted("scripted abort")
            } else {
                ProgramOutcome::Committed {
                    rc,
                    outputs: BTreeMap::new(),
                }
            }
        });
    }

    fn log(&self) -> String {
        self.fed
            .db("db")
            .unwrap()
            .peek("log")
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_default()
    }
}

fn linear(names: &[&str]) -> ProcessDefinition {
    let mut b = ProcessBuilder::new("linear");
    for n in names {
        b = b.program(n, &format!("p_{n}"));
    }
    for w in names.windows(2) {
        b = b.connect_when(w[0], w[1], "RC = 1");
    }
    b.build().unwrap()
}

#[test]
fn linear_chain_runs_in_order() {
    let rig = Rig::new();
    for n in ["A", "B", "C"] {
        rig.ok_program(&format!("p_{n}"));
    }
    let engine = rig.engine();
    engine.register(linear(&["A", "B", "C"])).unwrap();
    let id = engine.start("linear", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    assert_eq!(rig.log(), "p_A,p_B,p_C");
    let events = engine.journal_events();
    assert_eq!(audit::execution_order(&events, id), vec!["A", "B", "C"]);
}

#[test]
fn false_transition_condition_triggers_dpe_cascade() {
    // A aborts (rc 0): B and C must be dead-path-eliminated and the
    // process must still finish (§3.2 appendix behaviour).
    let rig = Rig::new();
    rig.rc_program("p_A", 0);
    rig.ok_program("p_B");
    rig.ok_program("p_C");
    let engine = rig.engine();
    engine.register(linear(&["A", "B", "C"])).unwrap();
    let id = engine.start("linear", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    assert_eq!(rig.log(), "", "B and C never ran");
    assert_eq!(
        engine.activity_state(id, "B").unwrap().0,
        ActState::Terminated
    );
    assert!(!engine.activity_state(id, "B").unwrap().1, "not executed");
    assert!(!engine.activity_state(id, "C").unwrap().1);
    let s = audit::summarize(&engine.journal_events(), id);
    assert_eq!(s.eliminated, 2);
    assert_eq!(s.executions, 1);
}

#[test]
fn and_join_waits_for_all_branches() {
    // Diamond: A -> B, A -> C, B & C -> D (AND join).
    let rig = Rig::new();
    for p in ["p_A", "p_B", "p_C", "p_D"] {
        rig.ok_program(p);
    }
    let def = ProcessBuilder::new("diamond")
        .program("A", "p_A")
        .program("B", "p_B")
        .program("C", "p_C")
        .program("D", "p_D")
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 1")
        .connect_when("B", "D", "RC = 1")
        .connect_when("C", "D", "RC = 1")
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("diamond", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let order = audit::execution_order(&engine.journal_events(), id);
    assert_eq!(order.len(), 4);
    assert_eq!(order[0], "A");
    assert_eq!(order[3], "D", "D strictly after both branches");
}

#[test]
fn and_join_dies_if_any_branch_false() {
    // B aborts: D (AND join) must be eliminated even though C is fine.
    let rig = Rig::new();
    rig.ok_program("p_A");
    rig.rc_program("p_B", 0);
    rig.ok_program("p_C");
    rig.ok_program("p_D");
    let def = ProcessBuilder::new("diamond")
        .program("A", "p_A")
        .program("B", "p_B")
        .program("C", "p_C")
        .program("D", "p_D")
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 1")
        .connect_when("B", "D", "RC = 1")
        .connect_when("C", "D", "RC = 1")
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("diamond", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    let (state, executed, _) = engine.activity_state(id, "D").unwrap();
    assert_eq!(state, ActState::Terminated);
    assert!(!executed);
    // C still ran.
    assert!(engine.activity_state(id, "C").unwrap().1);
}

#[test]
fn or_join_starts_on_first_true_and_runs_once() {
    let rig = Rig::new();
    for p in ["p_A", "p_B", "p_C", "p_D"] {
        rig.ok_program(p);
    }
    let def = ProcessBuilder::new("orjoin")
        .program("A", "p_A")
        .program("B", "p_B")
        .program("C", "p_C")
        .activity(Activity::program("D", "p_D").or_start())
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 1")
        .connect_when("B", "D", "RC = 1")
        .connect_when("C", "D", "RC = 1")
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("orjoin", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let by_act = audit::executions_by_activity(&engine.journal_events(), id);
    assert_eq!(by_act["D"], 1, "OR join latches on first true");
}

#[test]
fn or_join_dead_only_when_all_false() {
    let rig = Rig::new();
    rig.ok_program("p_A");
    rig.rc_program("p_B", 0);
    rig.ok_program("p_C");
    rig.ok_program("p_D");
    let def = ProcessBuilder::new("orjoin")
        .program("A", "p_A")
        .program("B", "p_B")
        .program("C", "p_C")
        .activity(Activity::program("D", "p_D").or_start())
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 1")
        .connect_when("B", "D", "RC = 1")
        .connect_when("C", "D", "RC = 1")
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("orjoin", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert!(
        engine.activity_state(id, "D").unwrap().1,
        "C's true suffices"
    );

    // Now both branches abort: D must die.
    let rig2 = Rig::new();
    rig2.ok_program("p_A");
    rig2.rc_program("p_B", 0);
    rig2.rc_program("p_C", 0);
    rig2.ok_program("p_D");
    let def2 = ProcessBuilder::new("orjoin")
        .program("A", "p_A")
        .program("B", "p_B")
        .program("C", "p_C")
        .activity(Activity::program("D", "p_D").or_start())
        .connect_when("A", "B", "RC = 1")
        .connect_when("A", "C", "RC = 1")
        .connect_when("B", "D", "RC = 1")
        .connect_when("C", "D", "RC = 1")
        .build()
        .unwrap();
    let engine2 = rig2.engine();
    engine2.register(def2).unwrap();
    let id2 = engine2.start("orjoin", Container::empty()).unwrap();
    assert_eq!(
        engine2.run_to_quiescence(id2).unwrap(),
        InstanceStatus::Finished
    );
    assert!(!engine2.activity_state(id2, "D").unwrap().1);
}

#[test]
fn exit_condition_reschedules_until_true() {
    // The program aborts twice then commits (retriable); the exit
    // condition RC = 1 loops the activity until commit — the §3.2
    // loop mechanism the saga compensations rely on.
    let rig = Rig::new();
    rig.fed
        .injector()
        .set_plan("retry_me", FailurePlan::FirstN(2));
    rig.programs
        .register(Arc::new(KvProgram::write("retry_me", "db", "done", 1i64)));
    let def = ProcessBuilder::new("loopy")
        .activity(Activity::program("R", "retry_me").with_exit("RC = 1"))
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("loopy", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    let (_, _, attempts) = engine.activity_state(id, "R").unwrap();
    assert_eq!(attempts, 2, "two reschedules before success");
    let s = audit::summarize(&engine.journal_events(), id);
    assert_eq!(s.reschedules, 2);
    assert_eq!(s.executions, 3);
    assert_eq!(rig.fed.db("db").unwrap().peek("done"), Some(Value::Int(1)));
}

#[test]
fn livelocked_exit_condition_hits_step_limit() {
    let rig = Rig::new();
    rig.rc_program("always_fails", 0);
    let def = ProcessBuilder::new("stuck")
        .activity(Activity::program("R", "always_fails").with_exit("RC = 1"))
        .build()
        .unwrap();
    let engine = Engine::with_config(
        Arc::clone(&rig.fed),
        Arc::clone(&rig.programs),
        EngineConfig {
            step_limit: 50,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let id = engine.start("stuck", Container::empty()).unwrap();
    assert!(matches!(
        engine.run_to_quiescence(id),
        Err(EngineError::StepLimit(50))
    ));
}

#[test]
fn data_flows_between_activities_and_process_containers() {
    // Producer writes `n` to its output; consumer receives it as `m`
    // and copies it to the process output.
    let rig = Rig::new();
    rig.programs
        .register_fn("produce", |_ctx| ProgramOutcome::Committed {
            rc: 1,
            outputs: [("n".to_string(), Value::Int(41))].into_iter().collect(),
        });
    rig.programs.register_fn("consume", |ctx| {
        let n = ctx.params.get("m").and_then(|v| v.as_int()).unwrap_or(-1);
        ProgramOutcome::Committed {
            rc: 1,
            outputs: [("total".to_string(), Value::Int(n + 1))]
                .into_iter()
                .collect(),
        }
    });
    let def = ProcessBuilder::new("dataflow")
        .input(ContainerSchema::of(&[("seed", DataType::Int)]))
        .output(ContainerSchema::of(&[("result", DataType::Int)]))
        .activity(
            Activity::program("P", "produce")
                .with_output(ContainerSchema::of(&[("n", DataType::Int)])),
        )
        .activity(
            Activity::program("C", "consume")
                .with_input(ContainerSchema::of(&[("m", DataType::Int)]))
                .with_output(ContainerSchema::of(&[("total", DataType::Int)])),
        )
        .connect_when("P", "C", "RC = 1")
        .map_data("P", "C", &[("n", "m")])
        .map_to_process_output("C", &[("total", "result")])
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let mut input = Container::empty();
    input.set("seed", Value::Int(5));
    let id = engine.start("dataflow", input).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("result"), Some(&Value::Int(42)));
}

#[test]
fn undeclared_program_outputs_are_dropped() {
    let rig = Rig::new();
    rig.programs
        .register_fn("chatty", |_ctx| ProgramOutcome::Committed {
            rc: 1,
            outputs: [
                ("declared".to_string(), Value::Int(1)),
                ("undeclared".to_string(), Value::Int(2)),
            ]
            .into_iter()
            .collect(),
        });
    let def = ProcessBuilder::new("schema")
        .activity(
            Activity::program("A", "chatty")
                .with_output(ContainerSchema::of(&[("declared", DataType::Int)])),
        )
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let id = engine.start("schema", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let events = engine.events_for(id);
    let output = events
        .iter()
        .find_map(|e| match e {
            wfms_engine::Event::ActivityFinished { output, .. } => Some(output.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(output.get("declared"), Some(&Value::Int(1)));
    assert_eq!(output.get("undeclared"), None);
}

#[test]
fn block_runs_embedded_process_and_bubbles_output() {
    let rig = Rig::new();
    rig.ok_program("p_X");
    rig.programs
        .register_fn("p_Y", |_ctx| ProgramOutcome::Committed {
            rc: 1,
            outputs: [("v".to_string(), Value::Int(9))].into_iter().collect(),
        });
    let inner = ProcessBuilder::new("inner")
        .output(ContainerSchema::of(&[("v", DataType::Int)]))
        .program("X", "p_X")
        .activity(
            Activity::program("Y", "p_Y").with_output(ContainerSchema::of(&[("v", DataType::Int)])),
        )
        .connect_when("X", "Y", "RC = 1")
        .map_to_process_output("Y", &[("v", "v")])
        .build()
        .unwrap();
    let outer = ProcessBuilder::new("outer")
        .output(ContainerSchema::of(&[("out", DataType::Int)]))
        .program("A", "p_A")
        .block("B", inner)
        .connect_when("A", "B", "RC = 1")
        .map_to_process_output("B", &[("v", "out")])
        .build()
        .unwrap();
    rig.ok_program("p_A");
    let engine = rig.engine();
    engine.register(outer).unwrap();
    let id = engine.start("outer", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    assert_eq!(engine.output(id).unwrap().get("out"), Some(&Value::Int(9)));
    // Nested paths appear in the journal.
    let order = audit::execution_order(&engine.journal_events(), id);
    assert_eq!(order, vec!["A", "B", "B/X", "B/Y"]);
}

#[test]
fn block_exit_condition_loops_whole_block() {
    // The block's inner activity returns rc 0 on attempt 0 and rc 1
    // afterwards; the *block's* RC comes from the inner process output
    // and the block's exit condition re-runs the entire block.
    let rig = Rig::new();
    let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let calls2 = Arc::clone(&calls);
    rig.programs.register_fn("flaky", move |_ctx| {
        if calls2.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
            // Only the very first invocation (first block round) fails.
            ProgramOutcome::Aborted {
                rc: 0,
                reason: "first round fails".into(),
            }
        } else {
            ProgramOutcome::committed()
        }
    });
    // Inner process exposes RC of its activity as the block RC.
    let inner = ProcessBuilder::new("inner")
        .output(ContainerSchema::of(&[("RC", DataType::Int)]))
        .activity(Activity::program("F", "flaky"))
        .map_to_process_output("F", &[("RC", "RC")])
        .build()
        .unwrap();
    let mut outer = ProcessBuilder::new("outer")
        .block("B", inner)
        .build()
        .unwrap();
    // The block's own exit condition re-runs the entire block until
    // the embedded process reports RC = 1.
    outer.activities[0].exit = wfms_model::process::ExitCondition::when("RC = 1");
    assert!(wfms_model::validate(&outer).is_empty());
    let engine = rig.engine();
    engine.register(outer).unwrap();
    let id = engine.start("outer", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    let (_, _, attempts) = engine.activity_state(id, "B").unwrap();
    assert!(attempts >= 1, "block looped at least once");
}

#[test]
fn manual_activity_waits_on_worklist_and_claim_is_exclusive() {
    let rig = Rig::new();
    rig.ok_program("p_M");
    let org = OrgModel::new()
        .person("boss", &["manager"])
        .person_under("ann", &["clerk"], "boss", 2)
        .person_under("bob", &["clerk"], "boss", 2);
    let def = ProcessBuilder::new("manual")
        .activity(Activity::program("M", "p_M").for_role("clerk"))
        .build()
        .unwrap();
    let engine = rig.engine_with_org(org);
    engine.register(def).unwrap();
    let id = engine.start("manual", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Running
    );

    // Both clerks see the item; claiming removes it from the other's
    // list (§3.3 load balancing).
    let ann_items = engine.worklist("ann");
    let bob_items = engine.worklist("bob");
    assert_eq!(ann_items.len(), 1);
    assert_eq!(bob_items.len(), 1);
    assert_eq!(ann_items[0].id, bob_items[0].id);
    engine.claim(ann_items[0].id, "ann").unwrap();
    assert!(engine.worklist("bob").is_empty());
    assert!(matches!(
        engine.claim(ann_items[0].id, "bob"),
        Err(EngineError::Worklist(_))
    ));

    engine.execute_item(ann_items[0].id, "ann").unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    assert_eq!(rig.log(), "p_M");
    assert!(engine.worklist("ann").is_empty());
}

#[test]
fn deadline_notifies_manager_once() {
    let rig = Rig::new();
    rig.ok_program("p_M");
    let org =
        OrgModel::new()
            .person("boss", &["manager"])
            .person_under("ann", &["clerk"], "boss", 2);
    let def = ProcessBuilder::new("slow")
        .activity(
            Activity::program("M", "p_M")
                .for_role("clerk")
                .with_deadline(10),
        )
        .build()
        .unwrap();
    let engine = rig.engine_with_org(org);
    engine.register(def).unwrap();
    let id = engine.start("slow", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    assert!(engine.advance_clock(5).is_empty(), "not yet due");
    let sent = engine.advance_clock(6);
    assert_eq!(sent, vec![("M".to_string(), "boss".to_string())]);
    assert!(engine.advance_clock(100).is_empty(), "notified only once");
    let s = audit::summarize(&engine.journal_events(), id);
    assert_eq!(s.notifications, 1);
}

#[test]
fn force_finish_unblocks_manual_activity() {
    let rig = Rig::new();
    rig.ok_program("p_M");
    rig.ok_program("p_N");
    let org = OrgModel::new().person("ann", &["clerk"]);
    let def = ProcessBuilder::new("forced")
        .activity(Activity::program("M", "p_M").for_role("clerk"))
        .program("N", "p_N")
        .connect_when("M", "N", "RC = 1")
        .build()
        .unwrap();
    let engine = rig.engine_with_org(org);
    engine.register(def).unwrap();
    let id = engine.start("forced", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Running);

    engine.force_finish(id, "M", 1).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    assert_eq!(rig.log(), "p_N", "M itself never ran; N did");
    // Work item is gone.
    assert!(engine.worklist("ann").is_empty());
}

#[test]
fn cancel_stops_navigation_and_clears_worklists() {
    let rig = Rig::new();
    rig.ok_program("p_M");
    let org = OrgModel::new().person("ann", &["clerk"]);
    let def = ProcessBuilder::new("cancelme")
        .activity(Activity::program("M", "p_M").for_role("clerk"))
        .build()
        .unwrap();
    let engine = rig.engine_with_org(org);
    engine.register(def).unwrap();
    let id = engine.start("cancelme", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(engine.worklist("ann").len(), 1);
    engine.cancel(id).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Cancelled);
    assert!(engine.worklist("ann").is_empty());
    // Cancelled instances do not navigate further.
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Cancelled
    );
}

#[test]
fn register_rejects_invalid_definition() {
    let rig = Rig::new();
    let engine = rig.engine();
    let bad = ProcessBuilder::new("bad")
        .program("A", "p")
        .connect("A", "Ghost")
        .build_unchecked();
    assert!(matches!(
        engine.register(bad),
        Err(EngineError::Validation(_))
    ));
    assert!(matches!(
        engine.start("bad", Container::empty()),
        Err(EngineError::UnknownProcess(_))
    ));
}

#[test]
fn recovery_resumes_from_journal_events() {
    // Run half the process, "crash" (drop the engine keeping the
    // events), recover, and finish. The recovered run must execute
    // only the remaining activities.
    let rig = Rig::new();
    for n in ["A", "B", "C"] {
        rig.ok_program(&format!("p_{n}"));
    }
    let def = linear(&["A", "B", "C"]);

    // Manual-start B so the instance pauses mid-way.
    let mut def2 = def.clone();
    def2.activities[1] = Activity::program("B", "p_B").for_role("clerk");
    let org = OrgModel::new().person("ann", &["clerk"]);

    let engine = rig.engine_with_org(org.clone());
    engine.register(def2.clone()).unwrap();
    let id = engine.start("linear", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(rig.log(), "p_A", "paused before B");

    let events = engine.journal_events();
    drop(engine); // crash

    let recovered = recover_from(
        Journal::new(),
        events,
        vec![def2],
        org,
        Arc::clone(&rig.fed),
        Arc::clone(&rig.programs),
    )
    .unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Running);
    // The work item survived recovery.
    let items = recovered.worklist("ann");
    assert_eq!(items.len(), 1);
    recovered.execute_item(items[0].id, "ann").unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Finished);
    assert_eq!(rig.log(), "p_A,p_B,p_C", "A not re-run; B and C ran once");
}

#[test]
fn recovery_restarts_activity_that_was_running() {
    // Simulate a crash mid-activity: journal ends with ActivityStarted.
    let rig = Rig::new();
    for n in ["A", "B"] {
        rig.ok_program(&format!("p_{n}"));
    }
    let def = linear(&["A", "B"]);
    let engine = rig.engine();
    engine.register(def.clone()).unwrap();
    let id = engine.start("linear", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let mut events = engine.journal_events();
    drop(engine);

    // Truncate the journal to just after B started (the crash point):
    // drop B's finish/termination and the instance finish.
    let cut = events
        .iter()
        .position(|e| matches!(e, wfms_engine::Event::ActivityStarted { path, .. } if path == "B"))
        .unwrap();
    events.truncate(cut + 1);

    let recovered = recover_from(
        Journal::new(),
        events,
        vec![def],
        OrgModel::new(),
        Arc::clone(&rig.fed),
        Arc::clone(&rig.programs),
    )
    .unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Running);
    recovered.run_to_quiescence(id).unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Finished);
    // B ran twice in total (once before the crash, once after) — the
    // paper's re-execute-from-the-beginning caveat.
    assert_eq!(rig.log(), "p_A,p_B,p_B");
}

#[test]
fn recovery_via_journal_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("wftx-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.journal");
    let _ = std::fs::remove_file(&path);

    let rig = Rig::new();
    for n in ["A", "B"] {
        rig.ok_program(&format!("p_{n}"));
    }
    let mut def = linear(&["A", "B"]);
    def.activities[1] = Activity::program("B", "p_B").for_role("clerk");
    let org = OrgModel::new().person("ann", &["clerk"]);

    {
        let engine = Engine::with_config(
            Arc::clone(&rig.fed),
            Arc::clone(&rig.programs),
            EngineConfig {
                org: org.clone(),
                journal_path: Some(path.clone()),
                ..EngineConfig::default()
            },
        );
        engine.register(def.clone()).unwrap();
        let id = engine.start("linear", Container::empty()).unwrap();
        engine.run_to_quiescence(id).unwrap();
        engine.crash();
    }

    let recovered = wfms_engine::recover(
        &path,
        vec![def],
        org,
        Arc::clone(&rig.fed),
        Arc::clone(&rig.programs),
    )
    .unwrap();
    let items = recovered.worklist("ann");
    assert_eq!(items.len(), 1);
    recovered.execute_item(items[0].id, "ann").unwrap();
    assert_eq!(rig.log(), "p_A,p_B");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn process_input_reaches_first_activity() {
    let rig = Rig::new();
    rig.programs.register_fn("greet", |ctx| {
        let who = ctx
            .params
            .get("who")
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_default();
        ProgramOutcome::Committed {
            rc: 1,
            outputs: [("greeting".to_string(), Value::from(format!("hi {who}")))]
                .into_iter()
                .collect(),
        }
    });
    let def = ProcessBuilder::new("greeter")
        .input(ContainerSchema::of(&[("name", DataType::Str)]))
        .output(ContainerSchema::of(&[("msg", DataType::Str)]))
        .activity(
            Activity::program("G", "greet")
                .with_input(ContainerSchema::of(&[("who", DataType::Str)]))
                .with_output(ContainerSchema::of(&[("greeting", DataType::Str)])),
        )
        .map_process_input("G", &[("name", "who")])
        .map_to_process_output("G", &[("greeting", "msg")])
        .build()
        .unwrap();
    let engine = rig.engine();
    engine.register(def).unwrap();
    let mut input = Container::empty();
    input.set("name", Value::from("ann"));
    let id = engine.start("greeter", input).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(
        engine.output(id).unwrap().get("msg"),
        Some(&Value::from("hi ann"))
    );
}
