//! Property-based tests of the navigator over random acyclic
//! processes with random program outcomes:
//!
//! * every instance reaches `Finished` with every activity terminated;
//! * executed + eliminated = total activities; nothing runs twice;
//! * AND/OR start-condition semantics hold for every executed or
//!   eliminated activity;
//! * navigation is deterministic (identical journals for identical
//!   worlds);
//! * crash–recovery at any step converges to the uninterrupted
//!   outcome.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{
    audit, recover_from, ActState, Engine, Event, InstanceId, InstanceStatus, Journal, OrgModel,
};
use wfms_model::{Activity, Container, ControlConnector, Expr, ProcessDefinition, StartCondition};

/// A generated scenario: a DAG over `n` activities with edges
/// (i < j), per-activity OR/AND joins and per-activity commit/abort
/// outcomes.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize)>,
    or_join: Vec<bool>,
    commits: Vec<bool>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..9).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            prop::collection::vec((0usize..n, 0usize..n), 0..=max_edges),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(raw_edges, or_join, commits)| {
                let mut seen = BTreeSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b))
                    })
                    .collect();
                Scenario {
                    n,
                    edges,
                    or_join,
                    commits,
                }
            })
    })
}

fn build(s: &Scenario) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("prop");
    for i in 0..s.n {
        let mut a = Activity::program(&format!("A{i}"), &format!("prog{i}"));
        if s.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b) in &s.edges {
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    def
}

fn world(s: &Scenario) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &commit) in s.commits.iter().enumerate() {
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    (fed, registry)
}

/// Final `(executed, state)` per activity.
fn final_states(engine: &Engine, s: &Scenario) -> BTreeMap<String, (ActState, bool)> {
    (0..s.n)
        .map(|i| {
            let name = format!("A{i}");
            let (state, executed, _) = engine
                .activity_state(InstanceId(1), &name)
                .expect("activity exists");
            (name, (state, executed))
        })
        .collect()
}

fn run(s: &Scenario) -> (Engine, Vec<Event>) {
    let def = build(s);
    assert!(wfms_model::validate(&def).is_empty());
    let (fed, registry) = world(s);
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    let id = engine.start("prop", Container::empty()).unwrap();
    let status = engine.run_to_quiescence(id).unwrap();
    assert_eq!(status, InstanceStatus::Finished);
    let events = engine.journal_events();
    (engine, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Completion + conservation: everything terminates exactly once,
    /// split between executed and eliminated.
    #[test]
    fn every_activity_terminates_exactly_once(s in scenario()) {
        let (engine, events) = run(&s);
        let summary = audit::summarize(&events, InstanceId(1));
        prop_assert_eq!(summary.completed + summary.eliminated, s.n as u64);
        // Without exit conditions nothing runs twice.
        for (_, count) in audit::executions_by_activity(&events, InstanceId(1)) {
            prop_assert_eq!(count, 1);
        }
        let states = final_states(&engine, &s);
        prop_assert!(states.values().all(|(st, _)| *st == ActState::Terminated));
    }

    /// Join semantics: an executed activity's incoming connectors
    /// satisfy its start condition; an eliminated one's refute it.
    #[test]
    fn start_condition_semantics(s in scenario()) {
        let (engine, events) = run(&s);
        let states = final_states(&engine, &s);
        // Reconstruct connector values from the journal.
        let mut conn: BTreeMap<(String, String), bool> = BTreeMap::new();
        for e in &events {
            if let Event::ConnectorEvaluated { from, to, value, .. } = e {
                conn.insert((from.to_string(), to.to_string()), *value);
            }
        }
        for i in 0..s.n {
            let name = format!("A{i}");
            let incoming: Vec<bool> = s
                .edges
                .iter()
                .filter(|&&(_, b)| b == i)
                .map(|&(a, _)| conn[&(format!("A{a}"), name.clone())])
                .collect();
            let (_, executed) = states[&name];
            if incoming.is_empty() {
                prop_assert!(executed, "start activities always run");
                continue;
            }
            let expected = if s.or_join[i] {
                incoming.iter().any(|&v| v)
            } else {
                incoming.iter().all(|&v| v)
            };
            prop_assert_eq!(
                executed, expected,
                "activity {} or_join={} incoming={:?}", name, s.or_join[i], incoming
            );
        }
        // Every connector was evaluated exactly once.
        prop_assert_eq!(conn.len(), s.edges.len());
    }

    /// Determinism: two identical worlds produce identical journals.
    #[test]
    fn navigation_is_deterministic(s in scenario()) {
        let (_, ev1) = run(&s);
        let (_, ev2) = run(&s);
        prop_assert_eq!(ev1, ev2);
    }

    /// Crash–recovery convergence: crashing after `k` navigation
    /// steps and recovering yields the same final states as the
    /// uninterrupted run.
    #[test]
    fn crash_recovery_converges(s in scenario(), k in 0usize..12) {
        let (engine, _) = run(&s);
        let reference = final_states(&engine, &s);

        let def = build(&s);
        let (fed, registry) = world(&s);
        let engine2 = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
        engine2.register(def.clone()).unwrap();
        let id = engine2.start("prop", Container::empty()).unwrap();
        for _ in 0..k {
            if !engine2.step(id).unwrap() {
                break;
            }
        }
        let events = engine2.journal_events();
        engine2.crash();

        let recovered = recover_from(
            Journal::new(),
            events,
            vec![def],
            OrgModel::new(),
            fed,
            registry,
        ).unwrap();
        let status = recovered.run_to_quiescence(id).unwrap();
        prop_assert_eq!(status, InstanceStatus::Finished);
        let after = final_states(&recovered, &s);
        prop_assert_eq!(after, reference);
    }
}
