//! Crash-point sweeps and differential tests **through a live
//! migration**: a versioned deploy (`TemplateDeployed`) followed by a
//! scope-boundary migration (`Migrated`) must be exactly as
//! crash-proof as plain navigation — wherever the engine dies, the
//! recovered run lands on the same statuses, outputs, journal suffix
//! and database state as the uncrashed one.
//!
//! The scenario parks an instance on a manual work item (the scope
//! boundary), deploys a v2 that differs strictly downstream of the
//! park point, migrates, and completes the item so the tail runs under
//! v2. The sweep enumerates every crash point through that operator
//! sequence, including points between `TemplateDeployed` and
//! `Migrated` and points mid-manual-execution.

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::crashtest::{sweep_with_script, SweepConfig, SweepScript};
use wfms_engine::{recover, Engine, EngineConfig, InstanceStatus, MigrationOutcome, OrgModel};
use wfms_model::{Activity, Container, ProcessBuilder, ProcessDefinition};

/// v1: `A -> M(manual, clerk) -> B`.
fn v1() -> ProcessDefinition {
    ProcessBuilder::new("mig")
        .program("A", "p_A")
        .activity(Activity::program("M", "p_M").for_role("clerk"))
        .program("B", "p_B")
        .connect_when("A", "M", "RC = 1")
        .connect_when("M", "B", "RC = 1")
        .build()
        .unwrap()
}

/// v2: `A -> M(manual, clerk) -> C` — changed strictly downstream of
/// the manual park point, so a parked instance is at a scope boundary
/// the migration accepts.
fn v2() -> ProcessDefinition {
    ProcessBuilder::new("mig")
        .program("A", "p_A")
        .activity(Activity::program("M", "p_M").for_role("clerk"))
        .program("C", "p_C")
        .connect_when("A", "M", "RC = 1")
        .connect_when("M", "C", "RC = 1")
        .build()
        .unwrap()
}

fn org() -> OrgModel {
    OrgModel::new().person("ann", &["clerk"])
}

/// Fresh federation + programs; every program appends its name to the
/// `log` key, so the database state distinguishes a v1 tail (`p_B`)
/// from a v2 tail (`p_C`).
fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(7);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    for name in ["p_A", "p_M", "p_B", "p_C"] {
        let fed = Arc::clone(&fed);
        registry.register_fn(name, move |_| {
            let db = fed.db("db").unwrap();
            loop {
                let mut t = db.begin();
                let prev = match t.get("log") {
                    Ok(v) => v
                        .and_then(|v| v.as_str().map(str::to_owned))
                        .unwrap_or_default(),
                    Err(_) => continue,
                };
                let next = if prev.is_empty() {
                    name.to_owned()
                } else {
                    format!("{prev},{name}")
                };
                if t.put("log", next).is_err() {
                    continue;
                }
                if t.commit().is_ok() {
                    break;
                }
            }
            ProgramOutcome::committed()
        });
    }
    (fed, registry)
}

/// Sweep variant of [`world`]: programs mark `ran:<name>` instead of
/// appending. §3.3 re-executes an activity that was mid-flight at the
/// crash, so swept programs must be **idempotent** — and the marker
/// keys still distinguish a v1 tail (`ran:p_B`) from a v2 tail
/// (`ran:p_C`) in the federation-state comparison.
fn world_idempotent() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(7);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    for name in ["p_A", "p_M", "p_B", "p_C"] {
        let fed = Arc::clone(&fed);
        registry.register_fn(name, move |_| {
            let db = fed.db("db").unwrap();
            loop {
                let mut t = db.begin();
                if t.put(&format!("ran:{name}"), "done").is_err() {
                    continue;
                }
                if t.commit().is_ok() {
                    break;
                }
            }
            ProgramOutcome::committed()
        });
    }
    (fed, registry)
}

fn log_of(fed: &Arc<MultiDatabase>) -> String {
    fed.db("db")
        .unwrap()
        .peek("log")
        .and_then(|v| v.as_str().map(str::to_owned))
        .unwrap_or_default()
}

/// Satellite: the crash-point sweep through deploy + migration. Every
/// journal prefix — including prefixes cutting between
/// `TemplateDeployed` and `Migrated`, and mid-manual-execution — must
/// recover to the reference run's end state.
#[test]
fn migration_survives_every_crash_point() {
    let (v1, v2) = (v1(), v2());
    assert!(wfms_model::validate(&v1).is_empty());
    assert!(wfms_model::validate(&v2).is_empty());

    let drive = |engine: &Engine| -> Result<Vec<wfms_engine::InstanceId>, String> {
        engine
            .register(v1.clone())
            .map_err(|e| format!("register v1: {e}"))?;
        let id = engine
            .start("mig", Container::empty())
            .map_err(|e| format!("start: {e}"))?;
        engine.run_all().map_err(|e| format!("run: {e}"))?;
        engine
            .register(v2.clone())
            .map_err(|e| format!("register v2: {e}"))?;
        match engine
            .migrate_to_default(id)
            .map_err(|e| format!("migrate: {e}"))?
        {
            MigrationOutcome::Migrated { .. } => {}
            other => return Err(format!("expected a migration, got {other:?}")),
        }
        engine.run_all().map_err(|e| format!("run: {e}"))?;
        let items = engine.worklist("ann");
        if items.len() != 1 {
            return Err(format!("expected 1 work item, got {}", items.len()));
        }
        engine
            .execute_item(items[0].id, "ann")
            .map_err(|e| format!("execute: {e}"))?;
        engine.run_all().map_err(|e| format!("run: {e}"))?;
        Ok(vec![id])
    };
    // Idempotent re-drive: every step is a no-op when the journal
    // prefix already holds its effect (re-registering the deployed v2
    // journals nothing, re-migrating answers AlreadyCurrent, the
    // worklist only surfaces still-open items).
    let resume = |engine: &Engine| -> Result<(), String> {
        engine.run_all().map_err(|e| format!("resume run: {e}"))?;
        engine
            .register(v2.clone())
            .map_err(|e| format!("resume register v2: {e}"))?;
        for (id, _, status) in engine.instances() {
            if status == InstanceStatus::Running {
                engine
                    .migrate_to_default(id)
                    .map_err(|e| format!("resume migrate: {e}"))?;
            }
        }
        engine.run_all().map_err(|e| format!("resume run: {e}"))?;
        for item in engine.worklist("ann") {
            engine
                .execute_item(item.id, "ann")
                .map_err(|e| format!("resume execute: {e}"))?;
        }
        engine.run_all().map_err(|e| format!("resume run: {e}"))?;
        Ok(())
    };

    let recovery_templates = [v1.clone(), v2.clone()];
    for torn_tail in [true, false] {
        let report = sweep_with_script(
            "migration",
            &recovery_templates,
            &SweepScript {
                drive: &drive,
                resume: &resume,
                org: org(),
            },
            &world_idempotent,
            &SweepConfig { torn_tail },
        )
        .unwrap();
        assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
        assert!(report.total_events > 0);
    }
}

/// A deployed v2 becomes the default for *new* submits only: an
/// instance parked mid-run keeps its pinned v1, finishes under v1's
/// downstream (`p_B`), and a post-deploy instance runs v2's (`p_C`).
#[test]
fn deploy_does_not_disturb_running_instances() {
    let (fed, programs) = world();
    let engine = Engine::with_config(
        fed.clone(),
        programs,
        EngineConfig {
            org: org(),
            ..EngineConfig::default()
        },
    );
    let tv1 = engine.register(v1()).unwrap();
    let i1 = engine.start("mig", Container::empty()).unwrap();
    engine.run_all().unwrap();

    let tv2 = engine.register(v2()).unwrap();
    assert_ne!(tv1.version, tv2.version, "spec change must change the hash");
    let i2 = engine.start("mig", Container::empty()).unwrap();
    engine.run_all().unwrap();

    assert_eq!(engine.instance_version(i1).unwrap(), tv1.version);
    assert_eq!(engine.instance_version(i2).unwrap(), tv2.version);

    // Complete both parked work items; each instance's tail runs under
    // its own pinned version.
    let items = engine.worklist("ann");
    assert_eq!(items.len(), 2);
    for item in items {
        engine.execute_item(item.id, "ann").unwrap();
    }
    assert_eq!(engine.status(i1).unwrap(), InstanceStatus::Finished);
    assert_eq!(engine.status(i2).unwrap(), InstanceStatus::Finished);
    assert_eq!(engine.instance_version(i1).unwrap(), tv1.version);
    assert_eq!(engine.instance_version(i2).unwrap(), tv2.version);
    let log = log_of(&fed);
    assert!(log.contains("p_B"), "v1 instance must run B: {log}");
    assert!(log.contains("p_C"), "v2 instance must run C: {log}");
}

/// Differential: recovering a journal holding N versions must agree,
/// per instance, with single-version runs of the pinned definition —
/// same status, same output, same pinned version, same database tail.
#[test]
fn multi_version_recovery_matches_single_version_runs() {
    // Single-version reference runs on their own worlds.
    let single = |def: ProcessDefinition| -> (InstanceStatus, Container, String) {
        let (fed, programs) = world();
        let engine = Engine::with_config(
            fed.clone(),
            programs,
            EngineConfig {
                org: org(),
                ..EngineConfig::default()
            },
        );
        engine.register(def).unwrap();
        let id = engine.start("mig", Container::empty()).unwrap();
        engine.run_all().unwrap();
        let items = engine.worklist("ann");
        assert_eq!(items.len(), 1);
        engine.execute_item(items[0].id, "ann").unwrap();
        (
            engine.status(id).unwrap(),
            engine.output(id).unwrap(),
            log_of(&fed),
        )
    };
    let (s1, o1, l1) = single(v1());
    let (s2, o2, l2) = single(v2());
    assert_eq!(s1, InstanceStatus::Finished);
    assert_eq!(s2, InstanceStatus::Finished);
    assert_eq!(l1, "p_A,p_M,p_B");
    assert_eq!(l2, "p_A,p_M,p_C");

    // Multi-version run against a file journal: i1 completes under v1
    // *before* the v2 deploy, i2 starts after it.
    let dir = std::env::temp_dir().join(format!(
        "wfms-migration-diff-{}-{}",
        std::process::id(),
        line!()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("multi.journal");
    let (fed, programs) = world();
    let (i1, i2, tv1, tv2);
    {
        let engine = Engine::with_config(
            fed.clone(),
            programs.clone(),
            EngineConfig {
                org: org(),
                journal_path: Some(path.clone()),
                ..EngineConfig::default()
            },
        );
        tv1 = engine.register(v1()).unwrap();
        i1 = engine.start("mig", Container::empty()).unwrap();
        engine.run_all().unwrap();
        let items = engine.worklist("ann");
        assert_eq!(items.len(), 1);
        engine.execute_item(items[0].id, "ann").unwrap();

        tv2 = engine.register(v2()).unwrap();
        i2 = engine.start("mig", Container::empty()).unwrap();
        engine.run_all().unwrap();
        let items = engine.worklist("ann");
        assert_eq!(items.len(), 1);
        engine.execute_item(items[0].id, "ann").unwrap();
        // Crash: the engine vanishes, journal and federation survive.
    }

    let recovered = recover(&path, vec![v1(), v2()], org(), fed.clone(), programs).unwrap();
    assert_eq!(recovered.status(i1).unwrap(), s1);
    assert_eq!(recovered.status(i2).unwrap(), s2);
    assert_eq!(recovered.output(i1).unwrap(), o1);
    assert_eq!(recovered.output(i2).unwrap(), o2);
    assert_eq!(recovered.instance_version(i1).unwrap(), tv1.version);
    assert_eq!(recovered.instance_version(i2).unwrap(), tv2.version);
    // The shared federation saw the v1 tail then the v2 tail.
    assert_eq!(log_of(&fed), format!("{l1},{}", l2));
    let _ = std::fs::remove_dir_all(&dir);
}
