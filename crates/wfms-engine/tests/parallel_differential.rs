//! Differential tests for the two navigation paths introduced with
//! compiled templates:
//!
//! * **compiled vs. reference**: the indexed navigator must produce
//!   exactly the event sequence of [`RefEngine`], the string-keyed
//!   definition-walking interpreter kept as an executable
//!   specification;
//! * **parallel vs. sequential**: [`Engine::run_all_parallel`] must be
//!   observationally identical to [`Engine::run_all`] — same per
//!   instance statuses, outputs, event sequences, and (because shards
//!   are merged in instance-id order) the same whole journal — for
//!   programs that are deterministic and order-independent.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{Engine, InstanceId, InstanceStatus, RefEngine};
use wfms_model::{
    Activity, Container, ControlConnector, Expr, ProcessBuilder, ProcessDefinition,
    StartCondition,
};

/// A generated scenario: a DAG over `n` activities with edges
/// (i < j), per-activity OR/AND joins and per-activity commit/abort
/// outcomes.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize)>,
    or_join: Vec<bool>,
    commits: Vec<bool>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..9).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            prop::collection::vec((0usize..n, 0usize..n), 0..=max_edges),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(raw_edges, or_join, commits)| {
                let mut seen = BTreeSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b))
                    })
                    .collect();
                Scenario {
                    n,
                    edges,
                    or_join,
                    commits,
                }
            })
    })
}

fn build(s: &Scenario) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("prop");
    for i in 0..s.n {
        let mut a = Activity::program(&format!("A{i}"), &format!("prog{i}"));
        if s.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b) in &s.edges {
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    def
}

/// Programs are pure functions of their scripted outcome — no shared
/// state, no attempt counters — so instance execution order cannot
/// influence results and the parallel/sequential comparison is exact.
fn world(s: &Scenario) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &commit) in s.commits.iter().enumerate() {
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    (fed, registry)
}

fn engine_with(s: &Scenario) -> Engine {
    let def = build(s);
    assert!(wfms_model::validate(&def).is_empty());
    let (fed, registry) = world(s);
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled navigator reproduces the reference interpreter's
    /// event stream exactly — same events, same order, same payloads.
    #[test]
    fn compiled_navigator_matches_reference_interpreter(s in scenario()) {
        let engine = engine_with(&s);
        let id = engine.start("prop", Container::empty()).unwrap();
        let status = engine.run_to_quiescence(id).unwrap();

        let (fed, registry) = world(&s);
        let mut reference = RefEngine::new(fed, registry);
        reference.register(build(&s));
        let rid = reference.start("prop", Container::empty());
        let ref_status = reference.run_to_quiescence(rid);

        prop_assert_eq!(status, ref_status);
        prop_assert_eq!(engine.output(id).unwrap(), reference.output(rid));
        prop_assert_eq!(engine.journal_events(), reference.events().to_vec());
    }

    /// Parallel execution is observationally identical to sequential:
    /// statuses, outputs, per-instance event sequences and the merged
    /// journal all agree.
    #[test]
    fn parallel_matches_sequential(s in scenario(), m in 1usize..6, workers in 1usize..5) {
        let seq = engine_with(&s);
        let par = engine_with(&s);
        let ids: Vec<InstanceId> = (0..m)
            .map(|_| {
                let a = seq.start("prop", Container::empty()).unwrap();
                let b = par.start("prop", Container::empty()).unwrap();
                prop_assert_eq!(a, b);
                Ok(a)
            })
            .collect::<Result<_, TestCaseError>>()?;

        seq.run_all().unwrap();
        par.run_all_parallel(workers).unwrap();

        for &id in &ids {
            prop_assert_eq!(seq.status(id).unwrap(), par.status(id).unwrap());
            prop_assert_eq!(seq.output(id).unwrap(), par.output(id).unwrap());
            prop_assert_eq!(seq.events_for(id), par.events_for(id));
        }
        prop_assert_eq!(seq.journal_events(), par.journal_events());
    }
}

/// A deterministic, non-proptest smoke of the scheduler at scale:
/// 100 chain instances across 8 workers, byte-identical journal to
/// the sequential run.
#[test]
fn hundred_instances_parallel_equals_sequential() {
    fn build_engine() -> Engine {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        registry.register_fn("ok", |_| ProgramOutcome::committed());
        let mut b = ProcessBuilder::new("chain");
        for i in 0..10 {
            b = b.program(&format!("A{i}"), "ok");
            if i > 0 {
                b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
            }
        }
        let engine = Engine::new(fed, registry);
        engine.register(b.build().unwrap()).unwrap();
        engine
    }

    let seq = build_engine();
    let par = build_engine();
    for _ in 0..100 {
        seq.start("chain", Container::empty()).unwrap();
        par.start("chain", Container::empty()).unwrap();
    }
    seq.run_all().unwrap();
    par.run_all_parallel(8).unwrap();

    for (id, _, status) in seq.instances() {
        assert_eq!(status, InstanceStatus::Finished);
        assert_eq!(par.status(id).unwrap(), InstanceStatus::Finished);
    }
    assert_eq!(seq.journal_events(), par.journal_events());
}

/// `FailurePlan::Probability` decisions must not depend on worker
/// scheduling: each label draws from its own seeded stream
/// (`seed ^ hash(label)`), so the k-th decision for a label is a pure
/// function of the seed — not of which thread asked first. Before
/// per-label streams, all labels shared one global RNG and any
/// cross-label interleaving change (exactly what `run_all_parallel`
/// introduces) reshuffled every decision. Each process here carries
/// its own labels so a label's draw order is instance-local.
#[test]
fn probability_injection_parallel_equals_sequential() {
    fn build_engine(seed: u64) -> Engine {
        let fed = MultiDatabase::new(seed);
        fed.add_database("db");
        let registry = Arc::new(ProgramRegistry::new());
        let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
        for j in 0..6 {
            let mut b = ProcessBuilder::new(&format!("proc{j}"));
            for i in 0..4 {
                let label = format!("p{j}a{i}");
                registry.register(Arc::new(
                    txn_substrate::KvProgram::write(&label, "db", &label, 1i64)
                        .with_label(&label),
                ));
                fed.injector()
                    .set_plan(&label, txn_substrate::FailurePlan::Probability { p: 0.5 });
                b = b.program(&format!("A{i}"), &label);
                if i > 0 {
                    b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
                }
            }
            engine.register(b.build().unwrap()).unwrap();
        }
        engine
    }

    for seed in [0u64, 7, 41] {
        let seq = build_engine(seed);
        let par = build_engine(seed);
        let ids: Vec<InstanceId> = (0..6)
            .map(|j| {
                let a = seq.start(&format!("proc{j}"), Container::empty()).unwrap();
                let b = par.start(&format!("proc{j}"), Container::empty()).unwrap();
                assert_eq!(a, b);
                a
            })
            .collect();
        seq.run_all().unwrap();
        par.run_all_parallel(4).unwrap();
        for &id in &ids {
            assert_eq!(seq.status(id).unwrap(), par.status(id).unwrap(), "seed {seed}");
            assert_eq!(seq.output(id).unwrap(), par.output(id).unwrap(), "seed {seed}");
            assert_eq!(seq.events_for(id), par.events_for(id), "seed {seed}");
        }
        assert_eq!(seq.journal_events(), par.journal_events(), "seed {seed}");
        // The scripted coin actually lands both ways across the run —
        // otherwise this differential would be vacuous.
        let committed = (0..6)
            .flat_map(|j| (0..4).map(move |i| format!("p{j}a{i}")))
            .filter(|label| seq.multidb().db("db").unwrap().peek(label).is_some())
            .count();
        assert!(
            committed > 0 && committed < 24,
            "seed {seed}: all draws identical ({committed}/24 committed)"
        );
    }
}

/// The step-limit error surfaces from parallel workers too (first
/// failing instance by id).
#[test]
fn parallel_propagates_step_limit() {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    // Exit condition can never hold: RC is always 1.
    let mut act = Activity::program("A", "ok");
    act.exit = wfms_model::ExitCondition {
        expr: Some(Expr::var_eq_int("RC", 0)),
    };
    let def = ProcessBuilder::new("livelock")
        .activity(act)
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        wfms_engine::EngineConfig {
            step_limit: 50,
            ..Default::default()
        },
    );
    engine.register(def).unwrap();
    engine.start("livelock", Container::empty()).unwrap();
    let err = engine.run_all_parallel(4).unwrap_err();
    assert!(matches!(err, wfms_engine::EngineError::StepLimit(50)), "{err}");
}
