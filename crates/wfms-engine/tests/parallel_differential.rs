//! Differential tests for the two navigation paths introduced with
//! compiled templates:
//!
//! * **compiled vs. reference**: the indexed navigator must produce
//!   exactly the event sequence of [`RefEngine`], the string-keyed
//!   definition-walking interpreter kept as an executable
//!   specification;
//! * **parallel vs. sequential**: [`Engine::run_all_parallel`] must be
//!   observationally identical to [`Engine::run_all`] — same per
//!   instance statuses, outputs, event sequences, and (because shards
//!   are merged in instance-id order) the same whole journal — for
//!   programs that are deterministic and order-independent.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{
    Engine, EngineConfig, Event, InstanceId, InstanceStatus, OrgModel, RefEngine, WorkItem,
    WorkItemId,
};
use wfms_model::{
    Activity, Container, ControlConnector, Expr, ProcessBuilder, ProcessDefinition, StartCondition,
};

/// A generated scenario: a DAG over `n` activities with edges
/// (i < j), per-activity OR/AND joins, per-activity commit/abort
/// outcomes, and (for staffed scenarios) per-activity manual-start and
/// deadline flags.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize)>,
    or_join: Vec<bool>,
    commits: Vec<bool>,
    manual: Vec<bool>,
    deadline: Vec<bool>,
}

fn scenario_with(staffed: bool) -> impl Strategy<Value = Scenario> {
    (2usize..9).prop_flat_map(move |n| {
        let max_edges = n * (n - 1) / 2;
        let flags = if staffed {
            prop::collection::vec(any::<bool>(), n).boxed()
        } else {
            Just(vec![false; n]).boxed()
        };
        (
            prop::collection::vec((0usize..n, 0usize..n), 0..=max_edges),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
            flags.clone(),
            flags,
        )
            .prop_map(move |(raw_edges, or_join, commits, manual, deadline)| {
                let mut seen = BTreeSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b))
                    })
                    .collect();
                Scenario {
                    n,
                    edges,
                    or_join,
                    commits,
                    manual,
                    deadline,
                }
            })
    })
}

/// Purely automatic scenarios, as the original generator emitted.
fn scenario() -> impl Strategy<Value = Scenario> {
    scenario_with(false)
}

/// Scenarios that may mix manual (role-assigned) and deadline-bearing
/// activities into the DAG, exercising the compiled `any_manual` /
/// `any_deadlines` paths against the oracle and the parallel
/// scheduler.
fn staffed_scenario() -> impl Strategy<Value = Scenario> {
    scenario_with(true)
}

fn build(s: &Scenario) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("prop");
    for i in 0..s.n {
        let mut a = Activity::program(&format!("A{i}"), &format!("prog{i}"));
        if s.manual[i] {
            a = a.for_role("clerk");
            if s.deadline[i] {
                a = a.with_deadline(2);
            }
        }
        if s.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b) in &s.edges {
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    def
}

/// Two clerks under one manager: work items fan out to both, and
/// deadline notifications have somewhere to go.
fn clerks() -> OrgModel {
    OrgModel::new()
        .person("boss", &["manager"])
        .person_under("ann", &["clerk"], "boss", 2)
        .person_under("bob", &["clerk"], "boss", 2)
}

/// Programs are pure functions of their scripted outcome — no shared
/// state, no attempt counters — so instance execution order cannot
/// influence results and the parallel/sequential comparison is exact.
fn world(s: &Scenario) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &commit) in s.commits.iter().enumerate() {
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    (fed, registry)
}

fn engine_with(s: &Scenario) -> Engine {
    let def = build(s);
    assert!(wfms_model::validate(&def).is_empty());
    let (fed, registry) = world(s);
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    engine
}

fn engine_with_org(s: &Scenario) -> Engine {
    let def = build(s);
    assert!(wfms_model::validate(&def).is_empty());
    let (fed, registry) = world(s);
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org: clerks(),
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    engine
}

/// Rewrites work-item ids to their order of first appearance in the
/// event stream. Parallel runs race the shared id allocator, so two
/// observationally identical executions may hand out different ids;
/// everything else about the events must still match exactly.
fn normalize_item_ids(mut events: Vec<Event>) -> Vec<Event> {
    let mut map: HashMap<WorkItemId, WorkItemId> = HashMap::new();
    let mut next = 1u64;
    for e in &mut events {
        match e {
            Event::WorkItemOffered { item, .. } => {
                let id = *map.entry(*item).or_insert_with(|| {
                    let v = WorkItemId(next);
                    next += 1;
                    v
                });
                *item = id;
            }
            Event::WorkItemClaimed { item, .. } => {
                if let Some(id) = map.get(item) {
                    *item = *id;
                }
            }
            _ => {}
        }
    }
    events
}

/// The id-free identity of a work item, for matching items across
/// engines whose allocators diverged.
fn item_key(it: &WorkItem) -> (InstanceId, String, u32, Vec<String>, txn_substrate::Tick) {
    (
        it.instance,
        it.path.clone(),
        it.attempt,
        it.offered_to.clone(),
        it.offered_at,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled navigator reproduces the reference interpreter's
    /// event stream exactly — same events, same order, same payloads.
    #[test]
    fn compiled_navigator_matches_reference_interpreter(s in scenario()) {
        let engine = engine_with(&s);
        let id = engine.start("prop", Container::empty()).unwrap();
        let status = engine.run_to_quiescence(id).unwrap();

        let (fed, registry) = world(&s);
        let mut reference = RefEngine::new(fed, registry);
        reference.register(build(&s));
        let rid = reference.start("prop", Container::empty());
        let ref_status = reference.run_to_quiescence(rid);

        prop_assert_eq!(status, ref_status);
        prop_assert_eq!(engine.output(id).unwrap(), reference.output(rid));
        prop_assert_eq!(engine.journal_events(), reference.events().to_vec());
    }

    /// Parallel execution is observationally identical to sequential:
    /// statuses, outputs, per-instance event sequences and the merged
    /// journal all agree.
    #[test]
    fn parallel_matches_sequential(s in scenario(), m in 1usize..6, workers in 1usize..5) {
        let seq = engine_with(&s);
        let par = engine_with(&s);
        let ids: Vec<InstanceId> = (0..m)
            .map(|_| {
                let a = seq.start("prop", Container::empty()).unwrap();
                let b = par.start("prop", Container::empty()).unwrap();
                prop_assert_eq!(a, b);
                Ok(a)
            })
            .collect::<Result<_, TestCaseError>>()?;

        seq.run_all().unwrap();
        par.run_all_parallel(workers).unwrap();

        for &id in &ids {
            prop_assert_eq!(seq.status(id).unwrap(), par.status(id).unwrap());
            prop_assert_eq!(seq.output(id).unwrap(), par.output(id).unwrap());
            prop_assert_eq!(seq.events_for(id), par.events_for(id));
        }
        prop_assert_eq!(seq.journal_events(), par.journal_events());
    }

    /// Manual and deadline-bearing activities against the oracle: the
    /// compiled navigator's worklist offers, claims, deadline
    /// notifications and post-item navigation must reproduce
    /// [`RefEngine`]'s event stream exactly. Work is drained with a
    /// deterministic policy (lowest open item id, person alternating
    /// by id) with a clock tick per round so deadlines actually fire.
    #[test]
    fn manual_and_deadline_scenarios_match_reference(s in staffed_scenario()) {
        let engine = engine_with_org(&s);
        let id = engine.start("prop", Container::empty()).unwrap();
        engine.run_to_quiescence(id).unwrap();

        let (fed, registry) = world(&s);
        let mut reference = RefEngine::with_org(fed, registry, clerks());
        reference.register(build(&s));
        let rid = reference.start("prop", Container::empty());
        reference.run_to_quiescence(rid);

        // Both engines allocate item ids sequentially from 1, so in
        // this single-threaded differential the ids line up exactly.
        loop {
            prop_assert_eq!(engine.advance_clock(1), reference.advance_clock(1));
            prop_assert_eq!(engine.worklist("ann"), reference.worklist("ann"));
            prop_assert_eq!(engine.worklist("bob"), reference.worklist("bob"));
            let Some(item) = engine.worklist("ann").iter().map(|it| it.id).min() else {
                break;
            };
            let person = if item.0 % 2 == 0 { "bob" } else { "ann" };
            engine.execute_item(item, person).unwrap();
            reference.execute_item(item, person).unwrap();
        }

        prop_assert_eq!(engine.status(id).unwrap(), reference.status(rid));
        prop_assert_eq!(engine.output(id).unwrap(), reference.output(rid));
        prop_assert_eq!(engine.journal_events(), reference.events().to_vec());
    }

    /// Manual activities under the parallel scheduler: automatic
    /// navigation halts at the same worklist frontier as the
    /// sequential run, deadline notifications agree, and draining the
    /// items sequentially converges to identical final states. Item
    /// ids race on the shared allocator across workers, so events are
    /// compared modulo first-appearance id normalization and items are
    /// matched by `(instance, path, attempt, ...)` instead of id.
    #[test]
    fn parallel_run_with_manual_matches_sequential(
        s in staffed_scenario(),
        m in 1usize..4,
        workers in 1usize..5,
    ) {
        let seq = engine_with_org(&s);
        let par = engine_with_org(&s);
        let ids: Vec<InstanceId> = (0..m)
            .map(|_| {
                let a = seq.start("prop", Container::empty()).unwrap();
                let b = par.start("prop", Container::empty()).unwrap();
                prop_assert_eq!(a, b);
                Ok(a)
            })
            .collect::<Result<_, TestCaseError>>()?;

        seq.run_all().unwrap();
        par.run_all_parallel(workers).unwrap();

        // Clock only moves between navigation phases; both engines see
        // the same readiness ages, so the same notifications fire.
        prop_assert_eq!(seq.advance_clock(3), par.advance_clock(3));

        loop {
            let mut sq = seq.worklist("ann");
            let mut pq = par.worklist("ann");
            sq.sort_by_key(item_key);
            pq.sort_by_key(item_key);
            let sk: Vec<_> = sq.iter().map(item_key).collect();
            let pk: Vec<_> = pq.iter().map(item_key).collect();
            prop_assert_eq!(sk, pk, "same open frontier modulo item ids");
            let (Some(s_it), Some(p_it)) = (sq.first(), pq.first()) else {
                break;
            };
            seq.execute_item(s_it.id, "ann").unwrap();
            par.execute_item(p_it.id, "ann").unwrap();
        }

        for &id in &ids {
            prop_assert_eq!(seq.status(id).unwrap(), par.status(id).unwrap());
            prop_assert_eq!(seq.output(id).unwrap(), par.output(id).unwrap());
            prop_assert_eq!(
                normalize_item_ids(seq.events_for(id)),
                normalize_item_ids(par.events_for(id))
            );
        }
        prop_assert_eq!(
            normalize_item_ids(seq.journal_events()),
            normalize_item_ids(par.journal_events())
        );
    }
}

/// A deterministic, non-proptest smoke of the scheduler at scale:
/// 100 chain instances across 8 workers, byte-identical journal to
/// the sequential run.
#[test]
fn hundred_instances_parallel_equals_sequential() {
    fn build_engine() -> Engine {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        registry.register_fn("ok", |_| ProgramOutcome::committed());
        let mut b = ProcessBuilder::new("chain");
        for i in 0..10 {
            b = b.program(&format!("A{i}"), "ok");
            if i > 0 {
                b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
            }
        }
        let engine = Engine::new(fed, registry);
        engine.register(b.build().unwrap()).unwrap();
        engine
    }

    let seq = build_engine();
    let par = build_engine();
    for _ in 0..100 {
        seq.start("chain", Container::empty()).unwrap();
        par.start("chain", Container::empty()).unwrap();
    }
    seq.run_all().unwrap();
    par.run_all_parallel(8).unwrap();

    for (id, _, status) in seq.instances() {
        assert_eq!(status, InstanceStatus::Finished);
        assert_eq!(par.status(id).unwrap(), InstanceStatus::Finished);
    }
    assert_eq!(seq.journal_events(), par.journal_events());
}

/// `FailurePlan::Probability` decisions must not depend on worker
/// scheduling: each label draws from its own seeded stream
/// (`seed ^ hash(label)`), so the k-th decision for a label is a pure
/// function of the seed — not of which thread asked first. Before
/// per-label streams, all labels shared one global RNG and any
/// cross-label interleaving change (exactly what `run_all_parallel`
/// introduces) reshuffled every decision. Each process here carries
/// its own labels so a label's draw order is instance-local.
#[test]
fn probability_injection_parallel_equals_sequential() {
    fn build_engine(seed: u64) -> Engine {
        let fed = MultiDatabase::new(seed);
        fed.add_database("db");
        let registry = Arc::new(ProgramRegistry::new());
        let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
        for j in 0..6 {
            let mut b = ProcessBuilder::new(&format!("proc{j}"));
            for i in 0..4 {
                let label = format!("p{j}a{i}");
                registry.register(Arc::new(
                    txn_substrate::KvProgram::write(&label, "db", &label, 1i64).with_label(&label),
                ));
                fed.injector()
                    .set_plan(&label, txn_substrate::FailurePlan::Probability { p: 0.5 });
                b = b.program(&format!("A{i}"), &label);
                if i > 0 {
                    b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
                }
            }
            engine.register(b.build().unwrap()).unwrap();
        }
        engine
    }

    for seed in [0u64, 7, 41] {
        let seq = build_engine(seed);
        let par = build_engine(seed);
        let ids: Vec<InstanceId> = (0..6)
            .map(|j| {
                let a = seq.start(&format!("proc{j}"), Container::empty()).unwrap();
                let b = par.start(&format!("proc{j}"), Container::empty()).unwrap();
                assert_eq!(a, b);
                a
            })
            .collect();
        seq.run_all().unwrap();
        par.run_all_parallel(4).unwrap();
        for &id in &ids {
            assert_eq!(
                seq.status(id).unwrap(),
                par.status(id).unwrap(),
                "seed {seed}"
            );
            assert_eq!(
                seq.output(id).unwrap(),
                par.output(id).unwrap(),
                "seed {seed}"
            );
            assert_eq!(seq.events_for(id), par.events_for(id), "seed {seed}");
        }
        assert_eq!(seq.journal_events(), par.journal_events(), "seed {seed}");
        // The scripted coin actually lands both ways across the run —
        // otherwise this differential would be vacuous.
        let committed = (0..6)
            .flat_map(|j| (0..4).map(move |i| format!("p{j}a{i}")))
            .filter(|label| seq.multidb().db("db").unwrap().peek(label).is_some())
            .count();
        assert!(
            committed > 0 && committed < 24,
            "seed {seed}: all draws identical ({committed}/24 committed)"
        );
    }
}

/// The step-limit error surfaces from parallel workers too (first
/// failing instance by id).
#[test]
fn parallel_propagates_step_limit() {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    // Exit condition can never hold: RC is always 1.
    let mut act = Activity::program("A", "ok");
    act.exit = wfms_model::ExitCondition {
        expr: Some(Expr::var_eq_int("RC", 0)),
    };
    let def = ProcessBuilder::new("livelock")
        .activity(act)
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        wfms_engine::EngineConfig {
            step_limit: 50,
            ..Default::default()
        },
    );
    engine.register(def).unwrap();
    engine.start("livelock", Container::empty()).unwrap();
    let err = engine.run_all_parallel(4).unwrap_err();
    assert!(
        matches!(err, wfms_engine::EngineError::StepLimit(50)),
        "{err}"
    );
}
