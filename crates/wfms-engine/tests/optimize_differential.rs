//! Differential tests for analysis-driven template optimization: an
//! optimized template must be observationally identical to the
//! unoptimized compile of the same definition — same statuses, same
//! outputs, and a byte-identical event journal — because every rewrite
//! (constant plans, pruned data maps, recomputed worklist/deadline
//! indexes) only removes work, never events.
//!
//! The generator leans into what the optimizer rewrites: no-op
//! activities (RC pinned to 1), exit conditions that pin RC, and edge
//! conditions over RC in both polarities, producing decided edges and
//! statically-dead subgraphs in most cases.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{optimize, CompiledProcess, Engine, InstanceStatus};
use wfms_model::{Activity, Container, ControlConnector, Expr, ProcessDefinition, StartCondition};

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    /// Per activity: 0 = committing program, 1 = aborting program,
    /// 2 = no-op.
    kind: Vec<u8>,
    /// Per activity: pin RC with `EXIT WHEN "RC = 1"`. Only applied to
    /// committing programs and no-ops (an aborting program would
    /// reschedule forever).
    pin_exit: Vec<bool>,
    or_join: Vec<bool>,
    /// Edges (from < to) with a condition selector:
    /// 0 = `RC = 1`, 1 = `RC = 0`, 2 = unconditional.
    edges: Vec<(usize, usize, u8)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..9).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            prop::collection::vec(0u8..3, n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec((0usize..n, 0usize..n, 0u8..3), 0..=max_edges),
        )
            .prop_map(move |(kind, pin_exit, or_join, raw_edges)| {
                let mut seen = BTreeSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b, c)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b, c))
                    })
                    .collect();
                Scenario {
                    n,
                    kind,
                    pin_exit,
                    or_join,
                    edges,
                }
            })
    })
}

fn build(s: &Scenario) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("prop");
    for i in 0..s.n {
        let mut a = match s.kind[i] {
            2 => Activity::noop(&format!("A{i}")),
            _ => Activity::program(&format!("A{i}"), &format!("prog{i}")),
        };
        if s.pin_exit[i] && s.kind[i] != 1 {
            a = a.with_exit("RC = 1");
        }
        if s.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b, c) in &s.edges {
        let condition = match c {
            0 => Expr::var_eq_int("RC", 1),
            1 => Expr::var_eq_int("RC", 0),
            _ => Expr::truth(),
        };
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition,
        });
    }
    def
}

fn world(s: &Scenario) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &k) in s.kind.iter().enumerate() {
        let commit = k == 0;
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    (fed, registry)
}

/// An engine running `def` either as compiled (baseline) or compiled
/// then optimized.
fn engine_with(s: &Scenario, optimized: bool) -> Engine {
    let def = build(s);
    assert!(wfms_model::validate(&def).is_empty());
    let (fed, registry) = world(s);
    let engine = Engine::new(fed, registry);
    let tpl = CompiledProcess::compile(def);
    let tpl = if optimized {
        optimize::optimize(&tpl).0
    } else {
        tpl
    };
    engine.register_compiled(Arc::new(tpl));
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Optimized ≡ unoptimized on random constant-rich DAGs: statuses,
    /// outputs and the journal agree event for event.
    #[test]
    fn optimized_matches_unoptimized(s in scenario()) {
        let base = engine_with(&s, false);
        let opt = engine_with(&s, true);
        let a = base.start("prop", Container::empty()).unwrap();
        let b = opt.start("prop", Container::empty()).unwrap();
        prop_assert_eq!(a, b);
        let sa = base.run_to_quiescence(a).unwrap();
        let sb = opt.run_to_quiescence(b).unwrap();
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(base.output(a).unwrap(), opt.output(b).unwrap());
        prop_assert_eq!(base.journal_events(), opt.journal_events());
    }
}

/// A deterministic prunable shape: the optimizer decides plans and
/// kills a branch, and the journal is still byte-identical.
#[test]
fn prunable_chain_identical_journal() {
    let mut a = Activity::program("A", "prog0").with_exit("RC = 1");
    a.description = "pinned".into();
    let mut def = ProcessDefinition::new("prop");
    def.activities = vec![
        a,
        Activity::noop("N"),
        Activity::program("Live", "prog0"),
        Activity::program("Dead", "prog0"),
    ];
    def.control = vec![
        ControlConnector {
            from: "A".into(),
            to: "N".into(),
            condition: Expr::var_eq_int("RC", 1),
        },
        ControlConnector {
            from: "N".into(),
            to: "Live".into(),
            condition: Expr::var_eq_int("RC", 1),
        },
        ControlConnector {
            from: "N".into(),
            to: "Dead".into(),
            condition: Expr::var_eq_int("RC", 0),
        },
    ];
    assert!(wfms_model::validate(&def).is_empty());

    let tpl = CompiledProcess::compile(def.clone());
    let (opt_tpl, stats) = optimize::optimize(&tpl);
    assert_eq!(stats.plans_fixed, 3, "A→N, N→Live, N→Dead all decided");
    assert_eq!(stats.dead_acts, 1, "Dead is statically dead");

    let run = |tpl: CompiledProcess| {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        registry.register_fn("prog0", |_| ProgramOutcome::committed());
        let engine = Engine::new(fed, registry);
        engine.register_compiled(Arc::new(tpl));
        let id = engine.start("prop", Container::empty()).unwrap();
        assert_eq!(
            engine.run_to_quiescence(id).unwrap(),
            InstanceStatus::Finished
        );
        engine.journal_events()
    };
    assert_eq!(run(tpl), run(opt_tpl));
}
