//! Journal failure modes end to end: a real torn journal file
//! (committed fixture), mirror write failures parking instances
//! instead of killing the engine, compaction racing appends, and
//! recovery from a compacted journal after a crash.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use txn_substrate::{DurabilityPolicy, KvProgram, MultiDatabase, ProgramRegistry};
use wfms_engine::{
    recover, recover_from, Engine, EngineConfig, EngineError, Event, InstanceStatus, Journal,
    OrgModel,
};
use wfms_model::{Container, ProcessBuilder, ProcessDefinition};

/// The fixture process: a three-step chain writing markers A, B, C on
/// one database. Shared by the committed torn-tail fixture and its
/// regenerator so the journal can always be replayed.
fn fixture_process() -> ProcessDefinition {
    let mut b = ProcessBuilder::new("fix");
    for (i, step) in ["A", "B", "C"].iter().enumerate() {
        b = b.program(step, &format!("do_{step}"));
        if i > 0 {
            b = b.connect_when(["A", "B", "C"][i - 1], step, "RC = 1");
        }
    }
    b.build().unwrap()
}

fn fixture_world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("fixdb");
    let registry = Arc::new(ProgramRegistry::new());
    for step in ["A", "B", "C"] {
        registry.register(Arc::new(
            KvProgram::write(&format!("do_{step}"), "fixdb", step, 1i64).with_label(step),
        ));
    }
    (fed, registry)
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/torn_tail.journal")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wfms-jrobust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Regression for the reopen path that used to fail with
/// `InvalidData`: a journal whose final record was half-written by a
/// dying engine (the committed fixture is a real engine-written
/// journal, truncated mid-record — see
/// `regenerate_torn_tail_fixture`). Recovery must truncate the torn
/// tail, replay the intact prefix and finish the run.
#[test]
fn committed_torn_tail_fixture_recovers() {
    let dir = temp_dir("fixture");
    let path = dir.join("torn.journal");
    std::fs::copy(fixture_path(), &path).unwrap();
    let raw = std::fs::read(&path).unwrap();
    assert!(
        !raw.ends_with(b"\n") && !raw.is_empty(),
        "fixture must end in a torn (newline-less) record"
    );

    let (fed, registry) = fixture_world();
    // Databases are durable and survive the crash: the fixture journal
    // records activity A as finished, so its transaction had committed
    // on fixdb before the engine died. Replay never re-executes
    // finished activities — reproduce that committed state by invoking
    // the same program the pre-crash run did.
    let mut ctx = txn_substrate::ProgramContext::new(fed.clone());
    assert!(registry.invoke("do_A", &mut ctx).is_committed());
    let engine = recover(
        &path,
        vec![fixture_process()],
        OrgModel::new(),
        fed.clone(),
        registry,
    )
    .unwrap();
    engine.run_all().unwrap();
    let (id, _, status) = engine.instances()[0];
    assert_eq!(status, InstanceStatus::Finished);
    for step in ["A", "B", "C"] {
        assert_eq!(
            fed.db("fixdb").unwrap().peek(step),
            Some(1i64.into()),
            "{step}"
        );
    }
    drop(engine);

    // The reopen repaired the file in place: reading it again is clean
    // and ends exactly at the recovered run's last event.
    let (journal, report) = Journal::with_file_report(&path, DurabilityPolicy::default()).unwrap();
    assert!(report.torn_tail.is_none(), "file was repaired on reopen");
    assert!(journal
        .events()
        .iter()
        .any(|e| matches!(e, Event::InstanceFinished { instance, .. } if *instance == id)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rebuilds `tests/fixtures/torn_tail.journal`: run the fixture chain
/// against a file journal, then cut the file after 8 complete events
/// plus the first half of event 9 — exactly what a crash mid-append
/// leaves behind. Run with
/// `cargo test -p wfms-engine --test journal_robustness -- --ignored`.
#[test]
#[ignore = "writes the committed fixture; run by hand when the event format changes"]
fn regenerate_torn_tail_fixture() {
    let dir = temp_dir("regen");
    let path = dir.join("full.journal");
    let (fed, registry) = fixture_world();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            journal_path: Some(path.clone()),
            ..EngineConfig::default()
        },
    );
    engine.register(fixture_process()).unwrap();
    let id = engine.start("fix", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    engine.crash();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 9, "fixture run too short: {}", lines.len());
    let mut torn = String::new();
    for line in &lines[..8] {
        torn.push_str(line);
        torn.push('\n');
    }
    torn.push_str(&lines[8][..lines[8].len() / 2]);
    std::fs::write(fixture_path(), torn).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal whose file mirror cannot be written (here: the handle is
/// read-only, as after an fd mixup or a remount) must not panic the
/// engine. The first error is remembered, navigation parks with
/// [`EngineError::Journal`], and the instance's in-memory state stays
/// queryable.
#[test]
fn mirror_write_failure_parks_instances_not_the_engine() {
    let dir = temp_dir("park");
    let path = dir.join("readonly.journal");
    std::fs::write(&path, "").unwrap();
    let file = std::fs::OpenOptions::new().read(true).open(&path).unwrap();
    let journal = Journal::with_injected_file(file, path.clone(), DurabilityPolicy::default());

    let (fed, registry) = fixture_world();
    let engine = recover_from(
        journal,
        Vec::new(),
        vec![fixture_process()],
        OrgModel::new(),
        fed,
        registry,
    )
    .unwrap();
    let id = engine.start("fix", Container::empty()).unwrap();
    let err = engine.run_to_quiescence(id).unwrap_err();
    assert!(matches!(err, EngineError::Journal(_)), "{err}");

    // Parked, not dead: state and journal are still readable, and the
    // error is sticky rather than replaced by later failures.
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Running);
    assert!(!engine.journal_events().is_empty());
    let first = engine.run_to_quiescence(id).unwrap_err();
    assert_eq!(format!("{first}"), format!("{err}"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Appends racing `compact()` on a mirrored journal: the lock order
/// (events before mirror, held across the file write) must keep the
/// file a consistent, parseable prefix-free copy of memory at all
/// times. The appender replays a real run's events — including its
/// `EngineCheckpoint`, so compaction genuinely drops lines — while the
/// compactor runs concurrently.
#[test]
fn concurrent_append_and_compact_keep_file_consistent() {
    // One real run, checkpointed halfway so its event stream contains
    // an EngineCheckpoint for compact() to find.
    let (fed, registry) = fixture_world();
    let engine = Engine::new(fed, registry);
    engine.register(fixture_process()).unwrap();
    let id = engine.start("fix", Container::empty()).unwrap();
    for _ in 0..6 {
        engine.step(id).unwrap();
    }
    engine.checkpoint();
    engine.run_to_quiescence(id).unwrap();
    let events = engine.journal_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::EngineCheckpoint { .. })));

    let dir = temp_dir("race");
    let path = dir.join("race.journal");
    let journal = Arc::new(Journal::with_file(&path).unwrap());
    std::thread::scope(|s| {
        let appender = Arc::clone(&journal);
        let evs = events.clone();
        s.spawn(move || {
            for _ in 0..20 {
                for ev in &evs {
                    appender.append(ev.clone());
                }
            }
        });
        let compactor = Arc::clone(&journal);
        s.spawn(move || {
            for _ in 0..200 {
                compactor.compact();
                std::thread::yield_now();
            }
        });
    });
    journal.flush();
    assert!(journal.mirror_error().is_none());

    // The file parses cleanly (no torn tail, no interleaved garbage)
    // and holds exactly the in-memory events.
    let in_memory = journal.events();
    drop(journal);
    let (reopened, report) = Journal::with_file_report(&path, DurabilityPolicy::default()).unwrap();
    assert!(report.torn_tail.is_none());
    assert_eq!(reopened.events(), in_memory);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A work item claimed just before the crash (journal ends with
/// `WorkItemClaimed`, the activity never started) must not stay
/// claimed by the dead worker's session after recovery. The claim is a
/// lease: recovery replays it, then releases it back onto every
/// eligible worklist, so a colleague can pick the work up. This used
/// to leave the item parked on the dead worker forever.
#[test]
fn claimed_item_is_reoffered_after_crash_recovery() {
    let dir = temp_dir("stale-claim");
    let path = dir.join("claimed.journal");
    let def = ProcessBuilder::new("m")
        .activity(wfms_model::Activity::program("M", "do_A").for_role("clerk"))
        .build()
        .unwrap();
    let org = OrgModel::new()
        .person("ann", &["clerk"])
        .person("bob", &["clerk"]);
    let (fed, registry) = fixture_world();
    let engine = Engine::with_config(
        fed.clone(),
        Arc::clone(&registry),
        EngineConfig {
            org: org.clone(),
            journal_path: Some(path.clone()),
            ..EngineConfig::default()
        },
    );
    engine.register(def.clone()).unwrap();
    let id = engine.start("m", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let item = engine.worklist("ann")[0].id;
    engine.claim(item, "ann").unwrap();
    assert!(engine.worklist("bob").is_empty(), "claim hides the item");
    engine.crash();

    let recovered = recover(&path, vec![def], org, fed, registry).unwrap();
    // Ann's session died with the engine; the lease is gone and both
    // clerks see the offer again.
    assert_eq!(recovered.worklist("ann").len(), 1, "re-offered to ann");
    assert_eq!(recovered.worklist("bob").len(), 1, "re-offered to bob");
    recovered.execute_item(item, "bob").unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Finished);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash *after* a checkpoint compaction: the journal file starts at
/// the `EngineCheckpoint`, not at `InstanceStarted`, and recovery must
/// rebuild from the snapshot then resume the tail of the run.
#[test]
fn recovery_after_compaction_and_crash() {
    let dir = temp_dir("compact-crash");
    let path = dir.join("compacted.journal");
    let (fed, registry) = fixture_world();
    let engine = Engine::with_config(
        fed.clone(),
        Arc::clone(&registry),
        EngineConfig {
            journal_path: Some(path.clone()),
            ..EngineConfig::default()
        },
    );
    engine.register(fixture_process()).unwrap();
    let id = engine.start("fix", Container::empty()).unwrap();
    for _ in 0..6 {
        engine.step(id).unwrap();
    }
    let dropped = engine.checkpoint();
    assert!(dropped > 0, "checkpoint must compact the journal");
    // A little more progress after the checkpoint, then the crash.
    engine.step(id).unwrap();
    engine.step(id).unwrap();
    engine.crash();

    let engine2 = recover(
        &path,
        vec![fixture_process()],
        OrgModel::new(),
        fed.clone(),
        registry,
    )
    .unwrap();
    assert!(matches!(
        engine2.journal_events().first(),
        Some(Event::EngineCheckpoint { .. })
    ));
    assert_eq!(
        engine2.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    for step in ["A", "B", "C"] {
        assert_eq!(
            fed.db("fixdb").unwrap().peek(step),
            Some(1i64.into()),
            "{step}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
