//! Steady-state allocation discipline of the hot navigation path.
//!
//! The arena-backed instance state (`StateSlab`), copy-on-write
//! containers, interned journal paths and prototype-cloned outputs
//! exist so that a navigation step in steady state — ready pop,
//! program call, journal appends, connector evaluation, successor
//! scheduling — performs (amortized) **zero** heap allocations beyond
//! the event values the journal must retain. This test pins that with
//! a counting global allocator on the chain workload: after a warm-up
//! instance, the per-step allocation count must stay under a small
//! constant bound (growth of the journal `Vec`, the ready heap and
//! the substrate's transaction scratch all amortize).
//!
//! One `#[test]` only: the counter is process-global and the harness
//! would run sibling tests on concurrent threads, polluting the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{Engine, InstanceStatus};
use wfms_model::{Activity, Container, ControlConnector, Expr, ProcessDefinition};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn chain(n: usize) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("chain");
    for i in 0..n {
        def.activities
            .push(Activity::program(&format!("A{i}"), "ok"));
    }
    for i in 1..n {
        def.control.push(ControlConnector {
            from: format!("A{}", i - 1),
            to: format!("A{i}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    def
}

#[test]
fn navigation_steps_are_amortized_allocation_free() {
    // First prove the counter counts (a silently inert allocator
    // would make the bound below vacuous). `AtomicUsize` keeps the
    // probe allocations from being optimized out. In-test rather than
    // a sibling `#[test]` so no concurrent test thread can inflate
    // the measurement window.
    let probe_before = ALLOCS.load(Ordering::Relaxed);
    let v: Vec<AtomicUsize> = (0..64).map(AtomicUsize::new).collect();
    assert_eq!(v.len(), 64);
    drop(v);
    assert!(
        ALLOCS.load(Ordering::Relaxed) > probe_before,
        "global allocator hook must observe allocations"
    );

    const CHAIN: usize = 250;
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    let engine = Engine::new(fed, registry);
    engine.register(chain(CHAIN)).unwrap();

    // Warm-up: first instance pays one-time costs (template caches,
    // journal and heap capacity growth, substrate setup).
    let warm = engine.start("chain", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(warm).unwrap(),
        InstanceStatus::Finished
    );

    // Steady state: a fresh instance over the warmed engine. Instance
    // creation itself allocates (the slab columns); count only the
    // navigation steps.
    let id = engine.start("chain", Container::empty()).unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut steps = 0u64;
    while engine.step(id).unwrap() {
        steps += 1;
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    assert_eq!(steps, CHAIN as u64, "one step per chain activity");

    // Each step appends journal events whose containers and paths are
    // shared (Arc clones), so the only per-step heap traffic left is
    // amortized growth of long-lived vectors plus the substrate's
    // per-transaction scratch (measured: 1 allocation across the
    // whole 250-step run). The bound leaves headroom for allocator
    // and library drift, but a single accidental per-step
    // String/format!/BTreeMap clone in the hot path costs ≥ 250 and
    // trips it immediately.
    assert!(
        during < 64,
        "expected amortized-zero allocations per navigation step, \
         measured {during} over {steps} steps ({:.2}/step)",
        during as f64 / steps as f64
    );
}
