//! Engine checkpointing: snapshot + journal compaction bound recovery
//! replay without changing its outcome.

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{recover_from, Engine, EngineConfig, Event, InstanceStatus, Journal, OrgModel};
use wfms_model::{Activity, Container, ProcessBuilder};

fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    (fed, registry)
}

fn manual_then_auto() -> wfms_model::ProcessDefinition {
    ProcessBuilder::new("p")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .program("Tail", "ok")
        .connect_when("M", "Tail", "RC = 1")
        .build()
        .unwrap()
}

#[test]
fn checkpoint_compacts_and_recovery_resumes_from_it() {
    let (fed, registry) = world();
    let org = OrgModel::new().person("ann", &["clerk"]);
    let def = manual_then_auto();
    let engine = Engine::with_config(
        Arc::clone(&fed),
        Arc::clone(&registry),
        EngineConfig {
            org: org.clone(),
            ..EngineConfig::default()
        },
    );
    engine.register(def.clone()).unwrap();

    // Run several instances to completion, leave one pending on its
    // manual step, then checkpoint.
    for _ in 0..5 {
        let id = engine.start("p", Container::empty()).unwrap();
        engine.run_to_quiescence(id).unwrap();
    }
    let pending = engine.worklist("ann");
    assert_eq!(pending.len(), 5);
    let events_before = engine.journal_events().len();
    let dropped = engine.checkpoint();
    assert!(dropped > 0, "checkpoint compacts the journal");
    let events_after_ckpt = engine.journal_events();
    assert!(events_after_ckpt.len() < events_before);
    assert!(matches!(
        events_after_ckpt[0],
        Event::EngineCheckpoint { .. }
    ));

    // Work a little past the checkpoint, then crash.
    engine.execute_item(pending[0].id, "ann").unwrap();
    let events = engine.journal_events();
    engine.crash();

    // Recovery from checkpoint + tail.
    let recovered = recover_from(
        Journal::new(),
        events,
        vec![def],
        org,
        Arc::clone(&fed),
        registry,
    )
    .unwrap();
    // The executed instance is finished; the other four still wait.
    let statuses: Vec<_> = recovered
        .instances()
        .into_iter()
        .map(|(_, _, s)| s)
        .collect();
    assert_eq!(
        statuses
            .iter()
            .filter(|s| **s == InstanceStatus::Finished)
            .count(),
        1
    );
    let remaining = recovered.worklist("ann");
    assert_eq!(remaining.len(), 4, "work items restored from the snapshot");
    for item in remaining {
        recovered.execute_item(item.id, "ann").unwrap();
    }
    assert!(recovered
        .instances()
        .iter()
        .all(|(_, _, s)| *s == InstanceStatus::Finished));
}

#[test]
fn checkpoint_claimed_items_are_reoffered_on_recovery() {
    let (fed, registry) = world();
    let org = OrgModel::new()
        .person("ann", &["clerk"])
        .person("bob", &["clerk"]);
    let def = manual_then_auto();
    let engine = Engine::with_config(
        Arc::clone(&fed),
        Arc::clone(&registry),
        EngineConfig {
            org: org.clone(),
            ..EngineConfig::default()
        },
    );
    engine.register(def.clone()).unwrap();
    let id = engine.start("p", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let item = engine.worklist("ann")[0].id;
    engine.claim(item, "ann").unwrap();
    assert!(engine.worklist("bob").is_empty(), "claimed items vanish");
    engine.checkpoint();
    let events = engine.journal_events();
    engine.crash();

    let recovered = recover_from(Journal::new(), events, vec![def], org, fed, registry).unwrap();
    // The item survived the checkpoint, but the claim did not: a claim
    // is a lease held by the crashed session, so recovery releases it
    // back onto every eligible worklist instead of parking it on a
    // dead worker. Bob can now take over the work.
    assert_eq!(recovered.worklist("bob").len(), 1, "lease released");
    assert_eq!(recovered.worklist("ann").len(), 1);
    recovered.execute_item(item, "bob").unwrap();
    assert_eq!(recovered.status(id).unwrap(), InstanceStatus::Finished);
}

#[test]
fn repeated_checkpoints_keep_only_the_last() {
    let (fed, registry) = world();
    let def = ProcessBuilder::new("p").program("A", "ok").build().unwrap();
    let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
    engine.register(def.clone()).unwrap();
    for _ in 0..3 {
        let id = engine.start("p", Container::empty()).unwrap();
        engine.run_to_quiescence(id).unwrap();
        engine.checkpoint();
    }
    let events = engine.journal_events();
    let checkpoints = events
        .iter()
        .filter(|e| matches!(e, Event::EngineCheckpoint { .. }))
        .count();
    assert_eq!(
        checkpoints, 1,
        "compaction keeps only the newest checkpoint"
    );
    assert!(matches!(events[0], Event::EngineCheckpoint { .. }));
    engine.crash();

    let recovered = recover_from(
        Journal::new(),
        events,
        vec![def],
        OrgModel::new(),
        fed,
        registry,
    )
    .unwrap();
    assert_eq!(recovered.instances().len(), 3);
    // Fresh instances keep allocating past the snapshot's counter.
    let id4 = recovered.start("p", Container::empty()).unwrap();
    assert_eq!(id4, wfms_engine::InstanceId(4));
}

#[test]
fn checkpoint_of_idle_engine_is_tiny_and_recoverable() {
    let (fed, registry) = world();
    let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
    engine.checkpoint();
    let events = engine.journal_events();
    assert_eq!(events.len(), 1);
    engine.crash();
    let recovered = recover_from(
        Journal::new(),
        events,
        vec![],
        OrgModel::new(),
        fed,
        registry,
    )
    .unwrap();
    assert!(recovered.instances().is_empty());
}
