//! Property-based crash-point sweeps: for randomly generated process
//! DAGs, the engine must survive a crash after **every** journal event
//! — recover, resume, and land on the same statuses, outputs, journal
//! and database state as the uncrashed run (§3.3's universally
//! quantified "forward recovery is always guaranteed").
//!
//! The scenario strategy mirrors `parallel_differential.rs`: a DAG
//! over `n` activities with random OR/AND joins and scripted
//! commit/abort outcomes, so dead path elimination, joins and abort
//! routing are all exercised under crash/recovery. Programs are pure
//! functions of their script — re-execution after a crash cannot
//! diverge, the property §3.3 asks workflow designers to provide.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::crashtest::{sweep, SweepConfig};
use wfms_model::{
    Activity, Container, ControlConnector, Expr, ProcessBuilder, ProcessDefinition, StartCondition,
};

/// A generated scenario: a DAG over `n` activities with edges
/// (i < j), per-activity OR/AND joins and per-activity commit/abort
/// outcomes.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize)>,
    or_join: Vec<bool>,
    commits: Vec<bool>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..7).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            prop::collection::vec((0usize..n, 0usize..n), 0..=max_edges),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(raw_edges, or_join, commits)| {
                let mut seen = BTreeSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b))
                    })
                    .collect();
                Scenario {
                    n,
                    edges,
                    or_join,
                    commits,
                }
            })
    })
}

fn build(s: &Scenario) -> ProcessDefinition {
    let mut def = ProcessDefinition::new("prop");
    for i in 0..s.n {
        let mut a = Activity::program(&format!("A{i}"), &format!("prog{i}"));
        if s.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b) in &s.edges {
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    def
}

/// Programs are pure functions of their scripted outcome, so a
/// post-recovery re-execution returns exactly what the pre-crash
/// attempt did.
fn world(s: &Scenario) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &commit) in s.commits.iter().enumerate() {
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    (fed, registry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single instance of a random DAG: every crash point recovers,
    /// with a torn half-written event after each prefix.
    #[test]
    fn random_dag_survives_every_crash_point(s in scenario()) {
        let def = build(&s);
        prop_assert!(wfms_model::validate(&def).is_empty());
        let report = sweep(
            "prop",
            &[def],
            &[("prop".to_owned(), Container::empty())],
            &|| world(&s),
            &SweepConfig::default(),
        )
        .map_err(TestCaseError::fail)?;
        prop_assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
        prop_assert!(report.total_events > 0);
    }

    /// Several interleaved instances of the same random DAG: losing a
    /// late `InstanceStarted` must leave the other instances whole.
    #[test]
    fn random_dag_multi_instance_survives_every_crash_point(
        s in scenario(),
        m in 2usize..4,
    ) {
        let def = build(&s);
        prop_assert!(wfms_model::validate(&def).is_empty());
        let starts: Vec<_> = (0..m)
            .map(|_| ("prop".to_owned(), Container::empty()))
            .collect();
        let report = sweep(
            "prop-multi",
            &[def],
            &starts,
            &|| world(&s),
            &SweepConfig { torn_tail: false },
        )
        .map_err(TestCaseError::fail)?;
        prop_assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
    }
}

/// Deterministic smoke: a chain with an abort mid-way (dead path
/// elimination downstream) swept at every crash point, with and
/// without torn tails. Also pins the report shape the CI artifact
/// relies on.
#[test]
fn chain_with_abort_sweep_report_shape() {
    let mut b = ProcessBuilder::new("chain");
    for i in 0..5 {
        b = b.program(&format!("A{i}"), &format!("p{i}"));
        if i > 0 {
            b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
        }
    }
    let def = b.build().unwrap();
    let make_world = || {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        for i in 0..5 {
            registry.register_fn(&format!("p{i}"), move |_| {
                if i == 3 {
                    ProgramOutcome::aborted("scripted")
                } else {
                    ProgramOutcome::committed()
                }
            });
        }
        (fed, registry)
    };
    for torn_tail in [true, false] {
        let report = sweep(
            "chain",
            std::slice::from_ref(&def),
            &[("chain".to_owned(), Container::empty())],
            &make_world,
            &SweepConfig { torn_tail },
        )
        .unwrap();
        assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
        assert_eq!(report.passed, report.total_events + 1, "k in 0..=n");
        assert_eq!(report.failed, 0);
        let json = report.to_json();
        assert!(json.contains("\"label\":\"chain\""), "{json}");
        assert!(
            report.summary().starts_with("chain: "),
            "{}",
            report.summary()
        );
    }
}
