//! Byte-identity regression tests for the batched journal serializer.
//!
//! The parallel scheduler merges worker shards through
//! [`Journal::append_batch`], which serializes the whole batch into
//! one buffer and writes it with a single group commit. The journal
//! file format contract is that those bytes are **exactly** the lines
//! the per-event [`Journal::append`] path would have produced, in
//! order — recovery, the crash sweep and external tail readers all
//! depend on it. These tests pin that contract:
//!
//! * a golden-trace check over a nested process exercising every
//!   event family the navigator emits (blocks, reschedules, dead
//!   paths, work items, checkpoints);
//! * a property test over random acyclic processes with random
//!   commit/abort outcomes.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use txn_substrate::{DurabilityPolicy, MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{Engine, EngineConfig, Event, InstanceStatus, Journal, OrgModel};
use wfms_model::{Activity, Container, ControlConnector, Expr, ProcessDefinition, StartCondition};

/// Fresh scratch directory per test (integration tests may run
/// concurrently, so the pid alone is not enough).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wfms-batch-bytes-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Mirror `events` to a file one `append` at a time and return the
/// file's bytes.
fn per_event_bytes(events: &[Event], dir: &Path) -> Vec<u8> {
    let path = dir.join("per_event.journal");
    let journal = Journal::with_file_policy(&path, DurabilityPolicy::PerEvent).unwrap();
    for e in events {
        journal.append(e.clone());
    }
    journal.flush();
    std::fs::read(&path).unwrap()
}

/// Mirror `events` to a file through one `append_batch` group commit
/// and return the file's bytes.
fn batched_bytes(events: &[Event], dir: &Path) -> Vec<u8> {
    let path = dir.join("batched.journal");
    let journal = Journal::with_file_policy(&path, DurabilityPolicy::PerEvent).unwrap();
    journal.append_batch(events.to_vec());
    journal.flush();
    std::fs::read(&path).unwrap()
}

fn assert_identical(events: Vec<Event>, dir: &Path) {
    assert!(!events.is_empty(), "workload produced no events");
    let a = per_event_bytes(&events, dir);
    let b = batched_bytes(&events, dir);
    // Compare line by line first so a mismatch names the event.
    let a_lines: Vec<&[u8]> = a.split(|&c| c == b'\n').collect();
    let b_lines: Vec<&[u8]> = b.split(|&c| c == b'\n').collect();
    for (i, (la, lb)) in a_lines.iter().zip(&b_lines).enumerate() {
        assert_eq!(
            String::from_utf8_lossy(la),
            String::from_utf8_lossy(lb),
            "line {i} diverges (event {:?})",
            events.get(i)
        );
    }
    assert_eq!(a, b, "batched mirror bytes must equal per-event bytes");
}

/// A nested workload touching every event family: a block with an
/// exit condition that reschedules once, a manual activity completed
/// from a worklist, a dead branch, and an engine checkpoint mid-run.
fn golden_trace_events() -> Vec<Event> {
    let mut inner = ProcessDefinition::new("inner");
    inner.activities.push(Activity::program("I1", "ok"));
    inner.activities.push(Activity::program("I2", "ok"));
    inner.control.push(ControlConnector {
        from: "I1".into(),
        to: "I2".into(),
        condition: Expr::var_eq_int("RC", 1),
    });

    let mut def = ProcessDefinition::new("golden");
    // `flaky` aborts its first attempt, so the exit condition RC = 1
    // reschedules Start once (the §3.2 retry loop).
    def.activities
        .push(Activity::program("Start", "flaky").with_exit("RC = 1"));
    def.activities.push(Activity::block("Work", inner));
    def.activities
        .push(Activity::program("Review", "ok").for_role("auditor"));
    def.activities.push(Activity::program("Dead", "ok"));
    let mut join = Activity::program("End", "ok");
    join.start = StartCondition::Or;
    def.activities.push(join);
    for (from, to, cond) in [
        ("Start", "Work", Expr::var_eq_int("RC", 1)),
        ("Start", "Dead", Expr::var_eq_int("RC", 0)),
        ("Work", "Review", Expr::var_eq_int("RC", 1)),
        ("Review", "End", Expr::var_eq_int("RC", 1)),
        ("Dead", "End", Expr::var_eq_int("RC", 1)),
    ] {
        def.control.push(ControlConnector {
            from: from.into(),
            to: to.into(),
            condition: cond,
        });
    }
    assert!(wfms_model::validate(&def).is_empty());

    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    // First attempt aborts so the block's exit condition reschedules
    // it; the retry commits.
    let attempts = std::sync::atomic::AtomicU32::new(0);
    registry.register_fn("flaky", move |_| {
        if attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
            ProgramOutcome::aborted("scripted first failure")
        } else {
            ProgramOutcome::committed()
        }
    });

    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org: OrgModel::new().person("ann", &["auditor"]),
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let id = engine.start("golden", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    // Checkpointing compacts the journal (drops everything before the
    // snapshot), so keep the head of the trace and splice the
    // checkpoint + post-checkpoint tail onto it — byte identity is a
    // property of the event list, not of engine history.
    let mut events = engine.journal_events();
    engine.checkpoint();
    // Drain the manual Review step through the worklist path.
    let items = engine.worklist("ann");
    assert!(!items.is_empty(), "Review must be on ann's worklist");
    for item in items {
        engine.claim(item.id, "ann").unwrap();
        engine.execute_item(item.id, "ann").unwrap();
    }
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    events.extend(engine.journal_events());
    events
}

#[test]
fn golden_trace_batched_bytes_identical() {
    let dir = scratch("golden");
    let events = golden_trace_events();
    // The workload must actually exercise the interesting families.
    let kinds: BTreeSet<&str> = events.iter().map(kind).collect();
    for required in [
        "InstanceStarted",
        "ActivityReady",
        "ActivityStarted",
        "ActivityFinished",
        "ActivityRescheduled",
        "ActivityTerminated",
        "ConnectorEvaluated",
        "WorkItemOffered",
        "WorkItemClaimed",
        "EngineCheckpoint",
        "InstanceFinished",
    ] {
        assert!(kinds.contains(required), "trace must contain {required}");
    }
    assert_identical(events, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

fn kind(e: &Event) -> &'static str {
    match e {
        Event::InstanceStarted { .. } => "InstanceStarted",
        Event::ActivityReady { .. } => "ActivityReady",
        Event::ActivityStarted { .. } => "ActivityStarted",
        Event::ActivityFinished { .. } => "ActivityFinished",
        Event::ActivityRescheduled { .. } => "ActivityRescheduled",
        Event::ActivityTerminated { .. } => "ActivityTerminated",
        Event::ConnectorEvaluated { .. } => "ConnectorEvaluated",
        Event::WorkItemOffered { .. } => "WorkItemOffered",
        Event::WorkItemClaimed { .. } => "WorkItemClaimed",
        Event::EngineCheckpoint { .. } => "EngineCheckpoint",
        Event::InstanceFinished { .. } => "InstanceFinished",
        _ => "other",
    }
}

/// Random acyclic process: edges only from lower to higher index,
/// random OR/AND joins, random commit/abort outcomes.
#[derive(Debug, Clone)]
struct Dag {
    n: usize,
    edges: Vec<(usize, usize)>,
    or_join: Vec<bool>,
    commits: Vec<bool>,
}

fn dag() -> impl Strategy<Value = Dag> {
    (2usize..8).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            prop::collection::vec((0usize..n, 0usize..n), 0..=max_edges),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(raw, or_join, commits)| {
                let mut seen = BTreeSet::new();
                let edges = raw
                    .into_iter()
                    .filter_map(|(a, b)| {
                        let (a, b) = (a.min(b), a.max(b));
                        (a != b && seen.insert((a, b))).then_some((a, b))
                    })
                    .collect();
                Dag {
                    n,
                    edges,
                    or_join,
                    commits,
                }
            })
    })
}

fn run_dag(d: &Dag) -> Vec<Event> {
    let mut def = ProcessDefinition::new("dag");
    for i in 0..d.n {
        let mut a = Activity::program(&format!("A{i}"), &format!("prog{i}"));
        if d.or_join[i] {
            a.start = StartCondition::Or;
        }
        def.activities.push(a);
    }
    for &(a, b) in &d.edges {
        def.control.push(ControlConnector {
            from: format!("A{a}"),
            to: format!("A{b}"),
            condition: Expr::var_eq_int("RC", 1),
        });
    }
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, &commit) in d.commits.iter().enumerate() {
        registry.register_fn(&format!("prog{i}"), move |_| {
            if commit {
                ProgramOutcome::committed()
            } else {
                ProgramOutcome::aborted("scripted")
            }
        });
    }
    let engine = Engine::new(fed, registry);
    engine.register(def).unwrap();
    let id = engine.start("dag", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    engine.journal_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched serialization of an arbitrary journal produces the
    /// same bytes as per-event serialization.
    #[test]
    fn random_dag_batched_bytes_identical(d in dag()) {
        let dir = scratch("dag");
        assert_identical(run_dag(&d), &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
