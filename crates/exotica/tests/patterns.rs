//! The control-flow workflow-pattern gallery (`examples/patterns/`):
//! every pattern file must lint clean and execute to completion via
//! the same import → analyze → compile → optimize → run route
//! `fmtm run` takes for FDL sources.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wfms_engine::{Engine, InstanceStatus};
use wfms_model::Container;

fn patterns_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/patterns")
}

fn pattern_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(patterns_dir())
        .expect("examples/patterns exists")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
}

#[test]
fn gallery_is_complete() {
    let names: Vec<String> = pattern_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
        .collect();
    for expected in [
        "sequence.fdl",
        "parallel_split_sync.fdl",
        "exclusive_choice.fdl",
        "multi_choice.fdl",
        "simple_merge.fdl",
        "discriminator.fdl",
        "n_of_m.fdl",
        "cancel_activity.fdl",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn every_pattern_lints_clean() {
    for path in pattern_files() {
        let src = fs::read_to_string(&path).unwrap();
        let diags = exotica::lint_source(&src, &[]).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(diags.is_empty(), "{path:?} should lint clean: {diags:?}");
    }
}

#[test]
fn every_pattern_runs_to_completion() {
    for path in pattern_files() {
        let src = fs::read_to_string(&path).unwrap();
        let (process, diags) =
            exotica::import_and_analyze(&src).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(diags.is_empty(), "{path:?}: {diags:?}");
        let steps = exotica::steps_of_process(&process);
        assert!(
            !steps.is_empty(),
            "{path:?} provisions at least one program"
        );
        let name = process.name.clone();
        let template = wfms_engine::CompiledProcess::compile(process);
        let (template, _) = wfms_engine::optimize::optimize(&template);
        let (fed, registry) = exotica::provision(&steps, 0, &[]);
        let engine = Engine::new(fed, registry);
        engine.register_compiled(Arc::new(template));
        let id = engine.start(&name, Container::empty()).unwrap();
        engine.run_all().unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert_eq!(
            engine.status(id).unwrap(),
            InstanceStatus::Finished,
            "{path:?} must run to completion"
        );
    }
}

#[test]
fn discriminator_fires_its_join_once() {
    // The OR-join races two branches; the journal must show exactly
    // one execution of Proceed.
    let src = fs::read_to_string(patterns_dir().join("discriminator.fdl")).unwrap();
    let (process, _) = exotica::import_and_analyze(&src).unwrap();
    let steps = exotica::steps_of_process(&process);
    let template = wfms_engine::CompiledProcess::compile(process);
    let (fed, registry) = exotica::provision(&steps, 0, &[]);
    let engine = Engine::new(fed, registry);
    engine.register_compiled(Arc::new(template));
    let id = engine.start("discriminator", Container::empty()).unwrap();
    engine.run_all().unwrap();
    let starts = wfms_engine::audit::trace(&engine.journal_events(), id)
        .into_iter()
        .filter(|t| t.starts_with("start:Proceed"))
        .count();
    assert_eq!(starts, 1, "OR-join must start exactly once");
}
