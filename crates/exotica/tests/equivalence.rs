//! Equivalence of native transaction-model execution and the
//! Exotica-translated workflow processes, under systematic failure
//! injection — the operational heart of the paper's claim that
//! "advanced transaction models can be implemented using current
//! workflow management systems".
//!
//! Every scenario runs twice in isolated worlds with identical
//! deterministic failure scripts; the final state of every local
//! database and the commit/abort outcome must match exactly.

use atm::fixtures::{self, figure3_spec, FIGURE3_STEPS};
use exotica::verify::{compare_flex, compare_saga, Installer};
use proptest::prelude::*;
use txn_substrate::{on_attempts, FailurePlan};

// ---------------------------------------------------------------------
// Sagas
// ---------------------------------------------------------------------

fn saga_installer(
    n: usize,
) -> impl Fn(&std::sync::Arc<txn_substrate::MultiDatabase>, &txn_substrate::ProgramRegistry) {
    move |fed, reg| fixtures::register_saga_programs(fed, reg, n)
}

#[test]
fn saga_equivalence_at_every_abort_position() {
    for n in [1usize, 2, 3, 5, 8] {
        let spec = fixtures::linear_saga("s", n);
        let install = saga_installer(n);
        let installer: Installer<'_> = &install;
        // j = n means no failure (full commit).
        for j in 1..=n + 1 {
            let plans: Vec<(String, FailurePlan)> = if j <= n {
                vec![(format!("S{j}"), FailurePlan::Always)]
            } else {
                vec![]
            };
            let report = compare_saga(&spec, installer, &plans, 42).unwrap();
            assert!(
                report.equivalent(),
                "n={n} abort at S{j}:\n{}",
                report.diff()
            );
            assert_eq!(report.native_committed, j > n);
        }
    }
}

#[test]
fn saga_equivalence_with_flaky_compensations() {
    // Abort at S4; compensations of S2 and S3 need retries.
    let n = 5;
    let spec = fixtures::linear_saga("s", n);
    let install = saga_installer(n);
    let installer: Installer<'_> = &install;
    let plans = vec![
        ("S4".to_string(), FailurePlan::Always),
        ("undo_S3".to_string(), FailurePlan::FirstN(2)),
        ("undo_S2".to_string(), on_attempts([0, 2])),
    ];
    let report = compare_saga(&spec, installer, &plans, 7).unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(!report.native_committed);
}

#[test]
fn saga_equivalence_with_transient_forward_failures() {
    // A forward step failing transiently still aborts the saga (saga
    // forward steps are not retried by either implementation).
    let n = 3;
    let spec = fixtures::linear_saga("s", n);
    let install = saga_installer(n);
    let installer: Installer<'_> = &install;
    let plans = vec![("S2".to_string(), FailurePlan::FirstN(1))];
    let report = compare_saga(&spec, installer, &plans, 3).unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(!report.native_committed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The García-Molina/Salem guarantee, checked against both
    /// implementations at once: random saga sizes, random abort
    /// positions, random compensation flakiness.
    #[test]
    fn saga_equivalence_randomised(
        n in 1usize..10,
        abort_at in 1usize..12,
        flaky_comp in 0usize..12,
        flaky_tries in 1u32..4,
        seed in 0u64..1000,
    ) {
        let spec = fixtures::linear_saga("s", n);
        let install = saga_installer(n);
        let installer: Installer<'_> = &install;
        let mut plans: Vec<(String, FailurePlan)> = Vec::new();
        if abort_at <= n {
            plans.push((format!("S{abort_at}"), FailurePlan::Always));
        }
        if flaky_comp >= 1 && flaky_comp <= n {
            plans.push((format!("undo_S{flaky_comp}"), FailurePlan::FirstN(flaky_tries)));
        }
        let report = compare_saga(&spec, installer, &plans, seed).unwrap();
        prop_assert!(report.equivalent(), "{}", report.diff());
        prop_assert_eq!(report.native_committed, abort_at > n);
    }
}

// ---------------------------------------------------------------------
// Flexible transactions — the Figure 3 example
// ---------------------------------------------------------------------

#[test]
fn figure3_equivalence_for_every_single_permanent_failure() {
    let spec = figure3_spec();
    let installer: Installer<'_> = &fixtures::register_figure3_programs;
    for fail in FIGURE3_STEPS {
        if spec.class_of(fail).is_retriable() {
            continue; // a permanently failing retriable step livelocks by design
        }
        let plans = vec![(fail.to_string(), FailurePlan::Always)];
        let report = compare_flex(&spec, installer, &plans, 11).unwrap();
        assert!(
            report.equivalent(),
            "permanent failure of {fail}:\n{}",
            report.diff()
        );
    }
}

#[test]
fn figure3_equivalence_for_every_pair_of_failures() {
    // Permanent failure on one non-retriable step plus a transient
    // failure on any other step (including retriables).
    let spec = figure3_spec();
    let installer: Installer<'_> = &fixtures::register_figure3_programs;
    for a in FIGURE3_STEPS {
        if spec.class_of(a).is_retriable() {
            continue;
        }
        for b in FIGURE3_STEPS {
            if a == b {
                continue;
            }
            let plans = vec![
                (a.to_string(), FailurePlan::Always),
                (b.to_string(), FailurePlan::FirstN(2)),
            ];
            let report = compare_flex(&spec, installer, &plans, 23).unwrap();
            assert!(
                report.equivalent(),
                "permanent {a} + transient {b}:\n{}",
                report.diff()
            );
        }
    }
}

#[test]
fn figure3_paper_narrative_outcomes() {
    // The appendix narrative, pinned against the workflow execution:
    // who commits via which path, what gets compensated.
    let spec = figure3_spec();
    let installer: Installer<'_> = &fixtures::register_figure3_programs;

    // T8 aborts: T5, T6 compensated; commits via p2 (T7 runs).
    let report = compare_flex(
        &spec,
        installer,
        &[("T8".to_string(), FailurePlan::Always)],
        5,
    )
    .unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(report.workflow_committed);
    let flat: std::collections::BTreeMap<String, i64> = report
        .workflow_state
        .values()
        .flatten()
        .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
        .collect();
    assert_eq!(flat.get("T5"), Some(&-1), "T5 compensated");
    assert_eq!(flat.get("T6"), Some(&-1), "T6 compensated");
    assert_eq!(flat.get("T7"), Some(&1), "T7 committed");
    assert_eq!(flat.get("T8"), None, "T8 never committed");

    // T4 aborts: falls to p3, T3 commits, nothing compensated.
    let report = compare_flex(
        &spec,
        installer,
        &[("T4".to_string(), FailurePlan::Always)],
        5,
    )
    .unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    let flat: std::collections::BTreeMap<String, i64> = report
        .workflow_state
        .values()
        .flatten()
        .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
        .collect();
    assert_eq!(flat.get("T1"), Some(&1));
    assert_eq!(flat.get("T2"), Some(&1));
    assert_eq!(flat.get("T3"), Some(&1));
    assert_eq!(flat.get("T5"), None);

    // T2 aborts: full abort, T1 compensated.
    let report = compare_flex(
        &spec,
        installer,
        &[("T2".to_string(), FailurePlan::Always)],
        5,
    )
    .unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(!report.workflow_committed);
    let flat: std::collections::BTreeMap<String, i64> = report
        .workflow_state
        .values()
        .flatten()
        .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
        .collect();
    assert_eq!(flat.get("T1"), Some(&-1), "T1 compensated");
}

#[test]
fn figure3_equivalence_with_retriable_flakiness() {
    let spec = figure3_spec();
    let installer: Installer<'_> = &fixtures::register_figure3_programs;
    for (fail, retriable) in [("T8", "T7"), ("T4", "T3")] {
        let plans = vec![
            (fail.to_string(), FailurePlan::Always),
            (retriable.to_string(), FailurePlan::FirstN(3)),
        ];
        let report = compare_flex(&spec, installer, &plans, 9).unwrap();
        assert!(
            report.equivalent(),
            "{fail} + flaky {retriable}:\n{}",
            report.diff()
        );
        assert!(report.workflow_committed);
    }
}

#[test]
fn compensatable_retriable_members_never_fail_their_segment() {
    // A segment containing a compensatable-AND-retriable step: the
    // step's transient failures are absorbed inside the segment (exit
    // condition in the workflow, retry loop natively); the segment
    // only fails at its plain-compensatable members.
    use atm::FlexStep;
    let spec = atm::FlexSpec::new(
        "cr",
        vec![
            FlexStep::compensatable("C1", "prog_C1", "comp_C1"),
            FlexStep::compensatable_retriable("CR", "prog_CR", "comp_CR"),
            FlexStep::pivot("P", "prog_P"),
            FlexStep::retriable("R", "prog_R"),
        ],
        vec![vec!["C1", "CR", "P"], vec!["C1", "CR", "R"]],
    );
    assert!(atm::check_flex(&spec).is_empty());
    let installer_impl = move |fed: &std::sync::Arc<txn_substrate::MultiDatabase>,
                               reg: &txn_substrate::ProgramRegistry| {
        if fed.db("db").is_none() {
            fed.add_database("db");
        }
        for step in ["C1", "CR", "P", "R"] {
            reg.register(std::sync::Arc::new(
                txn_substrate::KvProgram::write(&format!("prog_{step}"), "db", step, 1i64)
                    .with_label(step),
            ));
            reg.register(std::sync::Arc::new(txn_substrate::KvProgram::write(
                &format!("comp_{step}"),
                "db",
                step,
                txn_substrate::Value::Int(-1),
            )));
        }
    };
    let installer: Installer<'_> = &installer_impl;

    // CR flakes twice, P fails permanently: both implementations must
    // absorb CR's flakiness, then fall to path 1 and commit via R.
    let plans = vec![
        ("CR".to_string(), FailurePlan::FirstN(2)),
        ("P".to_string(), FailurePlan::Always),
    ];
    let report = compare_flex(&spec, installer, &plans, 3).unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(report.workflow_committed);

    // C1 fails permanently: full abort before anything else runs.
    let plans = vec![("C1".to_string(), FailurePlan::Always)];
    let report = compare_flex(&spec, installer, &plans, 3).unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    assert!(!report.workflow_committed);
}

// ---------------------------------------------------------------------
// Flexible transactions — a parameterised family beyond Figure 3
// ---------------------------------------------------------------------

/// Builds the family member `family(a, b)`:
///
/// ```text
/// p0 = A1..Aa  X  B1..Bb  Y      (A*, B* compensatable; X, Y pivots)
/// p1 = A1..Aa  X  R1             (R1 retriable)
/// p2 = A1..Aa  R2                (R2 retriable)
/// ```
///
/// Y's failure falls to p1 (compensating B*), X's to p2 (directly),
/// and segment failures route through their own compensations.
fn family_spec(a: usize, b: usize) -> atm::FlexSpec {
    use atm::FlexStep;
    let mut steps = Vec::new();
    let mut p0: Vec<String> = Vec::new();
    for i in 1..=a {
        let name = format!("A{i}");
        steps.push(FlexStep::compensatable(
            &name,
            &format!("prog_{name}"),
            &format!("comp_{name}"),
        ));
        p0.push(name);
    }
    steps.push(FlexStep::pivot("X", "prog_X"));
    p0.push("X".into());
    for i in 1..=b {
        let name = format!("B{i}");
        steps.push(FlexStep::compensatable(
            &name,
            &format!("prog_{name}"),
            &format!("comp_{name}"),
        ));
        p0.push(name);
    }
    steps.push(FlexStep::pivot("Y", "prog_Y"));
    p0.push("Y".into());
    steps.push(FlexStep::retriable("R1", "prog_R1"));
    steps.push(FlexStep::retriable("R2", "prog_R2"));

    let mut p1: Vec<String> = p0[..a + 1].to_vec();
    p1.push("R1".into());
    let mut p2: Vec<String> = p0[..a].to_vec();
    p2.push("R2".into());

    atm::FlexSpec {
        name: format!("family_{a}_{b}"),
        steps,
        paths: vec![p0, p1, p2],
    }
}

/// Installs marker programs for [`family_spec`] on two databases.
fn install_family(
    spec: &atm::FlexSpec,
) -> impl Fn(&std::sync::Arc<txn_substrate::MultiDatabase>, &txn_substrate::ProgramRegistry) {
    let steps = spec.steps.clone();
    move |fed, reg| {
        for site in ["left", "right"] {
            if fed.db(site).is_none() {
                fed.add_database(site);
            }
        }
        for (i, step) in steps.iter().enumerate() {
            let site = ["left", "right"][i % 2];
            reg.register(std::sync::Arc::new(
                txn_substrate::KvProgram::write(&step.program, site, &step.name, 1i64)
                    .with_label(&step.name),
            ));
            if let Some(comp) = &step.compensation {
                reg.register(std::sync::Arc::new(txn_substrate::KvProgram::write(
                    comp,
                    site,
                    &step.name,
                    txn_substrate::Value::Int(-1),
                )));
            }
        }
    }
}

#[test]
fn family_specs_are_well_formed_and_translate() {
    for a in 1..=3 {
        for b in 1..=3 {
            let spec = family_spec(a, b);
            assert!(atm::check_flex(&spec).is_empty(), "family({a},{b})");
            exotica::translate_flex(&spec)
                .unwrap_or_else(|e| panic!("family({a},{b}) failed to translate: {e}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Equivalence across the family under a random single permanent
    /// failure and a random transient one.
    #[test]
    fn family_equivalence_randomised(
        a in 1usize..4,
        b in 1usize..4,
        fail_idx in 0usize..16,
        transient_idx in 0usize..16,
        transient_tries in 1u32..3,
        seed in 0u64..500,
    ) {
        let spec = family_spec(a, b);
        let names: Vec<String> = spec.steps.iter().map(|s| s.name.clone()).collect();
        let mut plans: Vec<(String, FailurePlan)> = Vec::new();
        // Permanent failure only on non-retriable steps.
        let fail = &names[fail_idx % names.len()];
        if !spec.class_of(fail).is_retriable() {
            plans.push((fail.clone(), FailurePlan::Always));
        }
        let transient = &names[transient_idx % names.len()];
        if transient != fail {
            plans.push((transient.clone(), FailurePlan::FirstN(transient_tries)));
        }
        let install = install_family(&spec);
        let installer: Installer<'_> = &install;
        let report = compare_flex(&spec, installer, &plans, seed).unwrap();
        prop_assert!(report.equivalent(), "family({},{}) plans {:?}:\n{}",
            a, b, report.scenario, report.diff());
    }
}
