//! Golden-file tests for the `wfms-analyzer` battery, driven through
//! the same front end as `fmtm lint`.
//!
//! Every file in `tests/fixtures/analyzer/` triggers the code named by
//! its filename prefix (`wa035_statically_dead.fdl` → `WA035`), and
//! every finding carries a source position. The shipped example specs
//! must come out clean.
//!
//! Three codes have no fixture on purpose: `WA015` and `WA053` are not
//! constructible from the textual formats (the FDL parser mirrors
//! block facade containers; spec class inference never disagrees with
//! the declaration) and are covered programmatically in
//! `wfms-analyzer`'s unit tests, while `WA054` is reserved/defensive
//! (unreachable with the current four step classes).

use std::fs;
use std::path::Path;

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyzer")
}

/// The `WA0xx` code a fixture documents, from its filename.
fn expected_code(file_name: &str) -> String {
    file_name
        .split('_')
        .next()
        .expect("fixture names start with a code")
        .to_ascii_uppercase()
}

#[test]
fn every_fixture_triggers_its_code_with_a_position() {
    let mut seen = 0usize;
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir exists") {
        let path = entry.expect("read fixture entry").path();
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        let code = expected_code(&name);
        let src = fs::read_to_string(&path).expect("read fixture");
        let diags = exotica::lint_source(&src, &[])
            .unwrap_or_else(|e| panic!("{name}: fixture must parse, got {e}"));
        assert!(
            diags.iter().any(|d| d.code == code),
            "{name}: expected {code} among {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        for d in &diags {
            assert!(
                d.pos.is_some(),
                "{name}: diagnostic {} lacks a source position: {d:?}",
                d.code
            );
        }
        seen += 1;
    }
    assert!(
        seen >= 30,
        "expected the full fixture battery, found {seen}"
    );
}

#[test]
fn fixture_codes_cover_every_lint_family() {
    let mut codes: Vec<String> = fs::read_dir(fixtures_dir())
        .unwrap()
        .map(|e| expected_code(e.unwrap().path().file_name().unwrap().to_str().unwrap()))
        .collect();
    codes.sort();
    codes.dedup();
    for family in ["WA00", "WA01", "WA02", "WA03", "WA04", "WA05", "WA10"] {
        assert!(
            codes.iter().any(|c| c.starts_with(family)),
            "no fixture for family {family}*: {codes:?}"
        );
    }
    // Every dataflow pass has its positive fixture.
    for code in [
        "WA101", "WA102", "WA103", "WA104", "WA105", "WA106", "WA107", "WA108",
    ] {
        assert!(codes.iter().any(|c| c == code), "no fixture for {code}");
    }
}

#[test]
fn clean_fixtures_stay_clean() {
    // One negative fixture per dataflow pass: a near-miss the pass
    // must NOT flag (tests/fixtures/analyzer_clean/). Guards against
    // the passes growing false positives.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyzer_clean");
    let mut seen = 0usize;
    for entry in fs::read_dir(dir).expect("clean fixtures dir exists") {
        let path = entry.unwrap().path();
        let src = fs::read_to_string(&path).unwrap();
        let diags = exotica::lint_source(&src, &[]).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(diags.is_empty(), "{path:?} should lint clean: {diags:?}");
        seen += 1;
    }
    assert!(
        seen >= 4,
        "one clean fixture per dataflow pass, found {seen}"
    );
}

#[test]
fn every_fixture_code_has_an_explanation() {
    for entry in fs::read_dir(fixtures_dir()).unwrap() {
        let name = entry
            .unwrap()
            .path()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_owned();
        let code = expected_code(&name);
        assert!(
            wfms_analyzer::explain(&code).is_some(),
            "no --explain text for {code}"
        );
    }
}

#[test]
fn shipped_examples_are_clean() {
    let specs = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut seen = 0usize;
    for entry in fs::read_dir(specs).expect("examples/specs exists") {
        let path = entry.unwrap().path();
        let src = fs::read_to_string(&path).unwrap();
        let diags = exotica::lint_source(&src, &[]).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(diags.is_empty(), "{path:?} should lint clean: {diags:?}");
        seen += 1;
    }
    assert!(
        seen >= 2,
        "expected trip.saga and figure3.flex, found {seen}"
    );
}

#[test]
fn error_fixtures_are_rejected_by_the_pipeline_gate() {
    // The stage-5 gate and `fmtm lint` agree: an FDL fixture whose
    // findings include an error-severity code must not import.
    let src = fs::read_to_string(fixtures_dir().join("wa035_statically_dead.fdl")).unwrap();
    let err = exotica::import_and_analyze(&src).unwrap_err();
    assert!(matches!(err, exotica::PipelineError::Analysis(_)), "{err}");

    // Warning-only fixtures pass the gate but keep their findings.
    let src = fs::read_to_string(fixtures_dir().join("wa043_dead_write.fdl")).unwrap();
    let (_, diags) = exotica::import_and_analyze(&src).unwrap();
    assert!(diags.iter().any(|d| d.code == "WA043"), "{diags:?}");
}
