//! Edge cases of the Exotica translations: degenerate sizes, single
//! paths, pivot-free specs, and behaviour of the generated processes
//! at the boundaries.

use atm::{FlexSpec, FlexStep, SagaSpec, StepSpec};
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
use wfms_engine::{Engine, InstanceStatus};
use wfms_model::Container;

fn run(
    def: &wfms_model::ProcessDefinition,
    world: (Arc<MultiDatabase>, Arc<ProgramRegistry>),
) -> (bool, Arc<MultiDatabase>) {
    let (fed, registry) = world;
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def.clone()).unwrap();
    let id = engine.start(&def.name, Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    let committed = engine
        .output(id)
        .unwrap()
        .get("Committed")
        .and_then(|v| v.as_int())
        == Some(1);
    (committed, fed)
}

fn kv_world(steps: &[(&str, Option<&str>)]) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    for (step, comp) in steps {
        registry.register(Arc::new(
            KvProgram::write(&format!("prog_{step}"), "db", step, 1i64).with_label(step),
        ));
        if let Some(comp) = comp {
            registry.register(Arc::new(KvProgram::write(comp, "db", step, Value::Int(-1))));
        }
    }
    (fed, registry)
}

#[test]
fn one_step_saga_commits_and_compensates() {
    let spec = SagaSpec::linear(
        "one",
        vec![StepSpec::compensatable("S", "prog_S", "comp_S")],
    );
    let def = exotica::translate_saga(&spec).unwrap();

    let world = kv_world(&[("S", Some("comp_S"))]);
    let (committed, fed) = run(&def, world);
    assert!(committed);
    assert_eq!(fed.db("db").unwrap().peek("S"), Some(Value::Int(1)));

    let world = kv_world(&[("S", Some("comp_S"))]);
    world.0.injector().set_plan("S", FailurePlan::Always);
    let (committed, fed) = run(&def, world);
    assert!(!committed);
    // S never committed, so nothing to compensate.
    assert_eq!(fed.db("db").unwrap().peek("S"), None);
}

#[test]
fn single_path_flex_is_a_degenerate_saga() {
    // One path, no alternatives: commit on success, full compensation
    // on any failure (exactly a saga with a pivot tail).
    let spec = FlexSpec::new(
        "single",
        vec![
            FlexStep::compensatable("A", "prog_A", "comp_A"),
            FlexStep::compensatable("B", "prog_B", "comp_B"),
            FlexStep::pivot("P", "prog_P"),
        ],
        vec![vec!["A", "B", "P"]],
    );
    assert!(atm::check_flex(&spec).is_empty());
    let def = exotica::translate_flex(&spec).unwrap();

    let world = kv_world(&[("A", Some("comp_A")), ("B", Some("comp_B")), ("P", None)]);
    let (committed, _) = run(&def, world);
    assert!(committed);

    // P fails: A and B compensated, transaction aborted.
    let world = kv_world(&[("A", Some("comp_A")), ("B", Some("comp_B")), ("P", None)]);
    world.0.injector().set_plan("P", FailurePlan::Always);
    let (committed, fed) = run(&def, world);
    assert!(!committed);
    assert_eq!(fed.db("db").unwrap().peek("A"), Some(Value::Int(-1)));
    assert_eq!(fed.db("db").unwrap().peek("B"), Some(Value::Int(-1)));
    assert_eq!(fed.db("db").unwrap().peek("P"), None);
}

#[test]
fn pivot_free_flex_with_retriable_fallback() {
    // No pivots at all: a compensatable main path with a retriable
    // fallback; failure of C switches to R with no compensation needed
    // beyond C's own segment.
    let spec = FlexSpec::new(
        "nopivot",
        vec![
            FlexStep::compensatable("C", "prog_C", "comp_C"),
            FlexStep::retriable("R", "prog_R"),
        ],
        vec![vec!["C"], vec!["R"]],
    );
    assert!(atm::check_flex(&spec).is_empty());
    let def = exotica::translate_flex(&spec).unwrap();

    let world = kv_world(&[("C", Some("comp_C")), ("R", None)]);
    world.0.injector().set_plan("C", FailurePlan::Always);
    let (committed, fed) = run(&def, world);
    assert!(committed, "fallback commits via R");
    assert_eq!(fed.db("db").unwrap().peek("R"), Some(Value::Int(1)));
    assert_eq!(fed.db("db").unwrap().peek("C"), None);
}

#[test]
fn all_retriable_flex_always_commits() {
    let spec = FlexSpec::new(
        "allretry",
        vec![
            FlexStep::retriable("R1", "prog_R1"),
            FlexStep::retriable("R2", "prog_R2"),
        ],
        vec![vec!["R1", "R2"]],
    );
    let def = exotica::translate_flex(&spec).unwrap();
    let world = kv_world(&[("R1", None), ("R2", None)]);
    world.0.injector().set_plan("R1", FailurePlan::FirstN(3));
    world.0.injector().set_plan("R2", FailurePlan::FirstN(2));
    let (committed, _) = run(&def, world);
    assert!(committed);
}

#[test]
fn generated_fdl_for_both_translations_reimports() {
    // Round-trip stability across the whole corpus of generated
    // processes: saga sizes 1..10, flat variants, and Figure 3.
    for n in 1..=10 {
        let spec = atm::fixtures::linear_saga(&format!("s{n}"), n);
        for def in [
            exotica::translate_saga(&spec).unwrap(),
            exotica::translate_saga_flat(&spec).unwrap(),
        ] {
            let fdl = wfms_fdl::emit(&def);
            let back =
                wfms_fdl::parse_and_validate(&fdl).unwrap_or_else(|e| panic!("n={n}: {e:?}"));
            assert_eq!(back, def, "n={n}");
        }
    }
    let def = exotica::translate_flex(&atm::fixtures::figure3_spec()).unwrap();
    let back = wfms_fdl::parse_and_validate(&wfms_fdl::emit(&def)).unwrap();
    assert_eq!(back, def);
}

#[test]
fn native_flex_stuck_on_lying_compensation() {
    // A compensation that never commits exhausts the retry bound:
    // the native executor reports Stuck rather than hanging.
    let spec = FlexSpec::new(
        "liar",
        vec![
            FlexStep::compensatable("C", "prog_C", "comp_C"),
            FlexStep::pivot("P", "prog_P"),
            FlexStep::retriable("R", "prog_R"),
        ],
        vec![vec!["C", "P"], vec!["R"]],
    );
    let (fed, registry) = kv_world(&[("C", Some("comp_C")), ("P", None), ("R", None)]);
    fed.injector().set_plan("P", FailurePlan::Always);
    fed.injector().set_plan("comp_C", FailurePlan::Always);
    let mut exec = atm::FlexExecutor::new(Arc::clone(&fed), registry);
    exec.max_retries = 4;
    let res = exec.run(&spec).unwrap();
    assert_eq!(res.outcome, atm::FlexOutcome::Stuck { step: "C".into() });
}
