-- WA051: the path references a step that was never declared.
FLEXIBLE f
  STEP R PROGRAM "r" RETRIABLE
  PATH R Ghost
END
