-- WA055: after the last path's pivot, C is not retriable.
FLEXIBLE f
  STEP P PROGRAM "p" PIVOT
  STEP C PROGRAM "c" COMPENSATION "undo_c"
  PATH P C
END
