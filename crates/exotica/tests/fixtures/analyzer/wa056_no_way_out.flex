-- WA056: abandoning path 0 at P would strand committed step R,
-- which has no compensation.
FLEXIBLE f
  STEP R PROGRAM "r" RETRIABLE
  STEP P PROGRAM "p" PIVOT
  STEP S PROGRAM "s" RETRIABLE
  PATH R P
  PATH S
END
