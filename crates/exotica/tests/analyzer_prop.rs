//! Property: specifications that pass the analyzer clean also
//! translate and execute without navigator errors — the stage-5 gate
//! admits exactly the processes the engine can actually run, including
//! under failure injection.

use atm::{fixtures, FlexSpec, StepSpec};
use exotica::{AtmSpec, PipelineOutput};
use proptest::prelude::*;
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
use wfms_engine::{Engine, InstanceStatus};
use wfms_model::Container;

/// Provisions programs for every step the way `fmtm run` does and
/// drives the translated process to quiescence.
fn execute(out: &PipelineOutput, plans: &[(String, FailurePlan)], seed: u64) -> InstanceStatus {
    let fed = MultiDatabase::new(seed);
    let registry = Arc::new(ProgramRegistry::new());
    let steps: Vec<(String, String, Option<String>)> = match &out.spec {
        AtmSpec::Saga(s) => s
            .steps()
            .map(|st| (st.name.clone(), st.program.clone(), st.compensation.clone()))
            .collect(),
        AtmSpec::Flexible(f) => f
            .steps
            .iter()
            .map(|st| (st.name.clone(), st.program.clone(), st.compensation.clone()))
            .collect(),
    };
    for (i, (step, program, compensation)) in steps.iter().enumerate() {
        let site = format!("site_{}", char::from(b'a' + (i % 3) as u8));
        if fed.db(&site).is_none() {
            fed.add_database(&site);
        }
        registry.register(Arc::new(
            KvProgram::write(program, &site, step, 1i64).with_label(step),
        ));
        if let Some(comp) = compensation {
            registry.register(Arc::new(KvProgram::write(
                comp,
                &site,
                step,
                Value::Int(-1),
            )));
        }
    }
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }
    let engine = Engine::new(fed, registry);
    engine.register(out.process.clone()).expect("register");
    let id = engine
        .start(&out.process.name, Container::empty())
        .expect("start");
    engine.run_to_quiescence(id).expect("no navigator errors")
}

/// The full claim for one spec: lints clean as text, passes the
/// pipeline with no findings at all, and executes to `Finished`.
fn assert_clean_and_runs(spec: &AtmSpec, plans: &[(String, FailurePlan)], seed: u64) {
    let text = exotica::emit_spec(spec);
    let diags = exotica::lint_source(&text, &[]).expect("spec parses");
    assert!(diags.is_empty(), "lint findings on {text}:\n{diags:?}");
    let out = exotica::run_pipeline(&text).expect("pipeline accepts");
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    let status = execute(&out, plans, seed);
    assert_eq!(status, InstanceStatus::Finished, "plans: {plans:?}");
}

/// A flexible transaction from the statically translatable,
/// well-formed family: compensatable prefix, optional pivot, retriable
/// tail, one path covering all steps in order.
fn flex_family(m: usize, with_pivot: bool, k: usize) -> FlexSpec {
    let mut steps = Vec::new();
    for i in 0..m {
        steps.push(StepSpec::compensatable(
            &format!("C{i}"),
            &format!("do_C{i}"),
            &format!("undo_C{i}"),
        ));
    }
    if with_pivot {
        steps.push(StepSpec::pivot("P", "do_P"));
    }
    for i in 0..k {
        steps.push(StepSpec::retriable(&format!("R{i}"), &format!("do_R{i}")));
    }
    let path: Vec<&str> = steps.iter().map(|s| s.name.as_str()).collect();
    let paths = vec![path];
    FlexSpec::new("f", steps.clone(), paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clean_sagas_execute_under_any_abort_position(
        n in 1usize..8,
        abort_at in 0usize..10,
        seed in 0u64..100,
    ) {
        let spec = AtmSpec::Saga(fixtures::linear_saga("s", n));
        let plans: Vec<(String, FailurePlan)> = if (1..=n).contains(&abort_at) {
            vec![(format!("S{abort_at}"), FailurePlan::Always)]
        } else {
            vec![]
        };
        assert_clean_and_runs(&spec, &plans, seed);
    }

    #[test]
    fn clean_flexes_execute_with_and_without_failures(
        m in 0usize..4,
        with_pivot in any::<bool>(),
        k in 0usize..3,
        fail_comp in 0usize..6,
        seed in 0u64..100,
    ) {
        // At least one step (the shim has no prop_assume; widen the
        // empty corner into the smallest member of the family).
        let k = if m + usize::from(with_pivot) + k == 0 { 1 } else { k };
        let flex = flex_family(m, with_pivot, k);
        // Permanently fail at most one non-retriable step (a retriable
        // step failing forever livelocks by design).
        let plans: Vec<(String, FailurePlan)> = if fail_comp < m {
            vec![(format!("C{fail_comp}"), FailurePlan::Always)]
        } else if fail_comp == m && with_pivot {
            vec![("P".to_string(), FailurePlan::Always)]
        } else {
            vec![]
        };
        assert_clean_and_runs(&AtmSpec::Flexible(flex), &plans, seed);
    }
}

#[test]
fn figure3_is_clean_and_executes() {
    assert_clean_and_runs(&AtmSpec::Flexible(fixtures::figure3_spec()), &[], 7);
}
