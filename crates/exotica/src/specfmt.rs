//! The textual ATM specification format — the "user specification"
//! entering the Figure 5 pipeline.
//!
//! ```text
//! SAGA book_trip
//!   STEP T1 PROGRAM "book_flight" COMPENSATION "cancel_flight"
//!   STEP T2 PROGRAM "book_hotel"  COMPENSATION "cancel_hotel"
//! END
//!
//! FLEXIBLE figure3
//!   STEP T1 PROGRAM "prog_T1" COMPENSATION "comp_T1"
//!   STEP T2 PROGRAM "prog_T2" PIVOT
//!   STEP T3 PROGRAM "prog_T3" RETRIABLE
//!   STEP T6 PROGRAM "prog_T6" COMPENSATION "comp_T6" RETRIABLE
//!   PATH T1 T2 T3
//! END
//! ```
//!
//! Classes are inferred: `COMPENSATION` ⇒ compensatable, `RETRIABLE`
//! ⇒ retriable, both ⇒ compensatable-and-retriable, `PIVOT` (or
//! nothing, for flexible transactions) ⇒ pivot. Saga steps must all
//! carry a `COMPENSATION`; the model checkers report violations
//! downstream.

use atm::{FlexSpec, SagaSpec, StepSpec};
use txn_substrate::StepClass;

/// A parsed specification: which model, and its content.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedSpec {
    /// A (linear) saga.
    Saga(SagaSpec),
    /// A flexible transaction.
    Flexible(FlexSpec),
}

impl ParsedSpec {
    /// The specification's name.
    pub fn name(&self) -> &str {
        match self {
            ParsedSpec::Saga(s) => &s.name,
            ParsedSpec::Flexible(f) => &f.name,
        }
    }
}

/// A specification syntax error with its (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecSyntaxError {
    /// Line the error was detected on.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for SpecSyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SpecSyntaxError {}

/// Line numbers (1-based) of the elements of a parsed specification,
/// recorded by [`parse_spec_spanned`] so analysis diagnostics can
/// point back at the spec text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecSpans {
    /// Line of the `SAGA`/`FLEXIBLE` header.
    pub header: u32,
    /// Line of each `STEP`, by step name (last occurrence wins, which
    /// points duplicate-step findings at the offending line).
    pub steps: std::collections::BTreeMap<String, u32>,
    /// Line of each `PATH`, in declaration order.
    pub paths: Vec<u32>,
}

/// Parses one specification.
pub fn parse_spec(src: &str) -> Result<ParsedSpec, SpecSyntaxError> {
    parse_spec_spanned(src).map(|(spec, _)| spec)
}

/// Parses one specification, also recording the line number of each
/// element (see [`SpecSpans`]).
pub fn parse_spec_spanned(src: &str) -> Result<(ParsedSpec, SpecSpans), SpecSyntaxError> {
    let mut steps: Vec<StepSpec> = Vec::new();
    let mut paths: Vec<Vec<String>> = Vec::new();
    let mut header: Option<(bool, String)> = None; // (is_saga, name)
    let mut ended = false;
    let mut spans = SpecSpans::default();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno as u32 + 1;
        let text = raw.split("--").next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if ended {
            return Err(SpecSyntaxError {
                line,
                msg: "content after END".into(),
            });
        }
        let tokens = tokenize(text, line)?;
        let head = tokens[0].to_ascii_uppercase();
        match head.as_str() {
            "SAGA" | "FLEXIBLE" => {
                if header.is_some() {
                    return Err(SpecSyntaxError {
                        line,
                        msg: "duplicate specification header".into(),
                    });
                }
                if tokens.len() != 2 {
                    return Err(SpecSyntaxError {
                        line,
                        msg: format!("{head} needs exactly one name"),
                    });
                }
                header = Some((head == "SAGA", tokens[1].clone()));
                spans.header = line;
            }
            "STEP" => {
                if header.is_none() {
                    return Err(SpecSyntaxError {
                        line,
                        msg: "STEP before the SAGA/FLEXIBLE header".into(),
                    });
                }
                let step = parse_step(&tokens, line)?;
                spans.steps.insert(step.name.clone(), line);
                steps.push(step);
            }
            "PATH" => {
                match &header {
                    Some((false, _)) => {}
                    Some((true, _)) => {
                        return Err(SpecSyntaxError {
                            line,
                            msg: "PATH is only valid in FLEXIBLE specifications".into(),
                        })
                    }
                    None => {
                        return Err(SpecSyntaxError {
                            line,
                            msg: "PATH before the FLEXIBLE header".into(),
                        })
                    }
                }
                if tokens.len() < 2 {
                    return Err(SpecSyntaxError {
                        line,
                        msg: "PATH needs at least one step".into(),
                    });
                }
                spans.paths.push(line);
                paths.push(tokens[1..].to_vec());
            }
            "END" => ended = true,
            other => {
                return Err(SpecSyntaxError {
                    line,
                    msg: format!("unexpected {other:?}"),
                })
            }
        }
    }

    let Some((is_saga, name)) = header else {
        return Err(SpecSyntaxError {
            line: 1,
            msg: "missing SAGA or FLEXIBLE header".into(),
        });
    };
    if !ended {
        return Err(SpecSyntaxError {
            line: src.lines().count() as u32,
            msg: "missing END".into(),
        });
    }
    let spec = if is_saga {
        ParsedSpec::Saga(SagaSpec::linear(&name, steps))
    } else {
        ParsedSpec::Flexible(FlexSpec { name, steps, paths })
    };
    Ok((spec, spans))
}

/// Renders a specification back to its textual form (canonical).
pub fn emit_spec(spec: &ParsedSpec) -> String {
    let mut out = String::new();
    match spec {
        ParsedSpec::Saga(s) => {
            out.push_str(&format!("SAGA {}\n", s.name));
            for step in s.steps() {
                out.push_str(&emit_step(step));
            }
        }
        ParsedSpec::Flexible(f) => {
            out.push_str(&format!("FLEXIBLE {}\n", f.name));
            for step in &f.steps {
                out.push_str(&emit_step(step));
            }
            for p in &f.paths {
                out.push_str(&format!("  PATH {}\n", p.join(" ")));
            }
        }
    }
    out.push_str("END\n");
    out
}

fn emit_step(step: &StepSpec) -> String {
    let mut line = format!("  STEP {} PROGRAM \"{}\"", step.name, step.program);
    if let Some(c) = &step.compensation {
        line.push_str(&format!(" COMPENSATION \"{c}\""));
    }
    if step.class.is_retriable() {
        line.push_str(" RETRIABLE");
    }
    if step.class.is_pivot() {
        line.push_str(" PIVOT");
    }
    line.push('\n');
    line
}

fn parse_step(tokens: &[String], line: u32) -> Result<StepSpec, SpecSyntaxError> {
    if tokens.len() < 2 {
        return Err(SpecSyntaxError {
            line,
            msg: "STEP needs a name".into(),
        });
    }
    let name = tokens[1].clone();
    let mut program: Option<String> = None;
    let mut compensation: Option<String> = None;
    let mut retriable = false;
    let mut pivot = false;
    let mut i = 2;
    while i < tokens.len() {
        match tokens[i].to_ascii_uppercase().as_str() {
            "PROGRAM" => {
                program = Some(
                    tokens
                        .get(i + 1)
                        .ok_or_else(|| SpecSyntaxError {
                            line,
                            msg: "PROGRAM needs a value".into(),
                        })?
                        .clone(),
                );
                i += 2;
            }
            "COMPENSATION" => {
                compensation = Some(
                    tokens
                        .get(i + 1)
                        .ok_or_else(|| SpecSyntaxError {
                            line,
                            msg: "COMPENSATION needs a value".into(),
                        })?
                        .clone(),
                );
                i += 2;
            }
            "RETRIABLE" => {
                retriable = true;
                i += 1;
            }
            "PIVOT" => {
                pivot = true;
                i += 1;
            }
            other => {
                return Err(SpecSyntaxError {
                    line,
                    msg: format!("unexpected {other:?} in STEP"),
                })
            }
        }
    }
    let Some(program) = program else {
        return Err(SpecSyntaxError {
            line,
            msg: format!("step {name:?} names no PROGRAM"),
        });
    };
    if pivot && (retriable || compensation.is_some()) {
        return Err(SpecSyntaxError {
            line,
            msg: format!("step {name:?}: PIVOT excludes RETRIABLE/COMPENSATION"),
        });
    }
    let class = match (compensation.is_some(), retriable) {
        (true, true) => StepClass::CompensatableRetriable,
        (true, false) => StepClass::Compensatable,
        (false, true) => StepClass::Retriable,
        (false, false) => StepClass::Pivot,
    };
    Ok(StepSpec {
        name,
        program,
        compensation,
        class,
    })
}

/// Splits a line into words, treating double-quoted substrings as one
/// token (without the quotes).
fn tokenize(text: &str, line: u32) -> Result<Vec<String>, SpecSyntaxError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => {
                        return Err(SpecSyntaxError {
                            line,
                            msg: "unterminated string".into(),
                        })
                    }
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                }
            }
            out.push(s);
        } else {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                s.push(ch);
                chars.next();
            }
            out.push(s);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm::fixtures::figure3_spec;

    #[test]
    fn saga_round_trip() {
        let src = r#"
            SAGA trip
              STEP T1 PROGRAM "book" COMPENSATION "cancel"
              STEP T2 PROGRAM "pay" COMPENSATION "refund"
            END
        "#;
        let spec = parse_spec(src).unwrap();
        let ParsedSpec::Saga(s) = &spec else { panic!() };
        assert_eq!(s.len(), 2);
        assert!(s.is_linear());
        let emitted = emit_spec(&spec);
        assert_eq!(parse_spec(&emitted).unwrap(), spec);
    }

    #[test]
    fn figure3_text_matches_fixture() {
        let src = r#"
            FLEXIBLE figure3
              STEP T1 PROGRAM "prog_T1" COMPENSATION "comp_T1"
              STEP T2 PROGRAM "prog_T2" PIVOT
              STEP T3 PROGRAM "prog_T3" RETRIABLE
              STEP T4 PROGRAM "prog_T4" PIVOT
              STEP T5 PROGRAM "prog_T5" COMPENSATION "comp_T5"
              STEP T6 PROGRAM "prog_T6" COMPENSATION "comp_T6"
              STEP T7 PROGRAM "prog_T7" RETRIABLE
              STEP T8 PROGRAM "prog_T8" PIVOT
              PATH T1 T2 T4 T5 T6 T8
              PATH T1 T2 T4 T7
              PATH T1 T2 T3
            END
        "#;
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec, ParsedSpec::Flexible(figure3_spec()));
        // Canonical emission round-trips.
        assert_eq!(parse_spec(&emit_spec(&spec)).unwrap(), spec);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "SAGA s -- the name\n\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\nEND\n";
        assert!(parse_spec(src).is_ok());
    }

    #[test]
    fn error_taxonomy() {
        let cases: &[(&str, &str)] = &[
            ("STEP A PROGRAM \"p\"\nEND", "header"),
            ("SAGA s\nSTEP A\nEND", "PROGRAM"),
            ("SAGA s\nPATH A\nEND", "FLEXIBLE"),
            (
                "SAGA s\nSTEP A PROGRAM \"p\" PIVOT COMPENSATION \"c\"\nEND",
                "excludes",
            ),
            ("SAGA s\nSTEP A PROGRAM \"p\"\n", "missing END"),
            ("SAGA s\nEND\nextra", "after END"),
            ("SAGA a b\nEND", "one name"),
            ("FLEXIBLE f\nPATH\nEND", "at least one step"),
            ("SAGA s\nWHAT\nEND", "unexpected"),
            ("SAGA s\nSTEP A PROGRAM \"unclosed\nEND", "unterminated"),
        ];
        for (src, needle) in cases {
            let err = parse_spec(src).unwrap_err();
            assert!(
                err.msg.to_lowercase().contains(&needle.to_lowercase()),
                "source {src:?} produced {err:?}, expected {needle:?}"
            );
        }
    }

    #[test]
    fn spans_record_element_lines() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\n\n  STEP B PROGRAM \"q\" COMPENSATION \"d\"\nEND\n";
        let (_, spans) = parse_spec_spanned(src).unwrap();
        assert_eq!(spans.header, 1);
        assert_eq!(spans.steps.get("A"), Some(&2));
        assert_eq!(spans.steps.get("B"), Some(&4));
        assert!(spans.paths.is_empty());

        let src = "FLEXIBLE f\n  STEP A PROGRAM \"p\" RETRIABLE\n  PATH A\nEND\n";
        let (_, spans) = parse_spec_spanned(src).unwrap();
        assert_eq!(spans.paths, vec![3]);
    }

    #[test]
    fn class_inference() {
        let src = r#"
            FLEXIBLE f
              STEP A PROGRAM "p"
              STEP B PROGRAM "p" RETRIABLE
              STEP C PROGRAM "p" COMPENSATION "c"
              STEP D PROGRAM "p" COMPENSATION "c" RETRIABLE
              PATH A B C D
            END
        "#;
        let ParsedSpec::Flexible(f) = parse_spec(src).unwrap() else {
            panic!()
        };
        assert!(f.class_of("A").is_pivot());
        assert!(f.class_of("B").is_retriable() && !f.class_of("B").is_compensatable());
        assert!(f.class_of("C").is_compensatable() && !f.class_of("C").is_retriable());
        assert!(f.class_of("D").is_compensatable() && f.class_of("D").is_retriable());
    }
}
