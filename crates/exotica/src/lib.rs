//! # exotica — the Exotica/FMTM pre-processor
//!
//! The paper's §5 prototype: "a middleware module … which acts as a
//! pre-processor that converts high level specifications of advanced
//! transaction models into workflow processes". This crate implements
//! the full Figure 5 pipeline:
//!
//! ```text
//!  ATM spec text ──specfmt──▶ SagaSpec / FlexSpec
//!        │                         │  well-formedness (atm::wellformed)
//!        │                         ▼
//!        │                 translate (Figure 2 / Figure 4 constructions)
//!        │                         │
//!        │                         ▼
//!        └────────────▶ FDL text ──import──▶ validated ProcessDefinition
//!                                                (executable template)
//! ```
//!
//! * [`saga`] — the Figure 2 construction: forward block +
//!   compensation block with the NOP trigger and `State_i` bookkeeping.
//! * [`flexible`] — the §4.2 seven-step construction generalised from
//!   Figure 4: prefix-merged alternative paths, segment blocks for
//!   maximal compensatable runs, pivot branch points, retriable exit
//!   conditions, and failure routing through compensation blocks.
//! * [`specfmt`] — the textual specification format the pre-processor
//!   accepts (the "user specification" of Figure 5).
//! * [`pipeline`] — the end-to-end driver with the per-stage error
//!   taxonomy (spec syntax → model rules → translation → FDL import →
//!   static analysis).
//! * [`lint`] — the `fmtm lint` front end: sniffs whether a file is
//!   FDL or an ATM spec and runs the matching `wfms-analyzer` battery
//!   with source positions attached.
//! * [`verify`] — the equivalence harness: runs a specification both
//!   natively (`atm::native`) and as a translated workflow process
//!   under identical failure scripts and compares outcomes, database
//!   state and compensation activity.
//! * [`mod@provision`] — substrate synthesis shared by the CLI and the
//!   `fmtm serve` shard pool: a three-site multidatabase and a
//!   program registry derived from a spec's steps.

pub mod flexible;
pub mod lint;
pub mod pipeline;
pub mod provision;
pub mod saga;
pub mod specfmt;
pub mod verify;

pub use flexible::translate_flex;
pub use lint::{lint_source, sniff, LintTarget};
pub use pipeline::{
    import_and_analyze, import_and_analyze_timed, run_pipeline, AtmSpec, PipelineError,
    PipelineOutput,
};
pub use provision::{provision, steps_of, steps_of_all, steps_of_process};
pub use saga::{translate_saga, translate_saga_flat};
pub use specfmt::{emit_spec, parse_spec, parse_spec_spanned, ParsedSpec, SpecSpans};
pub use verify::{compare_flex, compare_saga, EquivalenceReport};

use atm::WellFormedError;
use wfms_model::ValidationError;

/// Errors produced by the translation stage.
#[derive(Debug)]
pub enum TranslateError {
    /// The specification violates its model's well-formedness rules.
    NotWellFormed(Vec<WellFormedError>),
    /// The saga translation covers linear sagas only, as does §4.1 of
    /// the paper ("the discussion will be limited to the linear
    /// sagas"); staged sagas run on the native executor.
    NotLinear,
    /// The specification is well-formed but outside the structural
    /// class the static translation supports (the error text explains
    /// which assumption failed).
    Unsupported(String),
    /// The generated process failed meta-model validation — a bug in
    /// the translator; surfaced rather than panicking so the pipeline
    /// can report it.
    Model(Vec<ValidationError>),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::NotWellFormed(errs) => {
                writeln!(f, "specification is not well-formed:")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            TranslateError::NotLinear => {
                f.write_str("only linear sagas are translated to workflow processes")
            }
            TranslateError::Unsupported(msg) => write!(f, "unsupported specification: {msg}"),
            TranslateError::Model(errs) => {
                writeln!(f, "translator produced an invalid process (bug):")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TranslateError {}
