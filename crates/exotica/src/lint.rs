//! Lint front end shared by `fmtm lint` and the golden tests.
//!
//! Accepts either kind of source text the toolchain works with and
//! runs the appropriate `wfms-analyzer` battery:
//!
//! * **FDL** (first keyword `PROCESS`) — parsed with provenance, so
//!   every finding carries the line/column of the offending element.
//! * **ATM specs** (first keyword `SAGA` or `FLEXIBLE`) — the
//!   ATM-level lints run against the parsed spec with step positions
//!   from [`SpecSpans`](crate::specfmt::SpecSpans); if those are
//!   clean, the spec is translated
//!   and the generated process is analysed too (position-less, since
//!   the FDL it would point into is machine-generated).

use crate::flexible::translate_flex;
use crate::saga::translate_saga;
use crate::specfmt::{parse_spec_spanned, ParsedSpec};
use wfms_analyzer::{has_errors, Analyzer, Diagnostic};
use wfms_fdl::Pos;

/// What kind of source text a file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintTarget {
    /// FlowMark Definition Language (a `PROCESS`).
    Fdl,
    /// An ATM specification (`SAGA` or `FLEXIBLE`).
    Spec,
}

/// Sniffs the source kind from its first keyword, skipping blank
/// lines and `--`/`//` comment lines.
pub fn sniff(src: &str) -> Option<LintTarget> {
    for line in src.lines() {
        let text = line.trim();
        if text.is_empty() || text.starts_with("--") || text.starts_with("//") {
            continue;
        }
        let word = text
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        return match word.as_str() {
            "PROCESS" => Some(LintTarget::Fdl),
            "SAGA" | "FLEXIBLE" => Some(LintTarget::Spec),
            _ => None,
        };
    }
    None
}

/// Lints one source text. `allowed` suppresses the given `WA0xx`
/// codes. Returns `Err` with a message when the text does not parse
/// at all (lints need a parsed artifact to look at).
pub fn lint_source(src: &str, allowed: &[String]) -> Result<Vec<Diagnostic>, String> {
    let analyzer = || {
        let mut a = Analyzer::new();
        for code in allowed {
            a = a.allow(code);
        }
        a
    };
    match sniff(src) {
        Some(LintTarget::Fdl) => {
            let (def, prov) = wfms_fdl::parse_with_provenance(src).map_err(|e| e.to_string())?;
            Ok(analyzer().check_process(&def, Some(&prov)))
        }
        Some(LintTarget::Spec) => {
            let (spec, spans) = parse_spec_spanned(src).map_err(|e| e.to_string())?;
            let mut diags = match &spec {
                ParsedSpec::Saga(s) => analyzer().check_saga(s),
                ParsedSpec::Flexible(f) => analyzer().check_flex(f),
            };
            for d in &mut diags {
                if d.pos.is_none() {
                    let line = d
                        .element
                        .as_ref()
                        .and_then(|e| spans.steps.get(e).copied())
                        .unwrap_or(spans.header);
                    if line > 0 {
                        d.pos = Some(Pos { line, col: 1 });
                    }
                }
            }
            // Spec-level errors make the translation meaningless;
            // likewise a spec outside the supported translation class
            // is `fmtm check`'s concern, not a lint finding.
            if !has_errors(&diags) {
                let translated = match &spec {
                    ParsedSpec::Saga(s) => translate_saga(s),
                    ParsedSpec::Flexible(f) => translate_flex(f),
                };
                if let Ok(process) = translated {
                    diags.extend(analyzer().check_process(&process, None));
                }
            }
            Ok(diags)
        }
        None => Err("unrecognised source: expected PROCESS, SAGA or FLEXIBLE".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffs_through_comments() {
        assert_eq!(sniff("-- c\n\nPROCESS p END"), Some(LintTarget::Fdl));
        assert_eq!(sniff("// c\nsaga s\nEND"), Some(LintTarget::Spec));
        assert_eq!(sniff("FLEXIBLE f\nEND"), Some(LintTarget::Spec));
        assert_eq!(sniff("-- only a comment"), None);
        assert_eq!(sniff("WHAT is this"), None);
    }

    #[test]
    fn fdl_findings_have_positions() {
        let src = "PROCESS p\n  ACTIVITY A PROGRAM \"a\" END\n  ACTIVITY B PROGRAM \"b\" END\n  CONTROL FROM A TO B WHEN \"1 = 2\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(diags.iter().any(|d| d.code == "WA031"));
        assert!(diags.iter().all(|d| d.pos.is_some()), "{diags:?}");
    }

    #[test]
    fn spec_findings_point_at_step_lines() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\n  STEP B PROGRAM \"q\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        let d = diags.iter().find(|d| d.code == "WA052").expect("WA052");
        assert_eq!(d.pos.map(|p| p.line), Some(3));
    }

    #[test]
    fn clean_spec_also_lints_its_translation() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_list_respected() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(!diags.is_empty());
        let codes: Vec<String> = diags.iter().map(|d| d.code.to_owned()).collect();
        let diags = lint_source(src, &codes).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unparseable_source_is_an_error() {
        assert!(lint_source("neither fish nor fowl", &[]).is_err());
        assert!(lint_source("PROCESS p ACTIVITY END", &[]).is_err());
    }
}
