//! Lint front end shared by `fmtm lint` and the golden tests.
//!
//! Accepts either kind of source text the toolchain works with and
//! runs the appropriate `wfms-analyzer` battery:
//!
//! * **ATM specs** (`SAGA`/`FLEXIBLE`) — the ATM-level lints run
//!   against the parsed spec with step positions from
//!   [`SpecSpans`](crate::specfmt::SpecSpans); if those are clean,
//!   the spec is translated and the generated process is analysed too
//!   (position-less, since the FDL it would point into is
//!   machine-generated).
//! * **FDL** (a `PROCESS`) — parsed with provenance, so every finding
//!   carries the line/column of the offending element.
//!
//! The kind is decided by *parsing*, not by keyword sniffing: the
//! spec grammar is tried first, FDL second, and when neither accepts
//! the text the error reports both parsers' complaints. (An earlier
//! version dispatched on the first keyword, which turned every
//! mis-spelled header into an unhelpful "unrecognised source".)

use crate::flexible::translate_flex;
use crate::saga::translate_saga;
use crate::specfmt::{parse_spec_spanned, ParsedSpec};
use wfms_analyzer::{has_errors, Analyzer, Diagnostic};
use wfms_fdl::Pos;

/// What kind of source text a file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintTarget {
    /// FlowMark Definition Language (a `PROCESS`).
    Fdl,
    /// An ATM specification (`SAGA` or `FLEXIBLE`).
    Spec,
}

/// Sniffs the source kind from its first keyword, skipping blank
/// lines and `--`/`//` comment lines.
///
/// This is a display-level *hint* (file listings, error headers) —
/// [`lint_source`] decides the kind by actually parsing, so a spec
/// with a mangled header still gets a real parse error instead of
/// "unrecognised source".
pub fn sniff(src: &str) -> Option<LintTarget> {
    for line in src.lines() {
        let text = line.trim();
        if text.is_empty() || text.starts_with("--") || text.starts_with("//") {
            continue;
        }
        let word = text
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        return match word.as_str() {
            "PROCESS" => Some(LintTarget::Fdl),
            "SAGA" | "FLEXIBLE" => Some(LintTarget::Spec),
            _ => None,
        };
    }
    None
}

/// Lints one source text. `allowed` suppresses the given `WA0xx`
/// codes. Returns `Err` with a message when the text does not parse
/// at all (lints need a parsed artifact to look at).
///
/// The source kind is decided by parsing: the spec grammar first
/// (specs are the common `fmtm` input), then FDL. When both reject
/// the text the error carries both complaints, so a near-miss spec
/// shows its actual spec parse error rather than FDL's.
pub fn lint_source(src: &str, allowed: &[String]) -> Result<Vec<Diagnostic>, String> {
    let analyzer = || {
        let mut a = Analyzer::new();
        for code in allowed {
            a = a.allow(code);
        }
        a
    };
    let spec_err = match parse_spec_spanned(src) {
        Ok((spec, spans)) => {
            let mut diags = match &spec {
                ParsedSpec::Saga(s) => analyzer().check_saga(s),
                ParsedSpec::Flexible(f) => analyzer().check_flex(f),
            };
            for d in &mut diags {
                if d.pos.is_none() {
                    let line = d
                        .element
                        .as_ref()
                        .and_then(|e| spans.steps.get(e).copied())
                        .unwrap_or(spans.header);
                    if line > 0 {
                        d.pos = Some(Pos { line, col: 1 });
                    }
                }
            }
            // Spec-level errors make the translation meaningless;
            // likewise a spec outside the supported translation class
            // is `fmtm check`'s concern, not a lint finding.
            if !has_errors(&diags) {
                let translated = match &spec {
                    ParsedSpec::Saga(s) => translate_saga(s),
                    ParsedSpec::Flexible(f) => translate_flex(f),
                };
                if let Ok(process) = translated {
                    diags.extend(analyzer().check_process(&process, None));
                }
            }
            return Ok(diags);
        }
        Err(e) => e.to_string(),
    };
    match wfms_fdl::parse_with_provenance(src) {
        Ok((def, prov)) => Ok(analyzer().check_process(&def, Some(&prov))),
        Err(fdl_err) => Err(format!(
            "source parses as neither an ATM spec nor FDL\n  as spec: {spec_err}\n  as FDL: {fdl_err}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffs_through_comments() {
        assert_eq!(sniff("-- c\n\nPROCESS p END"), Some(LintTarget::Fdl));
        assert_eq!(sniff("// c\nsaga s\nEND"), Some(LintTarget::Spec));
        assert_eq!(sniff("FLEXIBLE f\nEND"), Some(LintTarget::Spec));
        assert_eq!(sniff("-- only a comment"), None);
        assert_eq!(sniff("WHAT is this"), None);
    }

    #[test]
    fn fdl_findings_have_positions() {
        let src = "PROCESS p\n  ACTIVITY A PROGRAM \"a\" END\n  ACTIVITY B PROGRAM \"b\" END\n  CONTROL FROM A TO B WHEN \"1 = 2\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(diags.iter().any(|d| d.code == "WA031"));
        assert!(diags.iter().all(|d| d.pos.is_some()), "{diags:?}");
    }

    #[test]
    fn spec_findings_point_at_step_lines() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\n  STEP B PROGRAM \"q\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        let d = diags.iter().find(|d| d.code == "WA052").expect("WA052");
        assert_eq!(d.pos.map(|p| p.line), Some(3));
    }

    #[test]
    fn clean_spec_also_lints_its_translation() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\" COMPENSATION \"c\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_list_respected() {
        let src = "SAGA s\n  STEP A PROGRAM \"p\"\nEND";
        let diags = lint_source(src, &[]).unwrap();
        assert!(!diags.is_empty());
        let codes: Vec<String> = diags.iter().map(|d| d.code.to_owned()).collect();
        let diags = lint_source(src, &codes).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unparseable_source_reports_both_parsers() {
        let err = lint_source("neither fish nor fowl", &[]).unwrap_err();
        assert!(err.contains("as spec:"), "{err}");
        assert!(err.contains("as FDL:"), "{err}");
        let err = lint_source("PROCESS p ACTIVITY END", &[]).unwrap_err();
        assert!(err.contains("as spec:"), "{err}");
        assert!(err.contains("as FDL:"), "{err}");
    }

    #[test]
    fn kind_is_decided_by_parsing_not_keyword() {
        // An FDL file whose first word the old keyword sniffer did not
        // know (a leading pragma comment marker it skipped is fine,
        // but the real test: a spec with a broken header used to be
        // "unrecognised" — now it gets its actual spec parse error).
        let err = lint_source("SAGA\n  STEP A PROGRAM \"p\"\nEND", &[]).unwrap_err();
        assert!(err.contains("as spec:"), "{err}");
    }
}
