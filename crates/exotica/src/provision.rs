//! Auto-provisioning of the execution substrate for translated
//! specifications — shared by `fmtm run`, `fmtm top`,
//! `fmtm crashtest` and the `fmtm serve` shard pool.
//!
//! The paper's prototype executes "transactional programs" against a
//! heterogeneous multidatabase; for the CLI we synthesise that
//! environment from the spec itself: each step's forward program
//! writes `<step> = 1` on a local database chosen round-robin over
//! three sites (consulting the failure injector under the step's
//! name), each compensation writes `<step> = -1`.

use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};

use crate::ParsedSpec;

/// `(name, program, compensation)` for every step of a parsed spec.
pub fn steps_of(spec: &ParsedSpec) -> Vec<(String, String, Option<String>)> {
    match spec {
        ParsedSpec::Saga(s) => s
            .steps()
            .map(|st| (st.name.clone(), st.program.clone(), st.compensation.clone()))
            .collect(),
        ParsedSpec::Flexible(f) => f
            .steps
            .iter()
            .map(|st| (st.name.clone(), st.program.clone(), st.compensation.clone()))
            .collect(),
    }
}

/// `(activity, program, no compensation)` for every program activity
/// of an imported FDL process, blocks included, first occurrence of
/// each program name winning. This is how `fmtm run` auto-provisions
/// a plain FDL file the same way it provisions a translated spec: the
/// marker key is the activity name, the registered program its
/// declared program name.
pub fn steps_of_process(
    def: &wfms_model::ProcessDefinition,
) -> Vec<(String, String, Option<String>)> {
    fn walk(
        def: &wfms_model::ProcessDefinition,
        seen: &mut std::collections::HashSet<String>,
        out: &mut Vec<(String, String, Option<String>)>,
    ) {
        for a in &def.activities {
            match &a.kind {
                wfms_model::ActivityKind::Program { program } => {
                    if seen.insert(program.clone()) {
                        out.push((a.name.clone(), program.clone(), None));
                    }
                }
                wfms_model::ActivityKind::Block { process } => walk(process, seen, out),
                wfms_model::ActivityKind::NoOp => {}
            }
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    walk(def, &mut seen, &mut out);
    out
}

/// [`steps_of`] over several specs, first occurrence of each step
/// name winning — what a multi-template server provisions once.
pub fn steps_of_all(specs: &[ParsedSpec]) -> Vec<(String, String, Option<String>)> {
    let mut seen = std::collections::HashSet::new();
    let mut steps = Vec::new();
    for spec in specs {
        for step in steps_of(spec) {
            if seen.insert(step.0.clone()) {
                steps.push(step);
            }
        }
    }
    steps
}

/// Auto-provisions a fresh federation and program registry for a
/// spec's steps: each forward program writes `<step> = 1` on a site
/// chosen round-robin (consulting the injector under the step name),
/// each compensation writes `<step> = -1`; then installs the failure
/// plans.
pub fn provision(
    steps: &[(String, String, Option<String>)],
    seed: u64,
    plans: &[(String, FailurePlan)],
) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(seed);
    let registry = Arc::new(ProgramRegistry::new());
    for (i, (step, program, compensation)) in steps.iter().enumerate() {
        let site = format!("site_{}", char::from(b'a' + (i % 3) as u8));
        if fed.db(&site).is_none() {
            fed.add_database(&site);
        }
        registry.register(Arc::new(
            KvProgram::write(program, &site, step, 1i64).with_label(step),
        ));
        if let Some(comp) = compensation {
            registry.register(Arc::new(KvProgram::write(
                comp,
                &site,
                step,
                Value::Int(-1),
            )));
        }
    }
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }
    (fed, registry)
}
