//! The end-to-end Figure 5 pipeline.
//!
//! "The user creates a specification that contains the advanced
//! transaction model to be used and the set of transactions to be
//! executed. The pre-processor checks that the user specification
//! meets the format of the advanced transaction model specified. It
//! then takes the user specification and converts it into a FlowMark
//! process in FDL format. … This FDL output is then imported into
//! FlowMark and an internal representation of the process is created.
//! During this conversion the import module checks for inconsistencies
//! in the syntax of the process definition. Finally this internal
//! format is translated into an executable FlowMark process."
//!
//! [`run_pipeline`] performs all stages and reports failures with a
//! stage-tagged error taxonomy; [`PipelineOutput`] carries the
//! artifacts of every stage so callers (examples, benchmarks, tests)
//! can inspect each one.

use crate::flexible::translate_flex;
use crate::saga::translate_saga;
use crate::specfmt::{parse_spec, ParsedSpec, SpecSyntaxError};
use crate::TranslateError;
use atm::WellFormedError;
use std::sync::Arc;
use wfms_analyzer::{Analyzer, Diagnostic, Severity};
use wfms_engine::CompiledProcess;
use wfms_fdl::FdlError;
use wfms_model::ProcessDefinition;

/// Re-export under the name used throughout the documentation.
pub type AtmSpec = ParsedSpec;

/// Failure at one pipeline stage.
#[derive(Debug)]
pub enum PipelineError {
    /// Stage 1: the specification text does not parse.
    SpecSyntax(SpecSyntaxError),
    /// Stage 2: the specification violates its model's rules
    /// ("the pre-processor checks that the user specification meets
    /// the format of the advanced transaction model specified").
    ModelRules(Vec<WellFormedError>),
    /// Stage 3: the translation to a workflow process failed.
    Translation(TranslateError),
    /// Stage 4: the emitted FDL failed to re-import — a translator or
    /// emitter bug, surfaced for completeness of the taxonomy.
    FdlImport(Vec<FdlError>),
    /// Stage 5: the imported process failed static analysis — the
    /// `wfms-analyzer` battery found error-severity defects
    /// (unreachable activities, read-before-write container accesses,
    /// statically dead compensation paths, …).
    Analysis(Vec<Diagnostic>),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::SpecSyntax(e) => write!(f, "[stage 1: spec syntax] {e}"),
            PipelineError::ModelRules(errs) => {
                writeln!(f, "[stage 2: model rules]")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            PipelineError::Translation(e) => write!(f, "[stage 3: translation] {e}"),
            PipelineError::FdlImport(errs) => {
                writeln!(f, "[stage 4: FDL import]")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            PipelineError::Analysis(diags) => {
                writeln!(f, "[stage 5: analysis]")?;
                for d in diags {
                    writeln!(f, "  - {}", d.render())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Artifacts of a successful pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The parsed specification (stage 1).
    pub spec: AtmSpec,
    /// The FDL text emitted by the pre-processor (stage 3 output).
    pub fdl: String,
    /// The validated, executable process template (stage 4 output) —
    /// re-imported from the FDL, proving the textual hand-off works.
    pub process: ProcessDefinition,
    /// Non-fatal analyzer findings (stage 5): warnings and notes that
    /// did not block the pipeline. Error-severity findings abort with
    /// [`PipelineError::Analysis`] instead.
    pub diagnostics: Vec<Diagnostic>,
    /// The compiled executable template (stage 6, then optimized) —
    /// Figure 5's final step, "this internal format is translated
    /// into an executable FlowMark process": interned activity ids,
    /// indexed connector adjacency, constant-folded condition plans,
    /// with statically decided connectors rewritten and statically
    /// dead activities pruned by [`wfms_engine::optimize`]. Hand it
    /// to [`wfms_engine::Engine::register_compiled`] to run instances
    /// without recompiling (and without re-optimizing).
    pub template: Arc<CompiledProcess>,
    /// What the template optimizer did (stage 7): condition plans
    /// fixed to constants, activities pruned, data connectors
    /// dropped. All zeros for templates with nothing to decide.
    pub opt_stats: wfms_engine::OptStats,
    /// Wall-clock nanoseconds spent in each pipeline stage, in stage
    /// order: parse, model rules, translate+emit, import+analyze
    /// (followed by one `analyze:<pass>` entry per analyzer pass,
    /// breaking the analysis time down), compile, optimize.
    /// Observability for the pre-processor itself — `fmtm check`
    /// prints these alongside the stage report.
    pub stage_nanos: Vec<(&'static str, u128)>,
}

/// Stages 4–5 on FDL text: imports the definition (syntax + semantic
/// validation, with source provenance) and runs the `wfms-analyzer`
/// battery over it. Error-severity findings reject the process; the
/// surviving warnings and notes are returned alongside it.
///
/// This is the verification gate `run_pipeline` applies to its own
/// translator output; it is public so externally produced FDL can be
/// held to the same standard.
pub fn import_and_analyze(
    fdl: &str,
) -> Result<(ProcessDefinition, Vec<Diagnostic>), PipelineError> {
    import_and_analyze_timed(fdl).map(|(process, diags, _)| (process, diags))
}

/// Wall-clock nanoseconds spent per analyzer pass, by pass name (see
/// [`Analyzer::check_process_timed`]).
pub type PassNanos = Vec<(&'static str, u128)>;

/// [`import_and_analyze`], additionally returning the wall-clock
/// nanoseconds each analyzer pass spent.
pub fn import_and_analyze_timed(
    fdl: &str,
) -> Result<(ProcessDefinition, Vec<Diagnostic>, PassNanos), PipelineError> {
    let (process, provenance) =
        wfms_fdl::parse_with_provenance(fdl).map_err(|e| PipelineError::FdlImport(vec![e]))?;
    let semantic: Vec<FdlError> = wfms_model::validate(&process)
        .iter()
        .map(|e| FdlError::new(provenance.locate(e).unwrap_or_default(), e.to_string()))
        .collect();
    if !semantic.is_empty() {
        return Err(PipelineError::FdlImport(semantic));
    }

    // Stage 5: static analysis over the imported process.
    let (diags, pass_nanos) = Analyzer::new().check_process_timed(&process, Some(&provenance));
    let (errors, rest): (Vec<Diagnostic>, Vec<Diagnostic>) = diags
        .into_iter()
        .partition(|d| d.severity == Severity::Error);
    if !errors.is_empty() {
        return Err(PipelineError::Analysis(errors));
    }
    Ok((process, rest, pass_nanos))
}

/// Runs the full pipeline on a specification text.
///
/// ```
/// let out = exotica::run_pipeline(r#"
///     SAGA order
///       STEP Reserve PROGRAM "reserve" COMPENSATION "release"
///       STEP Charge  PROGRAM "charge"  COMPENSATION "refund"
///     END
/// "#).unwrap();
/// assert_eq!(out.spec.name(), "order");
/// assert!(out.fdl.starts_with("PROCESS order"));
/// assert_eq!(out.process.total_activities(), 2 + 2 + 3);
/// ```
pub fn run_pipeline(spec_text: &str) -> Result<PipelineOutput, PipelineError> {
    let mut stage_nanos: Vec<(&'static str, u128)> = Vec::with_capacity(5);

    // Stage 1: parse the user specification.
    let t0 = std::time::Instant::now();
    let spec = parse_spec(spec_text).map_err(PipelineError::SpecSyntax)?;
    stage_nanos.push(("parse", t0.elapsed().as_nanos()));

    // Stage 2: model-rule checking (also re-run inside the
    // translators; surfaced here as its own stage for the taxonomy).
    let t0 = std::time::Instant::now();
    let rule_errors = match &spec {
        AtmSpec::Saga(s) => atm::check_saga(s),
        AtmSpec::Flexible(x) => atm::check_flex(x),
    };
    if !rule_errors.is_empty() {
        return Err(PipelineError::ModelRules(rule_errors));
    }
    stage_nanos.push(("model-rules", t0.elapsed().as_nanos()));

    // Stage 3: translate to a workflow process and emit FDL.
    let t0 = std::time::Instant::now();
    let translated = match &spec {
        AtmSpec::Saga(s) => translate_saga(s),
        AtmSpec::Flexible(x) => translate_flex(x),
    }
    .map_err(PipelineError::Translation)?;
    let fdl = wfms_fdl::emit(&translated);
    stage_nanos.push(("translate", t0.elapsed().as_nanos()));

    // Stages 4–5: import the FDL (syntax + semantic validation) and
    // statically analyse it, yielding the executable template.
    let t0 = std::time::Instant::now();
    let (process, diagnostics, pass_nanos) = import_and_analyze_timed(&fdl)?;
    debug_assert_eq!(process, translated, "FDL round trip must be lossless");
    stage_nanos.push(("import-analyze", t0.elapsed().as_nanos()));
    for (pass, nanos) in pass_nanos {
        stage_nanos.push((analyze_stage_label(pass), nanos));
    }

    // Stage 6: lower the validated process into the engine's compiled
    // executable template.
    let t0 = std::time::Instant::now();
    let template = CompiledProcess::compile(process.clone());
    stage_nanos.push(("compile", t0.elapsed().as_nanos()));

    // Stage 7: analysis-driven template optimization — decided
    // condition plans become constants, statically dead activities
    // and their data connectors are pruned. The same rewrite
    // `Engine::register` applies; running it here means
    // `register_compiled` callers (fmtm run/top/serve) get the
    // optimized template too.
    let t0 = std::time::Instant::now();
    let (template, opt_stats) = wfms_engine::optimize::optimize(&template);
    let template = Arc::new(template);
    stage_nanos.push(("optimize", t0.elapsed().as_nanos()));

    Ok(PipelineOutput {
        spec,
        fdl,
        process,
        diagnostics,
        template,
        opt_stats,
        stage_nanos,
    })
}

/// The `stage_nanos` label for one analyzer pass. The names are the
/// analyzer battery's [`Lint::name`](wfms_analyzer::Lint::name)s,
/// prefixed so the per-pass breakdown sorts with its parent stage.
fn analyze_stage_label(pass: &'static str) -> &'static str {
    match pass {
        "model" => "analyze:model",
        "graph" => "analyze:graph",
        "conditions" => "analyze:conditions",
        "dataflow" => "analyze:dataflow",
        "liveness" => "analyze:liveness",
        "constprop" => "analyze:constprop",
        "deadline" => "analyze:deadline",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAGA_SRC: &str = r#"
        SAGA trip
          STEP T1 PROGRAM "do_S1" COMPENSATION "undo_S1"
          STEP T2 PROGRAM "do_S2" COMPENSATION "undo_S2"
        END
    "#;

    #[test]
    fn saga_pipeline_produces_executable_template() {
        let out = run_pipeline(SAGA_SRC).unwrap();
        assert_eq!(out.spec.name(), "trip");
        assert!(out.fdl.contains("PROCESS trip"));
        assert!(out.fdl.contains("BLOCK Forward"));
        assert!(out.fdl.contains("BLOCK Compensation"));
        assert_eq!(out.process.name, "trip");
        assert!(wfms_model::validate(&out.process).is_empty());
        // Stage 6: the compiled template is over the same definition.
        assert_eq!(out.template.name(), "trip");
        assert_eq!(*out.template.def, out.process);
        assert_eq!(
            out.template.root.len(),
            out.process.activities.len(),
            "root scope compiles one slot per declared activity"
        );
    }

    #[test]
    fn flexible_pipeline_runs_figure3() {
        let src = crate::specfmt::emit_spec(&AtmSpec::Flexible(atm::fixtures::figure3_spec()));
        let out = run_pipeline(&src).unwrap();
        assert!(out.fdl.contains("BLOCK Blk_T5_T6"));
        assert!(out.process.has_activity("T8"));
    }

    #[test]
    fn pipeline_reports_per_stage_timings() {
        let out = run_pipeline(SAGA_SRC).unwrap();
        let stages: Vec<&str> = out.stage_nanos.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            stages,
            [
                "parse",
                "model-rules",
                "translate",
                "import-analyze",
                "analyze:model",
                "analyze:graph",
                "analyze:conditions",
                "analyze:dataflow",
                "analyze:liveness",
                "analyze:constprop",
                "analyze:deadline",
                "compile",
                "optimize",
            ]
        );
        // The per-pass breakdown is bounded by its parent stage.
        let import = out
            .stage_nanos
            .iter()
            .find(|(s, _)| *s == "import-analyze")
            .unwrap()
            .1;
        let passes: u128 = out
            .stage_nanos
            .iter()
            .filter(|(s, _)| s.starts_with("analyze:"))
            .map(|(_, n)| n)
            .sum();
        assert!(passes <= import, "passes {passes} > stage {import}");
    }

    #[test]
    fn pipeline_template_is_optimized() {
        // Analyzer-clean translations leave the optimizer nothing to
        // do: no WA103/WA104/WA105 findings means no decidable plans
        // and no dead activities. The two share one analysis
        // (`wfms_engine::optimize::analyze_scope`), so this is a
        // consistency check, not a coincidence.
        let out = run_pipeline(SAGA_SRC).unwrap();
        assert!(out.diagnostics.is_empty());
        assert!(out.opt_stats.is_noop(), "{:?}", out.opt_stats);
        // And the shipped template is a fixpoint either way:
        // re-optimizing finds nothing.
        let (_, again) = wfms_engine::optimize::optimize(&out.template);
        assert!(again.is_noop(), "second pass found work: {again:?}");
    }

    #[test]
    fn stage1_errors() {
        let err = run_pipeline("SAGA\nEND").unwrap_err();
        assert!(matches!(err, PipelineError::SpecSyntax(_)));
        assert!(err.to_string().contains("stage 1"));
    }

    #[test]
    fn stage2_errors() {
        // A saga step without compensation violates the saga rules.
        let err = run_pipeline("SAGA s\nSTEP A PROGRAM \"p\"\nEND").unwrap_err();
        assert!(matches!(err, PipelineError::ModelRules(_)));
        assert!(err.to_string().contains("stage 2"));
    }

    #[test]
    fn translations_are_analyzer_clean() {
        let out = run_pipeline(SAGA_SRC).unwrap();
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        let src = crate::specfmt::emit_spec(&AtmSpec::Flexible(atm::fixtures::figure3_spec()));
        let out = run_pipeline(&src).unwrap();
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn stage5_rejects_unreachable_compensation_block() {
        // Break the translator's own output: make the Forward →
        // Compensation trigger statically false. The compensation
        // block is then dead code and the import gate must refuse it,
        // naming the block and its FDL position.
        let out = run_pipeline(SAGA_SRC).unwrap();
        let needle = "WHEN \"(RC = 0)\"";
        assert!(out.fdl.contains(needle), "fdl:\n{}", out.fdl);
        let doctored = out.fdl.replace(needle, "WHEN \"(1 = 0)\"");
        let err = import_and_analyze(&doctored).unwrap_err();
        let PipelineError::Analysis(diags) = &err else {
            panic!("expected analysis rejection, got {err}");
        };
        let d = diags
            .iter()
            .find(|d| d.code == "WA035")
            .unwrap_or_else(|| panic!("expected WA035 in {diags:?}"));
        assert_eq!(d.element.as_deref(), Some("Compensation"));
        assert!(d.pos.is_some_and(|p| p.line > 1), "position: {:?}", d.pos);
        assert!(err.to_string().contains("stage 5"));
    }

    #[test]
    fn stage5_rejects_read_before_write() {
        let fdl = "PROCESS p\n  ACTIVITY A PROGRAM \"a\" END\n  ACTIVITY B PROGRAM \"b\" INPUT ( amount: INT ) END\n  CONTROL FROM A TO B\nEND\n";
        let err = import_and_analyze(fdl).unwrap_err();
        let PipelineError::Analysis(diags) = &err else {
            panic!("expected analysis rejection, got {err}");
        };
        let d = diags
            .iter()
            .find(|d| d.code == "WA041")
            .unwrap_or_else(|| panic!("expected WA041 in {diags:?}"));
        assert_eq!(d.element.as_deref(), Some("B"));
        assert_eq!(d.pos.map(|p| p.line), Some(3));
    }

    #[test]
    fn stage5_passes_warnings_through() {
        // A dead write is a warning: the process ships, with the
        // finding attached to the output.
        let fdl = "PROCESS p\n  ACTIVITY A PROGRAM \"a\" OUTPUT ( unused: INT ) END\nEND\n";
        let (process, diags) = import_and_analyze(fdl).unwrap();
        assert_eq!(process.name, "p");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "WA043");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn stage3_errors() {
        // Well-formed flexible transaction outside the static
        // translation class: a step in two continuations.
        let src = r#"
            FLEXIBLE f
              STEP A PROGRAM "p" COMPENSATION "c"
              STEP B PROGRAM "p" RETRIABLE
              STEP C PROGRAM "p" COMPENSATION "c"
              PATH A B
              PATH C B
            END
        "#;
        let err = run_pipeline(src).unwrap_err();
        assert!(matches!(err, PipelineError::Translation(_)), "{err}");
        assert!(err.to_string().contains("stage 3"));
    }
}
