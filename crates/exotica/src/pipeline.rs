//! The end-to-end Figure 5 pipeline.
//!
//! "The user creates a specification that contains the advanced
//! transaction model to be used and the set of transactions to be
//! executed. The pre-processor checks that the user specification
//! meets the format of the advanced transaction model specified. It
//! then takes the user specification and converts it into a FlowMark
//! process in FDL format. … This FDL output is then imported into
//! FlowMark and an internal representation of the process is created.
//! During this conversion the import module checks for inconsistencies
//! in the syntax of the process definition. Finally this internal
//! format is translated into an executable FlowMark process."
//!
//! [`run_pipeline`] performs all stages and reports failures with a
//! stage-tagged error taxonomy; [`PipelineOutput`] carries the
//! artifacts of every stage so callers (examples, benchmarks, tests)
//! can inspect each one.

use crate::flexible::translate_flex;
use crate::saga::translate_saga;
use crate::specfmt::{parse_spec, ParsedSpec, SpecSyntaxError};
use crate::TranslateError;
use atm::WellFormedError;
use wfms_fdl::FdlError;
use wfms_model::ProcessDefinition;

/// Re-export under the name used throughout the documentation.
pub type AtmSpec = ParsedSpec;

/// Failure at one pipeline stage.
#[derive(Debug)]
pub enum PipelineError {
    /// Stage 1: the specification text does not parse.
    SpecSyntax(SpecSyntaxError),
    /// Stage 2: the specification violates its model's rules
    /// ("the pre-processor checks that the user specification meets
    /// the format of the advanced transaction model specified").
    ModelRules(Vec<WellFormedError>),
    /// Stage 3: the translation to a workflow process failed.
    Translation(TranslateError),
    /// Stage 4: the emitted FDL failed to re-import — a translator or
    /// emitter bug, surfaced for completeness of the taxonomy.
    FdlImport(Vec<FdlError>),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::SpecSyntax(e) => write!(f, "[stage 1: spec syntax] {e}"),
            PipelineError::ModelRules(errs) => {
                writeln!(f, "[stage 2: model rules]")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            PipelineError::Translation(e) => write!(f, "[stage 3: translation] {e}"),
            PipelineError::FdlImport(errs) => {
                writeln!(f, "[stage 4: FDL import]")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Artifacts of a successful pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The parsed specification (stage 1).
    pub spec: AtmSpec,
    /// The FDL text emitted by the pre-processor (stage 3 output).
    pub fdl: String,
    /// The validated, executable process template (stage 4 output) —
    /// re-imported from the FDL, proving the textual hand-off works.
    pub process: ProcessDefinition,
}

/// Runs the full pipeline on a specification text.
///
/// ```
/// let out = exotica::run_pipeline(r#"
///     SAGA order
///       STEP Reserve PROGRAM "reserve" COMPENSATION "release"
///       STEP Charge  PROGRAM "charge"  COMPENSATION "refund"
///     END
/// "#).unwrap();
/// assert_eq!(out.spec.name(), "order");
/// assert!(out.fdl.starts_with("PROCESS order"));
/// assert_eq!(out.process.total_activities(), 2 + 2 + 3);
/// ```
pub fn run_pipeline(spec_text: &str) -> Result<PipelineOutput, PipelineError> {
    // Stage 1: parse the user specification.
    let spec = parse_spec(spec_text).map_err(PipelineError::SpecSyntax)?;

    // Stage 2: model-rule checking (also re-run inside the
    // translators; surfaced here as its own stage for the taxonomy).
    let rule_errors = match &spec {
        AtmSpec::Saga(s) => atm::check_saga(s),
        AtmSpec::Flexible(x) => atm::check_flex(x),
    };
    if !rule_errors.is_empty() {
        return Err(PipelineError::ModelRules(rule_errors));
    }

    // Stage 3: translate to a workflow process and emit FDL.
    let translated = match &spec {
        AtmSpec::Saga(s) => translate_saga(s),
        AtmSpec::Flexible(x) => translate_flex(x),
    }
    .map_err(PipelineError::Translation)?;
    let fdl = wfms_fdl::emit(&translated);

    // Stage 4: import the FDL (syntax + semantic validation), yielding
    // the executable template.
    let process = wfms_fdl::parse_and_validate(&fdl).map_err(PipelineError::FdlImport)?;
    debug_assert_eq!(process, translated, "FDL round trip must be lossless");

    Ok(PipelineOutput { spec, fdl, process })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAGA_SRC: &str = r#"
        SAGA trip
          STEP T1 PROGRAM "do_S1" COMPENSATION "undo_S1"
          STEP T2 PROGRAM "do_S2" COMPENSATION "undo_S2"
        END
    "#;

    #[test]
    fn saga_pipeline_produces_executable_template() {
        let out = run_pipeline(SAGA_SRC).unwrap();
        assert_eq!(out.spec.name(), "trip");
        assert!(out.fdl.contains("PROCESS trip"));
        assert!(out.fdl.contains("BLOCK Forward"));
        assert!(out.fdl.contains("BLOCK Compensation"));
        assert_eq!(out.process.name, "trip");
        assert!(wfms_model::validate(&out.process).is_empty());
    }

    #[test]
    fn flexible_pipeline_runs_figure3() {
        let src = crate::specfmt::emit_spec(&AtmSpec::Flexible(
            atm::fixtures::figure3_spec(),
        ));
        let out = run_pipeline(&src).unwrap();
        assert!(out.fdl.contains("BLOCK Blk_T5_T6"));
        assert!(out.process.has_activity("T8"));
    }

    #[test]
    fn stage1_errors() {
        let err = run_pipeline("SAGA\nEND").unwrap_err();
        assert!(matches!(err, PipelineError::SpecSyntax(_)));
        assert!(err.to_string().contains("stage 1"));
    }

    #[test]
    fn stage2_errors() {
        // A saga step without compensation violates the saga rules.
        let err = run_pipeline("SAGA s\nSTEP A PROGRAM \"p\"\nEND").unwrap_err();
        assert!(matches!(err, PipelineError::ModelRules(_)));
        assert!(err.to_string().contains("stage 2"));
    }

    #[test]
    fn stage3_errors() {
        // Well-formed flexible transaction outside the static
        // translation class: a step in two continuations.
        let src = r#"
            FLEXIBLE f
              STEP A PROGRAM "p" COMPENSATION "c"
              STEP B PROGRAM "p" RETRIABLE
              STEP C PROGRAM "p" COMPENSATION "c"
              PATH A B
              PATH C B
            END
        "#;
        let err = run_pipeline(src).unwrap_err();
        assert!(matches!(err, PipelineError::Translation(_)), "{err}");
        assert!(err.to_string().contains("stage 3"));
    }
}
