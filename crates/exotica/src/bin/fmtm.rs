//! `fmtm` — the Exotica/FMTM pre-processor as a command-line tool.
//!
//! ```text
//! fmtm translate <spec-file>            emit the generated FDL
//! fmtm dot <spec-file>                  emit Graphviz DOT of the process
//! fmtm check <spec-file>                run all pipeline stages, report diagnostics
//! fmtm lint <file> [options]            static analysis of an FDL or ATM spec file
//! fmtm lint --explain CODE              describe one WAxxx analyzer code
//! fmtm run <file> [options]             execute a spec's translation or an FDL process
//! fmtm top <file> [options]             run with a live metrics display
//! fmtm crashtest <spec-file> [options]  crash-point sweep of the translated process
//! fmtm serve <spec-file>... [options]   long-lived workflow service (HTTP/1.1 JSON)
//! fmtm deploy <spec-file> [options]     register a new template version into a
//!                                       running fmtm serve (POST /admin/deploy)
//! fmtm load [options]                   load generator / client for fmtm serve
//!
//! lint options:
//!   --format json                       machine-readable output
//!   --allow CODE                        suppress a WAxxx code (repeatable)
//!   --explain CODE                      print the prose explanation of an
//!                                       analyzer code and exit (no file)
//!
//! run options:
//!   --fail LABEL=always                 subtransaction LABEL always aborts
//!   --fail LABEL=first:N                LABEL aborts its first N attempts
//!   --fail LABEL=attempts:1,3           LABEL aborts exactly attempts 1 and 3
//!   --seed N                            injector seed (default 0)
//!   --trace                             print the execution trace
//!   --audit                             print the full audit trail
//!   --instances M                       start M instances (default 1)
//!   --parallel N                        drive instances across N worker
//!                                       threads and report instances/sec
//!                                       (clamped to the machine's available
//!                                       parallelism: extra workers add
//!                                       overhead, never throughput)
//!   --metrics-out FILE                  enable the observability layer and
//!                                       write the metrics snapshot to FILE
//!                                       after the run (Prometheus text when
//!                                       FILE ends in .prom, JSON otherwise)
//!
//! top options:
//!   --instances M                       start M instances (default 8)
//!   --every K                           print a frame every K navigation
//!                                       steps (default 25)
//!   --fail/--seed                       as for run
//!
//! crashtest options:
//!   --fail LABEL=PLAN                   as for run; applied to every scenario
//!   --seed N                            injector seed (default 0)
//!   --instances M                       start M instances per scenario
//!   --report PATH                       write the sweep reports as JSON
//!   --no-torn-tail                      skip the torn half-written event
//!   --quick                             sweep only the scenario given by
//!                                       --fail/--seed; the default also
//!                                       sweeps one always-fails variant
//!                                       per step (scenarios whose
//!                                       *reference* run does not terminate,
//!                                       e.g. a retriable step forced to
//!                                       always fail, are skipped)
//!
//! serve options:
//!   --shards N                          shard count: N engines, journals and
//!                                       worker threads (default 1; counts
//!                                       beyond the machine's available
//!                                       parallelism buy nothing — each shard
//!                                       runs its own worker thread)
//!   --port P                            TCP port (default 7313; 0 = ephemeral)
//!   --addr IP                           bind address (default 127.0.0.1)
//!   --data DIR                          data directory for server.meta.json and
//!                                       the shard journals (default fmtm-data)
//!   --queue H                           per-shard admission high-water mark
//!                                       (default 1024); submits beyond it are
//!                                       answered 429 Overloaded
//!   --batch B                           max submissions per group commit
//!                                       (default 64)
//!   --durability POLICY                 per-event | sync | batched:N
//!                                       (default batched:64)
//!   --seed N                            substrate seed (default 0)
//!   --person NAME=role[,role...]        add a person to the organization
//!                                       (repeatable; for specs with manual
//!                                       activities)
//!   --throttle-ms T                     delay each submission T ms in the
//!                                       shard worker (drills only: makes
//!                                       Overloaded deterministic)
//!   --reactors N                        event-loop threads (default 0 = one
//!                                       per core, capped by the shard count)
//!   --tenants FILE                      enable multi-tenancy from a JSON
//!                                       tenants file ({"tenants":[{"name":..,
//!                                       "key":..,"weight":W,"max_inflight":Q}]}):
//!                                       Bearer API-key auth on the data plane,
//!                                       per-tenant inflight quotas and
//!                                       weighted-fair dequeue; the tenant-bit
//!                                       id layout is pinned in server.meta.json
//!                                       and the file is hot-reloadable via
//!                                       POST /admin/reload-tenants
//!
//! deploy options:
//!   --url URL                           target, e.g. http://127.0.0.1:7313
//!                                       (required)
//!   --policy drain-old|migrate          what happens to running instances of
//!                                       the process: keep their pinned version
//!                                       (default) or migrate those parked at a
//!                                       scope boundary to the new one
//!
//! load options:
//!   --url URL                           target, e.g. http://127.0.0.1:7313
//!   --process NAME                      process to start (server default
//!                                       otherwise)
//!   --count N | --duration S            stop after N requests or S seconds
//!   --rps R                             pace requests at R/sec (unpaced
//!                                       otherwise)
//!   --open-loop                         with --rps: measure latency from each
//!                                       request's scheduled arrival and never
//!                                       reset the schedule when the server
//!                                       lags (no coordinated omission)
//!   --curve R1,R2,...                   sweep these offered rates open-loop,
//!                                       --duration seconds each (default 5),
//!                                       and print latency-under-load per rate
//!   --connections C                     concurrent connections (default 4)
//!   --ids-out FILE                      write accepted instance ids, one per
//!                                       line
//!   --verify FILE                       poll the ids in FILE until every one
//!                                       is finished (exit 3 on timeout)
//!   --verify-timeout S                  verification deadline (default 60)
//!   --wait-ready S                      poll /healthz up to S seconds first
//!   --api-key KEY                       send `Authorization: Bearer KEY` with
//!                                       every request (tenancy-enabled servers)
//!   --drain                             POST /admin/drain when done
//!   --stop                              POST /admin/stop when done
//! ```
//!
//! Programs are auto-provisioned: each step's forward program writes
//! `<step> = 1` on a local database (round-robin over three sites,
//! mirroring the heterogeneous multidatabase), its compensation writes
//! `<step> = -1`; forward programs consult the failure injector under
//! the step name.

use exotica::{provision, steps_of, steps_of_all};
use std::process::ExitCode;
use std::sync::Arc;
use txn_substrate::{DurabilityPolicy, FailurePlan};
use wfms_engine::{audit, Engine, EngineConfig, InstanceStatus, Observer, OrgModel};
use wfms_model::Container;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("translate") => translate(&args[1..]),
        Some("dot") => dot(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("crashtest") => crashtest(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("deploy") => deploy_cmd(&args[1..]),
        Some("load") => load_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: fmtm <translate|dot|check|lint|run|top|crashtest|serve|deploy|load> [options]"
            );
            eprintln!("see `crates/exotica/src/bin/fmtm.rs` for option details");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("fmtm: cannot read {path:?}: {e}");
        ExitCode::FAILURE
    })
}

/// What `fmtm run`/`fmtm top` execute: the optimized template plus the
/// auto-provision step list, obtained from either an ATM spec (the
/// full pipeline) or a plain FDL process (import, analyze, compile,
/// optimize — the pipeline's stages 4–7). `spec` is `None` for FDL
/// sources, which have no saga/flexible commit semantics to report.
struct Prepared {
    spec: Option<exotica::ParsedSpec>,
    name: String,
    template: Arc<wfms_engine::CompiledProcess>,
    steps: Vec<(String, String, Option<String>)>,
}

impl Prepared {
    fn kind(&self) -> &'static str {
        match &self.spec {
            Some(exotica::ParsedSpec::Saga(_)) => "saga",
            Some(exotica::ParsedSpec::Flexible(_)) => "flexible transaction",
            None => "process",
        }
    }
}

fn prepare(src: &str) -> Result<Prepared, String> {
    match exotica::run_pipeline(src) {
        Ok(out) => Ok(Prepared {
            name: out.process.name.clone(),
            steps: steps_of(&out.spec),
            template: out.template,
            spec: Some(out.spec),
        }),
        // Not a spec: decide by parsing, as `fmtm lint` does. A text
        // that parses as FDL gets the import gate's own verdict; one
        // that parses as neither reports both parsers' complaints.
        Err(exotica::PipelineError::SpecSyntax(spec_err)) => {
            if let Err(fdl_err) = wfms_fdl::parse_with_provenance(src) {
                return Err(format!(
                    "source parses as neither an ATM spec nor FDL\n  as spec: {spec_err}\n  as FDL: {fdl_err}"
                ));
            }
            let (process, _warnings) =
                exotica::import_and_analyze(src).map_err(|e| e.to_string())?;
            let steps = exotica::steps_of_process(&process);
            let name = process.name.clone();
            let compiled = wfms_engine::CompiledProcess::compile(process);
            let (compiled, _stats) = wfms_engine::optimize::optimize(&compiled);
            Ok(Prepared {
                spec: None,
                name,
                template: Arc::new(compiled),
                steps,
            })
        }
        Err(e) => Err(e.to_string()),
    }
}

fn translate(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm translate: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    match exotica::run_pipeline(&src) {
        Ok(out) => {
            print!("{}", out.fdl);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fmtm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dot(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm dot: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    match exotica::run_pipeline(&src) {
        Ok(out) => {
            print!("{}", wfms_model::to_dot(&out.process));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fmtm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm check: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    match exotica::run_pipeline(&src) {
        Ok(out) => {
            println!(
                "OK: {} {:?} -> process with {} activities ({} incl. blocks), {} connectors, {} bytes of FDL",
                match &out.spec {
                    exotica::ParsedSpec::Saga(_) => "saga",
                    exotica::ParsedSpec::Flexible(_) => "flexible transaction",
                },
                out.spec.name(),
                out.process.activities.len(),
                out.process.total_activities(),
                out.process.control.len(),
                out.fdl.len(),
            );
            let total: u128 = out.stage_nanos.iter().map(|(_, n)| n).sum();
            print!("stages ({:.1} ms):", total as f64 / 1e6);
            for (stage, nanos) in &out.stage_nanos {
                print!(" {stage}={:.0}us", *nanos as f64 / 1e3);
            }
            println!();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut allowed: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => json = true,
                    Some("human") => json = false,
                    Some(other) => {
                        eprintln!("fmtm lint: --format needs human or json, got {other:?}");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("fmtm lint: --format needs human or json");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--allow" => {
                let Some(code) = args.get(i + 1) else {
                    eprintln!("fmtm lint: --allow needs a WAxxx code");
                    return ExitCode::from(2);
                };
                allowed.push(code.clone());
                i += 2;
            }
            "--explain" => {
                let Some(code) = args.get(i + 1) else {
                    eprintln!("fmtm lint: --explain needs a WAxxx code");
                    return ExitCode::from(2);
                };
                return match wfms_analyzer::explain(code) {
                    Some(text) => {
                        println!("{code}: {text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("fmtm lint: unknown analyzer code {code:?}");
                        ExitCode::from(2)
                    }
                };
            }
            other if other.starts_with('-') => {
                eprintln!("fmtm lint: unknown option {other:?}");
                return ExitCode::from(2);
            }
            other => {
                if path.replace(other).is_some() {
                    eprintln!("fmtm lint: expected exactly one file");
                    return ExitCode::from(2);
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("fmtm lint: missing file (FDL process or ATM spec)");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let diags = match exotica::lint_source(&src, &allowed) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("fmtm lint: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", wfms_analyzer::render_json(&diags));
    } else {
        for d in &diags {
            println!("{path}: {}", d.render());
        }
        if diags.is_empty() {
            println!("{path}: clean");
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_plan(text: &str) -> Option<FailurePlan> {
    if text == "always" {
        return Some(FailurePlan::Always);
    }
    if let Some(n) = text.strip_prefix("first:") {
        return n.parse().ok().map(FailurePlan::FirstN);
    }
    if let Some(list) = text.strip_prefix("attempts:") {
        let attempts: Option<std::collections::BTreeSet<u32>> =
            list.split(',').map(|p| p.trim().parse().ok()).collect();
        return attempts.map(FailurePlan::OnAttempts);
    }
    None
}

fn run(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm run: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let mut plans: Vec<(String, FailurePlan)> = Vec::new();
    let mut seed = 0u64;
    let mut trace = false;
    let mut audit_flag = false;
    let mut instances = 1usize;
    let mut parallel = 0usize;
    let mut metrics_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fail" => {
                let Some(kv) = args.get(i + 1) else {
                    eprintln!("fmtm run: --fail needs LABEL=PLAN");
                    return ExitCode::from(2);
                };
                let Some((label, plan_text)) = kv.split_once('=') else {
                    eprintln!("fmtm run: --fail needs LABEL=PLAN, got {kv:?}");
                    return ExitCode::from(2);
                };
                let Some(plan) = parse_plan(plan_text) else {
                    eprintln!(
                        "fmtm run: unknown plan {plan_text:?} (use always, first:N, attempts:..)"
                    );
                    return ExitCode::from(2);
                };
                plans.push((label.to_owned(), plan));
                i += 2;
            }
            "--seed" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm run: --seed needs a number");
                    return ExitCode::from(2);
                };
                seed = n;
                i += 2;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            "--audit" => {
                audit_flag = true;
                i += 1;
            }
            "--instances" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm run: --instances needs a number");
                    return ExitCode::from(2);
                };
                instances = n;
                i += 2;
            }
            "--parallel" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm run: --parallel needs a worker count");
                    return ExitCode::from(2);
                };
                parallel = n;
                i += 2;
            }
            "--metrics-out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("fmtm run: --metrics-out needs a file path");
                    return ExitCode::from(2);
                };
                metrics_out = Some(p.clone());
                i += 2;
            }
            other => {
                eprintln!("fmtm run: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let out = match prepare(&src) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("fmtm: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Auto-provision the multidatabase and programs for the source.
    let steps = &out.steps;
    let (fed, registry) = provision(steps, seed, &plans);

    // The observability layer stays off (a disabled observer, one
    // branch per hook) unless a metrics snapshot was asked for.
    let engine = Engine::with_config(
        Arc::clone(&fed),
        registry,
        EngineConfig {
            observer: metrics_out.is_some().then(|| Arc::new(Observer::enabled())),
            ..EngineConfig::default()
        },
    );
    // The pipeline already validated and compiled the process
    // (stage 6); hand the executable template straight to the engine.
    engine.register_compiled(Arc::clone(&out.template));
    let ids: Vec<_> = (0..instances.max(1))
        .map(|_| {
            engine
                .start(&out.name, Container::empty())
                .expect("registered above")
        })
        .collect();
    let started = std::time::Instant::now();
    let run_result = if parallel > 1 {
        engine.run_all_parallel(parallel)
    } else {
        engine.run_all()
    };
    let elapsed = started.elapsed();
    if let Err(e) = run_result {
        eprintln!("fmtm: {e}");
        return ExitCode::FAILURE;
    }
    for &id in &ids {
        match engine.status(id).expect("instance exists") {
            InstanceStatus::Finished => {}
            other => {
                eprintln!("fmtm: instance {id} ended in state {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if parallel > 1 || instances > 1 {
        let secs = elapsed.as_secs_f64();
        // Report the worker count the engine actually used: the
        // scheduler clamps to available parallelism.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(usize::MAX);
        println!(
            "scheduler: {} instance(s), {} worker(s), {:.3} ms, {:.0} instances/sec",
            ids.len(),
            parallel.max(1).min(cores),
            secs * 1e3,
            if secs > 0.0 {
                ids.len() as f64 / secs
            } else {
                f64::INFINITY
            },
        );
    }

    let id = *ids.first().expect("at least one instance");
    // Translated specs publish their outcome in the `Committed`
    // output member; a plain FDL process has no such protocol — every
    // instance finishing is its success.
    let committed = out.spec.is_none()
        || ids.iter().all(|&i| {
            engine
                .output(i)
                .expect("instance exists")
                .get("Committed")
                .and_then(|v| v.as_int())
                == Some(1)
        });
    println!(
        "{} {:?}: {}",
        out.kind(),
        out.name,
        if out.spec.is_none() {
            "FINISHED"
        } else if committed {
            "COMMITTED"
        } else {
            "ABORTED (compensated)"
        }
    );
    print!("markers:");
    for (step, _, _) in steps {
        for site in fed.names() {
            if let Some(v) = fed.db(&site).unwrap().peek(step) {
                print!(" {step}={v}");
            }
        }
    }
    println!();
    if trace {
        println!("trace:");
        for t in audit::trace(&engine.journal_events(), id) {
            println!("  {t}");
        }
    }
    if audit_flag {
        println!("audit:");
        for line in audit::render(&engine.journal_events()) {
            println!("  {line}");
        }
    }
    if let Some(path) = metrics_out {
        let snapshot = engine.metrics();
        let body = if path.ends_with(".prom") {
            snapshot.to_prometheus()
        } else {
            snapshot.to_json()
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("fmtm run: cannot write metrics {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics: wrote {path}");
    }
    if committed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// `fmtm top` — a live, plain-text metrics display: starts M
/// instances with the observability layer enabled, drives them one
/// navigation step at a time round-robin, and prints a frame of the
/// busiest activities every K steps. No ANSI escapes — frames are
/// sequential, so the output pipes and diffs cleanly; the last frame
/// is the final snapshot.
fn top(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm top: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let mut plans: Vec<(String, FailurePlan)> = Vec::new();
    let mut seed = 0u64;
    let mut instances = 8usize;
    let mut every = 25usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fail" => {
                let Some(plan) = args
                    .get(i + 1)
                    .and_then(|kv| kv.split_once('='))
                    .and_then(|(l, p)| parse_plan(p).map(|plan| (l.to_owned(), plan)))
                else {
                    eprintln!("fmtm top: --fail needs LABEL=PLAN");
                    return ExitCode::from(2);
                };
                plans.push(plan);
                i += 2;
            }
            "--seed" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm top: --seed needs a number");
                    return ExitCode::from(2);
                };
                seed = n;
                i += 2;
            }
            "--instances" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm top: --instances needs a number");
                    return ExitCode::from(2);
                };
                instances = n;
                i += 2;
            }
            "--every" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("fmtm top: --every needs a step count");
                    return ExitCode::from(2);
                };
                every = n.max(1);
                i += 2;
            }
            other => {
                eprintln!("fmtm top: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let out = match prepare(&src) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("fmtm: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (fed, registry) = provision(&out.steps, seed, &plans);
    let engine = Engine::with_config(
        Arc::clone(&fed),
        registry,
        EngineConfig {
            observer: Some(Arc::new(Observer::enabled())),
            ..EngineConfig::default()
        },
    );
    engine.register_compiled(Arc::clone(&out.template));
    let ids: Vec<_> = (0..instances.max(1))
        .map(|_| {
            engine
                .start(&out.name, Container::empty())
                .expect("registered above")
        })
        .collect();

    // Round-robin one navigation step per instance per lap, a frame
    // every `every` steps.
    let mut steps_run = 0usize;
    let mut frame = 0usize;
    let mut active = true;
    while active {
        active = false;
        for &id in &ids {
            match engine.step(id) {
                Ok(true) => {
                    active = true;
                    steps_run += 1;
                    if steps_run.is_multiple_of(every) {
                        frame += 1;
                        print_frame(&engine, frame, steps_run);
                    }
                }
                Ok(false) => {}
                Err(e) => {
                    eprintln!("fmtm top: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    frame += 1;
    print_frame(&engine, frame, steps_run);
    println!(
        "done: {} instance(s), {} navigation step(s)",
        ids.len(),
        steps_run
    );
    ExitCode::SUCCESS
}

/// One `fmtm top` frame: instance states, engine counters and the
/// activities ranked by total time spent, busiest first.
fn print_frame(engine: &Engine, frame: usize, steps_run: usize) {
    let m = engine.metrics();
    println!("--- frame {frame} (after {steps_run} steps) ---");
    println!(
        "instances: {} running, {} finished, {} cancelled | work items: {} offered, {} claimed, {} closed",
        m.instances_running,
        m.instances_finished,
        m.instances_cancelled,
        m.items_offered,
        m.items_claimed,
        m.items_closed,
    );
    println!(
        "nav: {} executions, {} retries, {} reschedules, {} dead paths, {} compensations | journal: {} events",
        m.counters.get("nav.executions").copied().unwrap_or(0),
        m.counters.get("nav.retries").copied().unwrap_or(0),
        m.counters.get("nav.reschedules").copied().unwrap_or(0),
        m.counters.get("nav.dead_paths").copied().unwrap_or(0),
        m.counters.get("nav.compensations").copied().unwrap_or(0),
        m.journal_events,
    );
    let mut rows: Vec<_> = m.activities.iter().filter(|(_, s)| s.count > 0).collect();
    rows.sort_by(|a, b| {
        let ta = a.1.count as u128 * a.1.mean_ns as u128;
        let tb = b.1.count as u128 * b.1.mean_ns as u128;
        tb.cmp(&ta).then_with(|| a.0.cmp(b.0))
    });
    println!(
        "{:<28} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "activity", "count", "mean_ns", "p50_ns", "p99_ns", "max_ns"
    );
    for (label, s) in rows.iter().take(10) {
        println!(
            "{label:<28} {:>6} {:>10} {:>10} {:>10} {:>10}",
            s.count, s.mean_ns, s.p50_ns, s.p99_ns, s.max_ns
        );
    }
}

/// `fmtm crashtest` — the §3.3 forward-recovery oracle from the
/// command line: for every journal prefix of the translated process's
/// reference run, simulate an engine crash (optionally with a torn
/// half-written trailing event), recover, resume, and require the
/// outcome to be indistinguishable from the uncrashed run.
fn crashtest(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("fmtm crashtest: missing spec file");
        return ExitCode::from(2);
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let mut plans: Vec<(String, FailurePlan)> = Vec::new();
    let mut seed = 0u64;
    let mut instances = 1usize;
    let mut report_path: Option<String> = None;
    let mut torn_tail = true;
    let mut quick = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fail" => {
                let Some(kv) = args.get(i + 1) else {
                    eprintln!("fmtm crashtest: --fail needs LABEL=PLAN");
                    return ExitCode::from(2);
                };
                let Some((label, plan_text)) = kv.split_once('=') else {
                    eprintln!("fmtm crashtest: --fail needs LABEL=PLAN, got {kv:?}");
                    return ExitCode::from(2);
                };
                let Some(plan) = parse_plan(plan_text) else {
                    eprintln!(
                        "fmtm crashtest: unknown plan {plan_text:?} (use always, first:N, attempts:..)"
                    );
                    return ExitCode::from(2);
                };
                plans.push((label.to_owned(), plan));
                i += 2;
            }
            "--seed" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm crashtest: --seed needs a number");
                    return ExitCode::from(2);
                };
                seed = n;
                i += 2;
            }
            "--instances" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("fmtm crashtest: --instances needs a number");
                    return ExitCode::from(2);
                };
                instances = n;
                i += 2;
            }
            "--report" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("fmtm crashtest: --report needs a path");
                    return ExitCode::from(2);
                };
                report_path = Some(p.clone());
                i += 2;
            }
            "--no-torn-tail" => {
                torn_tail = false;
                i += 1;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("fmtm crashtest: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let out = match exotica::run_pipeline(&src) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("fmtm: {e}");
            return ExitCode::FAILURE;
        }
    };
    let steps = steps_of(&out.spec);

    // The scenario matrix: the run as configured on the command line,
    // plus (unless --quick) one variant per step where that step
    // always refuses — the sweep then covers both the forward path and
    // every compensation/alternative-path routing the spec can take.
    let mut scenarios: Vec<(String, Vec<(String, FailurePlan)>)> =
        vec![("as-configured".to_owned(), plans.clone())];
    if !quick {
        for (step, _, _) in &steps {
            let mut with = plans.clone();
            with.push((step.clone(), FailurePlan::Always));
            scenarios.push((format!("fail-{step}"), with));
        }
    }

    let starts: Vec<(String, Container)> = (0..instances.max(1))
        .map(|_| (out.process.name.clone(), Container::empty()))
        .collect();
    let cfg = wfms_engine::SweepConfig { torn_tail };
    let mut reports: Vec<wfms_engine::SweepReport> = Vec::new();
    let mut skipped = 0usize;
    for (label, scenario_plans) in &scenarios {
        let result = wfms_engine::crashtest::sweep(
            label,
            std::slice::from_ref(&out.process),
            &starts,
            &|| provision(&steps, seed, scenario_plans),
            &cfg,
        );
        match result {
            Ok(report) => {
                println!("{}", report.summary());
                reports.push(report);
            }
            Err(e) if label == "as-configured" => {
                eprintln!("fmtm crashtest: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                // An auto-generated variant whose reference run does
                // not terminate (e.g. a retriable step forced to
                // always fail) poses no recovery question: skip it.
                println!("{label}: skipped ({e})");
                skipped += 1;
            }
        }
    }

    let all_ok = reports.iter().all(|r| r.ok());
    let points: usize = reports.iter().map(|r| r.total_events + 1).sum();
    println!(
        "crashtest {:?}: {} scenario(s), {} crash point(s), {} skipped: {}",
        out.spec.name(),
        reports.len(),
        points,
        skipped,
        if all_ok { "OK" } else { "FAILED" }
    );
    // What recovery actually repaired across the sweep — a sweep that
    // passes with all-zero fix-ups exercised nothing.
    let mut fixups: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for r in &reports {
        for (name, v) in &r.recovery_fixups {
            *fixups.entry(name.as_str()).or_insert(0) += v;
        }
    }
    print!("recovery fix-ups:");
    if fixups.is_empty() {
        print!(" none");
    }
    for (name, v) in &fixups {
        print!(" {}={v}", name.strip_prefix("recovery.").unwrap_or(name));
    }
    println!();

    if let Some(p) = report_path {
        let body = format!(
            "[{}]",
            reports
                .iter()
                .map(|r| r.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        if let Err(e) = std::fs::write(&p, body) {
            eprintln!("fmtm crashtest: cannot write report {p:?}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// `fmtm serve` — the long-lived workflow service: translates the
/// given specs once, opens (or reopens) the sharded instance manager
/// on the data directory, and serves the HTTP/1.1 JSON protocol until
/// `POST /admin/stop`.
fn serve(args: &[String]) -> ExitCode {
    let mut spec_paths: Vec<String> = Vec::new();
    let mut shards = 1usize;
    let mut port = 7313u16;
    let mut addr = "127.0.0.1".to_owned();
    let mut data_dir = "fmtm-data".to_owned();
    let mut queue = 1024usize;
    let mut batch = 64usize;
    let mut durability = DurabilityPolicy::Batched { n: 64 };
    let mut seed = 0u64;
    let mut persons: Vec<(String, Vec<String>)> = Vec::new();
    let mut throttle_ms = 0u64;
    let mut reactors = 0usize;
    let mut tenants_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--shards" | "--port" | "--addr" | "--data" | "--queue" | "--batch"
            | "--durability" | "--seed" | "--person" | "--throttle-ms" | "--reactors"
            | "--tenants" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("fmtm serve: {flag} needs a value");
                    return ExitCode::from(2);
                };
                let ok = match flag {
                    "--shards" => value.parse().map(|n: usize| shards = n.max(1)).is_ok(),
                    "--port" => value.parse().map(|p| port = p).is_ok(),
                    "--addr" => {
                        addr = value.clone();
                        true
                    }
                    "--data" => {
                        data_dir = value.clone();
                        true
                    }
                    "--queue" => value.parse().map(|n: usize| queue = n.max(1)).is_ok(),
                    "--batch" => value.parse().map(|n: usize| batch = n.max(1)).is_ok(),
                    "--durability" => match parse_durability(value) {
                        Some(d) => {
                            durability = d;
                            true
                        }
                        None => false,
                    },
                    "--seed" => value.parse().map(|n| seed = n).is_ok(),
                    "--person" => match value.split_once('=') {
                        Some((name, roles)) => {
                            persons.push((
                                name.to_owned(),
                                roles.split(',').map(str::to_owned).collect(),
                            ));
                            true
                        }
                        None => false,
                    },
                    "--throttle-ms" => value.parse().map(|n| throttle_ms = n).is_ok(),
                    "--reactors" => value.parse().map(|n| reactors = n).is_ok(),
                    "--tenants" => {
                        tenants_path = Some(value.clone());
                        true
                    }
                    _ => unreachable!("outer match narrowed the flag"),
                };
                if !ok {
                    eprintln!("fmtm serve: bad value {value:?} for {flag}");
                    return ExitCode::from(2);
                }
                i += 2;
            }
            other if other.starts_with('-') => {
                eprintln!("fmtm serve: unknown option {other:?}");
                return ExitCode::from(2);
            }
            path => {
                spec_paths.push(path.to_owned());
                i += 1;
            }
        }
    }
    if spec_paths.is_empty() {
        eprintln!("fmtm serve: at least one spec file is required");
        return ExitCode::from(2);
    }

    let mut templates = Vec::new();
    let mut specs = Vec::new();
    let mut default_process = String::new();
    for path in &spec_paths {
        let src = match load(path) {
            Ok(s) => s,
            Err(c) => return c,
        };
        match exotica::run_pipeline(&src) {
            Ok(out) => {
                if default_process.is_empty() {
                    default_process = out.process.name.clone();
                }
                templates.push(out.process);
                specs.push(out.spec);
            }
            Err(e) => {
                eprintln!("fmtm serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut org = OrgModel::new();
    for (name, roles) in &persons {
        let roles: Vec<&str> = roles.iter().map(String::as_str).collect();
        org = org.person(name, &roles);
    }
    let steps = steps_of_all(&specs);

    let mut cfg = wfms_server::PoolConfig::new(&data_dir);
    cfg.shards = shards;
    cfg.queue_capacity = queue;
    cfg.batch_max = batch;
    cfg.durability = durability;
    cfg.org = org;
    cfg.templates = templates;
    cfg.throttle = (throttle_ms > 0).then(|| std::time::Duration::from_millis(throttle_ms));
    if let Some(path) = &tenants_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fmtm serve: tenants file {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match wfms_server::parse_tenants(&text) {
            Ok(specs) => cfg.tenants = specs,
            Err(e) => {
                eprintln!("fmtm serve: tenants file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let ntenants = cfg.tenants.len();

    let registry = Arc::new(wfms_observe::Registry::new());
    let provision_shard =
        move |shard: usize| provision(&steps, seed.wrapping_add(shard as u64), &[]);
    let pool = match wfms_server::ShardPool::open(cfg, registry, &provision_shard) {
        Ok(pool) => Arc::new(pool),
        Err(e) => {
            eprintln!("fmtm serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovered = pool.recovered_instances();

    let server_cfg = wfms_server::ServerConfig {
        addr,
        port,
        default_process,
        read_timeout: std::time::Duration::from_secs(30),
        reactors,
        tenants_path: tenants_path.as_ref().map(std::path::PathBuf::from),
    };
    let server = match wfms_server::Server::start(pool, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fmtm serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving {} template(s) at http://{} (shards {}, queue {}, batch {}, data {})",
        spec_paths.len(),
        server.local_addr(),
        shards,
        queue,
        batch,
        data_dir,
    );
    if recovered > 0 {
        println!("recovered and resumed {recovered} in-flight instance(s)");
    }
    if ntenants > 0 {
        println!("tenancy enabled: {ntenants} tenant(s), API-key auth on the data plane");
    }
    server.wait_stop();
    server.shutdown(true);
    println!("stopped (journals drained and checkpointed)");
    ExitCode::SUCCESS
}

fn parse_durability(text: &str) -> Option<DurabilityPolicy> {
    match text {
        "per-event" => Some(DurabilityPolicy::PerEvent),
        "sync" => Some(DurabilityPolicy::PerEventSync),
        _ => text
            .strip_prefix("batched:")
            .and_then(|n| n.parse().ok())
            .map(|n| DurabilityPolicy::Batched { n }),
    }
}

/// `fmtm deploy` — translates a spec and registers the resulting
/// process definition as a new template version in a running
/// `fmtm serve`, via `POST /admin/deploy`.
fn deploy_cmd(args: &[String]) -> ExitCode {
    let mut spec_path: Option<String> = None;
    let mut url: Option<String> = None;
    let mut policy = "drain-old".to_owned();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--url" | "--policy" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("fmtm deploy: {flag} needs a value");
                    return ExitCode::from(2);
                };
                match flag {
                    "--url" => url = Some(value.clone()),
                    _ => policy = value.clone(),
                }
                i += 2;
            }
            other if other.starts_with('-') => {
                eprintln!("fmtm deploy: unknown option {other:?}");
                return ExitCode::from(2);
            }
            path => {
                spec_path = Some(path.to_owned());
                i += 1;
            }
        }
    }
    let Some(path) = spec_path else {
        eprintln!("fmtm deploy: missing spec file");
        return ExitCode::from(2);
    };
    let Some(url) = url else {
        eprintln!("fmtm deploy: --url is required");
        return ExitCode::from(2);
    };
    let src = match load(&path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let out = match exotica::run_pipeline(&src) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("fmtm deploy: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let body = format!(
        "{{\"definition\":{},\"policy\":{}}}",
        serde_json::to_string(&out.process).expect("definition serializes"),
        serde_json::to_string(&policy).expect("policy serializes"),
    );
    match wfms_server::client::deploy(&url, &body) {
        Ok((200, answer)) => {
            match serde_json::from_str::<wfms_server::api::DeployResponse>(&answer) {
                Ok(resp) => {
                    println!(
                        "deployed {}@{} (now the default for new submits)",
                        resp.process, resp.version
                    );
                    println!(
                        "instances: {} migrated, {} draining on old versions, {} already current",
                        resp.migrated, resp.skipped, resp.already_current
                    );
                }
                Err(_) => println!("deployed: {answer}"),
            }
            ExitCode::SUCCESS
        }
        Ok((code, answer)) => {
            eprintln!("fmtm deploy: server answered {code}: {answer}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fmtm deploy: {url}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `fmtm load` — load generator and drill client for `fmtm serve`.
fn load_cmd(args: &[String]) -> ExitCode {
    let mut url: Option<String> = None;
    let mut process: Option<String> = None;
    let mut count: Option<u64> = None;
    let mut duration: Option<u64> = None;
    let mut rps: Option<f64> = None;
    let mut connections = 4usize;
    let mut ids_out: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut verify_timeout = 60u64;
    let mut wait_ready: Option<u64> = None;
    let mut do_drain = false;
    let mut do_stop = false;
    let mut open_loop = false;
    let mut curve: Option<Vec<f64>> = None;
    let mut api_key: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--drain" => {
                do_drain = true;
                i += 1;
            }
            "--stop" => {
                do_stop = true;
                i += 1;
            }
            "--open-loop" => {
                open_loop = true;
                i += 1;
            }
            "--url" | "--process" | "--count" | "--duration" | "--rps" | "--connections"
            | "--ids-out" | "--verify" | "--verify-timeout" | "--wait-ready" | "--curve"
            | "--api-key" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("fmtm load: {flag} needs a value");
                    return ExitCode::from(2);
                };
                let ok = match flag {
                    "--url" => {
                        url = Some(value.clone());
                        true
                    }
                    "--process" => {
                        process = Some(value.clone());
                        true
                    }
                    "--count" => value.parse().map(|n| count = Some(n)).is_ok(),
                    "--duration" => value.parse().map(|n| duration = Some(n)).is_ok(),
                    "--rps" => value.parse().map(|r| rps = Some(r)).is_ok(),
                    "--connections" => value.parse().map(|c: usize| connections = c.max(1)).is_ok(),
                    "--ids-out" => {
                        ids_out = Some(value.clone());
                        true
                    }
                    "--verify" => {
                        verify = Some(value.clone());
                        true
                    }
                    "--verify-timeout" => value.parse().map(|s| verify_timeout = s).is_ok(),
                    "--wait-ready" => value.parse().map(|s| wait_ready = Some(s)).is_ok(),
                    "--curve" => {
                        let rates: Result<Vec<f64>, _> =
                            value.split(',').map(str::trim).map(str::parse).collect();
                        rates.map(|r| curve = Some(r)).is_ok()
                    }
                    "--api-key" => {
                        api_key = Some(value.clone());
                        true
                    }
                    _ => unreachable!("outer match narrowed the flag"),
                };
                if !ok {
                    eprintln!("fmtm load: bad value {value:?} for {flag}");
                    return ExitCode::from(2);
                }
                i += 2;
            }
            other => {
                eprintln!("fmtm load: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(url) = url else {
        eprintln!("fmtm load: --url is required");
        return ExitCode::from(2);
    };
    if count.is_none()
        && duration.is_none()
        && verify.is_none()
        && curve.is_none()
        && !do_drain
        && !do_stop
        && wait_ready.is_none()
    {
        eprintln!(
            "fmtm load: nothing to do (give --count, --duration, --curve, --verify, --drain or --stop)"
        );
        return ExitCode::from(2);
    }
    if open_loop && rps.is_none() && curve.is_none() {
        eprintln!("fmtm load: --open-loop needs --rps (or use --curve)");
        return ExitCode::from(2);
    }

    if let Some(secs) = wait_ready {
        if !wfms_server::wait_ready(&url, std::time::Duration::from_secs(secs)) {
            eprintln!("fmtm load: server at {url} not ready after {secs}s");
            return ExitCode::FAILURE;
        }
    }

    if let Some(rates) = &curve {
        let base = wfms_server::LoadOptions {
            url: url.clone(),
            process: process.clone(),
            count: None,
            duration: None,
            rps: None,
            connections,
            collect_ids: false,
            open_loop: true,
            api_key: api_key.clone(),
        };
        let per_rate = std::time::Duration::from_secs(duration.unwrap_or(5));
        let points = wfms_server::latency_curve(&base, rates, per_rate);
        println!("curve: offered_rps achieved_rps sent accepted errors p50_us p95_us p99_us");
        for p in &points {
            println!(
                "curve: {:.0} {:.0} {} {} {} {} {} {}",
                p.offered_rps,
                p.achieved_rps,
                p.sent,
                p.accepted,
                p.errors,
                p.p50_us,
                p.p95_us,
                p.p99_us,
            );
        }
    } else if count.is_some() || duration.is_some() {
        let opts = wfms_server::LoadOptions {
            url: url.clone(),
            process,
            count,
            duration: duration.map(std::time::Duration::from_secs),
            rps,
            connections,
            collect_ids: ids_out.is_some(),
            open_loop,
            api_key: api_key.clone(),
        };
        let report = wfms_server::run_load(&opts);
        println!(
            "load: {} sent, {} accepted, {} overloaded, {} errors in {:.3}s",
            report.sent,
            report.accepted,
            report.overloaded,
            report.errors,
            report.elapsed.as_secs_f64(),
        );
        println!(
            "throughput: {:.0} accepted/sec | latency p50={}us p95={}us p99={}us",
            report.rps(),
            report.p50_us,
            report.p95_us,
            report.p99_us,
        );
        if let Some(path) = &ids_out {
            let body: String = report.ids.iter().map(|id| format!("{id}\n")).collect();
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("fmtm load: cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            println!("ids: wrote {} to {path}", report.ids.len());
        }
    }

    if let Some(path) = &verify {
        let text = match load(path) {
            Ok(t) => t,
            Err(c) => return c,
        };
        let ids: Vec<u64> = text.lines().filter_map(|l| l.trim().parse().ok()).collect();
        let failed = wfms_server::verify_ids_as(
            &url,
            api_key.as_deref(),
            &ids,
            std::time::Duration::from_secs(verify_timeout),
        );
        if failed.is_empty() {
            println!("verify: all {} instance(s) finished", ids.len());
        } else {
            eprintln!(
                "verify: {} of {} instance(s) did not finish:",
                failed.len(),
                ids.len()
            );
            for (id, state) in failed.iter().take(20) {
                eprintln!("  instance {id}: {state}");
            }
            return ExitCode::from(3);
        }
    }

    if do_drain && !wfms_server::client::drain(&url) {
        eprintln!("fmtm load: drain request failed");
        return ExitCode::FAILURE;
    }
    if do_stop && !wfms_server::client::stop(&url) {
        eprintln!("fmtm load: stop request failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
