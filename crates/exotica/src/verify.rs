//! Equivalence harness: native executor vs translated workflow.
//!
//! The paper's claim is *behavioural*: the workflow process obtained
//! from an ATM specification provides the same guarantees as the model
//! itself. This module operationalises the claim. A scenario is run
//! twice, in two completely separate worlds (fresh federation, fresh
//! program registry, same injector seed and the same scripted failure
//! plans):
//!
//! 1. natively, on [`atm::native`]'s executors;
//! 2. as the Exotica-translated workflow process on the engine.
//!
//! The report compares (a) the commit/abort outcome and (b) the final
//! state of **every** local database. Since compensations write
//! observable state (the fixtures write `-1` markers), state equality
//! subsumes "the same subtransactions were committed/compensated".

use crate::flexible::translate_flex;
use crate::saga::translate_saga;
use crate::TranslateError;
use atm::{FlexExecutor, FlexSpec, SagaExecutor, SagaSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry, Value};
use wfms_engine::{Engine, EngineError, InstanceStatus};
use wfms_model::Container;

/// Final state of a federation: database name → key → value.
pub type FederationState = BTreeMap<String, BTreeMap<String, Value>>;

/// Outcome of one equivalence comparison.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// Human-readable scenario label.
    pub scenario: String,
    /// Did the native execution commit?
    pub native_committed: bool,
    /// Did the workflow execution commit (process output `Committed`)?
    pub workflow_committed: bool,
    /// Final state of the native world.
    pub native_state: FederationState,
    /// Final state of the workflow world.
    pub workflow_state: FederationState,
}

impl EquivalenceReport {
    /// True if outcomes and final states agree.
    pub fn equivalent(&self) -> bool {
        self.native_committed == self.workflow_committed && self.native_state == self.workflow_state
    }

    /// A diff rendering for failed assertions.
    pub fn diff(&self) -> String {
        let mut out = String::new();
        if self.native_committed != self.workflow_committed {
            out.push_str(&format!(
                "outcome: native committed = {}, workflow committed = {}\n",
                self.native_committed, self.workflow_committed
            ));
        }
        for (db, kv) in &self.native_state {
            let other = self.workflow_state.get(db);
            for (k, v) in kv {
                let ov = other.and_then(|m| m.get(k));
                if ov != Some(v) {
                    out.push_str(&format!("{db}/{k}: native {v:?}, workflow {ov:?}\n"));
                }
            }
        }
        for (db, kv) in &self.workflow_state {
            let native = self.native_state.get(db);
            for (k, v) in kv {
                if native.and_then(|m| m.get(k)).is_none() {
                    out.push_str(&format!("{db}/{k}: only in workflow ({v:?})\n"));
                }
            }
        }
        out
    }
}

/// Errors from the harness itself (as opposed to inequivalence).
#[derive(Debug)]
pub enum VerifyError {
    /// Translation failed.
    Translate(TranslateError),
    /// The native executor rejected the specification.
    Native(String),
    /// The engine failed (registration, start or navigation).
    Engine(EngineError),
    /// The workflow instance did not finish (stuck on manual work or
    /// cancelled) — never expected for translated processes.
    NotFinished(InstanceStatus),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Translate(e) => write!(f, "translation failed: {e}"),
            VerifyError::Native(e) => write!(f, "native execution failed: {e}"),
            VerifyError::Engine(e) => write!(f, "engine failed: {e}"),
            VerifyError::NotFinished(s) => write!(f, "workflow did not finish: {s:?}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<EngineError> for VerifyError {
    fn from(e: EngineError) -> Self {
        VerifyError::Engine(e)
    }
}

/// How a world is provisioned: registers the forward and compensation
/// programs of the specification into the registry, creating the
/// databases they touch.
pub type Installer<'a> = &'a dyn Fn(&Arc<MultiDatabase>, &ProgramRegistry);

fn build_world(
    seed: u64,
    install: Installer<'_>,
    plans: &[(String, FailurePlan)],
) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(seed);
    let registry = Arc::new(ProgramRegistry::new());
    install(&fed, &registry);
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }
    (fed, registry)
}

fn federation_state(fed: &Arc<MultiDatabase>) -> FederationState {
    fed.names()
        .into_iter()
        .map(|name| {
            let snap = fed.db(&name).expect("listed db exists").snapshot();
            (name, snap.into_iter().collect())
        })
        .collect()
}

fn run_workflow(
    def: wfms_model::ProcessDefinition,
    fed: Arc<MultiDatabase>,
    registry: Arc<ProgramRegistry>,
) -> Result<bool, VerifyError> {
    let engine = Engine::new(fed, registry);
    engine.register(def.clone())?;
    let id = engine.start(&def.name, Container::empty())?;
    let status = engine.run_to_quiescence(id)?;
    if status != InstanceStatus::Finished {
        return Err(VerifyError::NotFinished(status));
    }
    let committed = engine
        .output(id)?
        .get("Committed")
        .and_then(|v| v.as_int())
        .unwrap_or(0)
        == 1;
    Ok(committed)
}

/// Compares the native saga executor with the Figure 2 workflow
/// translation under identical failure plans.
pub fn compare_saga(
    spec: &SagaSpec,
    install: Installer<'_>,
    plans: &[(String, FailurePlan)],
    seed: u64,
) -> Result<EquivalenceReport, VerifyError> {
    let def = translate_saga(spec).map_err(VerifyError::Translate)?;

    let (nfed, nreg) = build_world(seed, install, plans);
    let exec = SagaExecutor::new(Arc::clone(&nfed), nreg);
    let native = exec
        .run(spec)
        .map_err(|e| VerifyError::Native(format!("{e:?}")))?;

    let (wfed, wreg) = build_world(seed, install, plans);
    let workflow_committed = run_workflow(def, Arc::clone(&wfed), wreg)?;

    Ok(EquivalenceReport {
        scenario: format!("saga {:?} under {:?}", spec.name, plan_labels(plans)),
        native_committed: native.is_committed(),
        workflow_committed,
        native_state: federation_state(&nfed),
        workflow_state: federation_state(&wfed),
    })
}

/// Compares the native flexible-transaction executor with the Figure 4
/// workflow translation under identical failure plans.
pub fn compare_flex(
    spec: &FlexSpec,
    install: Installer<'_>,
    plans: &[(String, FailurePlan)],
    seed: u64,
) -> Result<EquivalenceReport, VerifyError> {
    let def = translate_flex(spec).map_err(VerifyError::Translate)?;

    let (nfed, nreg) = build_world(seed, install, plans);
    let exec = FlexExecutor::new(Arc::clone(&nfed), nreg);
    let native = exec
        .run(spec)
        .map_err(|e| VerifyError::Native(format!("{e:?}")))?;

    let (wfed, wreg) = build_world(seed, install, plans);
    let workflow_committed = run_workflow(def, Arc::clone(&wfed), wreg)?;

    Ok(EquivalenceReport {
        scenario: format!("flex {:?} under {:?}", spec.name, plan_labels(plans)),
        native_committed: native.is_committed(),
        workflow_committed,
        native_state: federation_state(&nfed),
        workflow_state: federation_state(&wfed),
    })
}

fn plan_labels(plans: &[(String, FailurePlan)]) -> Vec<String> {
    plans.iter().map(|(l, p)| format!("{l}:{p:?}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm::fixtures;

    #[test]
    fn saga_happy_path_is_equivalent() {
        let spec = fixtures::linear_saga("s", 4);
        let install: Installer<'_> = &|fed, reg| fixtures::register_saga_programs(fed, reg, 4);
        let report = compare_saga(&spec, install, &[], 1).unwrap();
        assert!(report.native_committed);
        assert!(report.equivalent(), "{}", report.diff());
    }

    #[test]
    fn flex_happy_path_is_equivalent() {
        let spec = fixtures::figure3_spec();
        let install: Installer<'_> = &fixtures::register_figure3_programs;
        let report = compare_flex(&spec, install, &[], 1).unwrap();
        assert!(report.native_committed);
        assert!(report.equivalent(), "{}", report.diff());
    }
}
