//! The Figure 2 construction: a linear saga as a workflow process.
//!
//! Two blocks:
//!
//! * **Forward** — one activity per subtransaction, chained with
//!   `RC = 1` transition conditions. Every activity's return code is
//!   mapped into the block's output container as `State_i` ("each
//!   activity must also register its status … by mapping the return
//!   code of the output data container of each activity to the
//!   appropriate variable in the output data container of the block");
//!   the last activity's return code doubles as the block's own `RC`.
//!   If a subtransaction aborts, its outgoing connector is false and
//!   dead path elimination terminates the rest of the block.
//!
//! * **Compensation** — entered when the forward block reports
//!   `RC = 0`. A pass-through `NOP` activity exposes the `State_i`
//!   flags (handed over by a data connector from the forward block's
//!   output container to the compensation block's input container) to
//!   its outgoing transition conditions. The NOP has a connector to
//!   every compensating activity: the connector to `Comp_Si` carries
//!   the condition "`Si` committed and `S(i+1)` did not" — i.e. `Si`
//!   is the *last* committed subtransaction, where compensation must
//!   start. From there the reversed chain `Comp_Si → Comp_S(i-1)`
//!   walks the committed prefix backwards. The chain connectors are
//!   unconditional: compensating activities carry the exit condition
//!   `RC = 1`, making them retriable exactly as the appendix prescribes
//!   ("compensation activities will not finish until the return code
//!   from the transaction indicates that it has committed").
//!
//! Compensating activities use OR-joins: they are triggered *either*
//! directly by the NOP (as the starting point) *or* by their successor
//! in the reversed chain; the dead-path-eliminated connectors of
//! never-executed compensations evaluate false and the whole block
//! still terminates. Because a linear saga commits a strict prefix,
//! `Si` committed implies every earlier step committed, so the chain
//! conditions need no further guards — this is where the construction
//! leans on linearity, and why (like §4.1 of the paper) it covers
//! linear sagas only.

use crate::TranslateError;
use atm::{check_saga, SagaSpec};
use wfms_model::{
    validate, Activity, ContainerSchema, DataType, ProcessBuilder, ProcessDefinition, RC_MEMBER,
};

/// Name of the forward block activity in the generated process.
pub const FORWARD_BLOCK: &str = "Forward";
/// Name of the compensation block activity.
pub const COMPENSATION_BLOCK: &str = "Compensation";
/// Name of the pass-through trigger inside the compensation block.
pub const NOP_ACTIVITY: &str = "NOP";

/// The `State_i` member name for a step.
pub fn state_member(step: &str) -> String {
    format!("State_{step}")
}

/// The compensation activity name for a step.
pub fn comp_activity(step: &str) -> String {
    format!("Comp_{step}")
}

/// Translates a linear saga into a workflow process (Figure 2).
///
/// The generated process exposes one output member, `Committed`
/// (INT): `1` if the saga ran to completion, `0` if it aborted and was
/// compensated.
///
/// ```
/// use atm::{SagaSpec, StepSpec};
///
/// let saga = SagaSpec::linear("transfer", vec![
///     StepSpec::compensatable("Debit", "debit", "undo_debit"),
///     StepSpec::compensatable("Credit", "credit", "undo_credit"),
/// ]);
/// let process = exotica::translate_saga(&saga).unwrap();
///
/// // The Figure 2 shape: a forward block and a compensation block,
/// // linked by an `RC = 0` connector.
/// assert!(process.activity("Forward").unwrap().kind.is_block());
/// assert!(process.activity("Compensation").unwrap().kind.is_block());
/// assert_eq!(process.control[0].condition.to_string(), "(RC = 0)");
/// assert!(wfms_model::validate(&process).is_empty());
/// ```
pub fn translate_saga(spec: &SagaSpec) -> Result<ProcessDefinition, TranslateError> {
    let errors = check_saga(spec);
    if !errors.is_empty() {
        return Err(TranslateError::NotWellFormed(errors));
    }
    if !spec.is_linear() {
        return Err(TranslateError::NotLinear);
    }
    let steps: Vec<_> = spec.steps().cloned().collect();
    let names: Vec<&str> = steps.iter().map(|s| s.name.as_str()).collect();

    // ---- forward block ------------------------------------------------
    let mut fwd_output = ContainerSchema::empty();
    for name in &names {
        fwd_output = fwd_output.with(&state_member(name), DataType::Int);
    }
    fwd_output = fwd_output.with(RC_MEMBER, DataType::Int);

    let mut fwd = ProcessBuilder::new(FORWARD_BLOCK)
        .describe(&format!("forward phase of saga {:?}", spec.name))
        .output(fwd_output);
    for step in &steps {
        fwd = fwd.program(&step.name, &step.program);
    }
    for w in names.windows(2) {
        fwd = fwd.connect_when(w[0], w[1], &format!("{RC_MEMBER} = 1"));
    }
    for name in &names {
        fwd = fwd.map_to_process_output(name, &[(RC_MEMBER, &state_member(name))]);
    }
    let last = *names.last().expect("non-empty saga");
    let fwd = fwd
        .map_to_process_output(last, &[(RC_MEMBER, RC_MEMBER)])
        .build_unchecked();

    // ---- compensation block --------------------------------------------
    let mut comp_io = ContainerSchema::empty();
    for name in &names {
        comp_io = comp_io.with(&state_member(name), DataType::Int);
    }
    let mut comp = ProcessBuilder::new(COMPENSATION_BLOCK)
        .describe(&format!("compensation phase of saga {:?}", spec.name))
        .input(comp_io.clone())
        .activity(
            Activity::noop(NOP_ACTIVITY)
                .describe("trigger: exposes State_i flags to the entry conditions")
                .with_input(comp_io.clone())
                .with_output(comp_io.clone()),
        );
    // NOP reads the block's input container.
    let state_pairs: Vec<(String, String)> = names
        .iter()
        .map(|n| (state_member(n), state_member(n)))
        .collect();
    let pair_refs: Vec<(&str, &str)> = state_pairs
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    comp = comp.map_process_input(NOP_ACTIVITY, &pair_refs);

    for (i, step) in steps.iter().enumerate() {
        let comp_prog = step
            .compensation
            .as_deref()
            .expect("well-formed saga steps have compensations");
        comp = comp.activity(
            Activity::program(&comp_activity(&step.name), comp_prog)
                .describe(&format!("compensates {}", step.name))
                .with_exit(&format!("{RC_MEMBER} = 1"))
                .or_start(),
        );
        // Entry condition: step i is the last committed one.
        let cond = if i + 1 < names.len() {
            format!(
                "{} = 1 AND {} = 0",
                state_member(&step.name),
                state_member(names[i + 1])
            )
        } else {
            format!("{} = 1", state_member(&step.name))
        };
        comp = comp.connect_when(NOP_ACTIVITY, &comp_activity(&step.name), &cond);
    }
    // Reversed chain C_{i+1} -> C_i, unconditional: the retriable
    // exit already guarantees RC = 1 on completion, so a guard would
    // be dead weight (the analyzer's WA104 would flag it).
    for w in names.windows(2) {
        comp = comp.connect(&comp_activity(w[1]), &comp_activity(w[0]));
    }
    let comp = comp.build_unchecked();

    // ---- root process -----------------------------------------------------
    let root = ProcessBuilder::new(&spec.name)
        .describe(&format!(
            "saga {:?} compiled by Exotica/FMTM (Figure 2 construction)",
            spec.name
        ))
        .output(ContainerSchema::of(&[("Committed", DataType::Int)]))
        .block(FORWARD_BLOCK, fwd)
        .block(COMPENSATION_BLOCK, comp)
        .connect_when(
            FORWARD_BLOCK,
            COMPENSATION_BLOCK,
            &format!("{RC_MEMBER} = 0"),
        )
        .map_data(FORWARD_BLOCK, COMPENSATION_BLOCK, &pair_refs)
        .map_to_process_output(FORWARD_BLOCK, &[(RC_MEMBER, "Committed")])
        .build_unchecked();

    let errors = validate(&root);
    if !errors.is_empty() {
        return Err(TranslateError::Model(errors));
    }
    Ok(root)
}

/// Ablation variant: the saga compiled **without blocks** — forward
/// activities, the NOP trigger and the compensating activities all at
/// the top level of one flat process.
///
/// The mechanics are identical to [`translate_saga`] except that the
/// `State_i` flags travel over per-activity data connectors into the
/// NOP's input container (instead of being collected in a block output
/// container), and every forward activity carries its own `RC = 0`
/// failure connector into the NOP (instead of one block-level edge).
/// Used by the `ablation` benchmark to measure what the paper's
/// block structure costs and buys; behaviourally equivalent (the
/// equivalence tests run both variants against the native executor).
pub fn translate_saga_flat(spec: &SagaSpec) -> Result<ProcessDefinition, TranslateError> {
    let errors = check_saga(spec);
    if !errors.is_empty() {
        return Err(TranslateError::NotWellFormed(errors));
    }
    if !spec.is_linear() {
        return Err(TranslateError::NotLinear);
    }
    let steps: Vec<_> = spec.steps().cloned().collect();
    let names: Vec<&str> = steps.iter().map(|s| s.name.as_str()).collect();

    let mut state_schema = ContainerSchema::empty();
    for name in &names {
        state_schema = state_schema.with(&state_member(name), DataType::Int);
    }

    let mut b = ProcessBuilder::new(&spec.name)
        .describe(&format!(
            "saga {:?} compiled flat (ablation of the Figure 2 block structure)",
            spec.name
        ))
        .output(ContainerSchema::of(&[("Committed", DataType::Int)]));

    // Forward chain.
    for step in &steps {
        b = b.program(&step.name, &step.program);
    }
    for w in names.windows(2) {
        b = b.connect_when(w[0], w[1], &format!("{RC_MEMBER} = 1"));
    }

    // The NOP trigger: OR-joined on any forward failure; its input
    // container accumulates the State flags via data connectors.
    b = b.activity(
        Activity::noop(NOP_ACTIVITY)
            .describe("compensation trigger (flat variant)")
            .with_input(state_schema.clone())
            .with_output(state_schema.clone())
            .or_start(),
    );
    for name in &names {
        b = b.connect_when(name, NOP_ACTIVITY, &format!("{RC_MEMBER} = 0"));
        b = b.map_data(name, NOP_ACTIVITY, &[(RC_MEMBER, &state_member(name))]);
    }

    // Compensations, exactly as in the block variant.
    for (i, step) in steps.iter().enumerate() {
        let comp_prog = step
            .compensation
            .as_deref()
            .expect("well-formed saga steps have compensations");
        b = b.activity(
            Activity::program(&comp_activity(&step.name), comp_prog)
                .with_exit(&format!("{RC_MEMBER} = 1"))
                .or_start(),
        );
        let cond = if i + 1 < names.len() {
            format!(
                "{} = 1 AND {} = 0",
                state_member(&step.name),
                state_member(names[i + 1])
            )
        } else {
            format!("{} = 1", state_member(&step.name))
        };
        b = b.connect_when(NOP_ACTIVITY, &comp_activity(&step.name), &cond);
    }
    // Unconditional reversed chain, as in the block variant.
    for w in names.windows(2) {
        b = b.connect(&comp_activity(w[1]), &comp_activity(w[0]));
    }

    let last = *names.last().expect("non-empty saga");
    let root = b
        .map_to_process_output(last, &[(RC_MEMBER, "Committed")])
        .build_unchecked();
    let errors = validate(&root);
    if !errors.is_empty() {
        return Err(TranslateError::Model(errors));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm::fixtures;
    use atm::spec::StepSpec;
    use wfms_model::ActivityKind;

    #[test]
    fn figure2_shape() {
        let def = translate_saga(&fixtures::linear_saga("saga3", 3)).unwrap();
        assert_eq!(def.activities.len(), 2);
        let fwd = def.activity(FORWARD_BLOCK).unwrap();
        let comp = def.activity(COMPENSATION_BLOCK).unwrap();
        assert!(fwd.kind.is_block());
        assert!(comp.kind.is_block());
        // Connector Forward -> Compensation on RC = 0.
        assert_eq!(def.control.len(), 1);
        assert_eq!(def.control[0].condition.to_string(), "(RC = 0)");
        // Forward block: 3 activities, chained on RC = 1, State flags.
        let ActivityKind::Block { process: f } = &fwd.kind else {
            unreachable!()
        };
        assert_eq!(f.activities.len(), 3);
        assert_eq!(f.control.len(), 2);
        assert!(f.output.has("State_S1"));
        assert!(f.output.has("RC"));
        // Compensation block: NOP + 3 compensations, entry + chain
        // connectors.
        let ActivityKind::Block { process: c } = &comp.kind else {
            unreachable!()
        };
        assert_eq!(c.activities.len(), 4);
        assert_eq!(c.control.len(), 3 + 2);
        let nop = c.activity(NOP_ACTIVITY).unwrap();
        assert_eq!(nop.kind, ActivityKind::NoOp);
        // Entry condition for the middle step mentions both states.
        let entry = c
            .control
            .iter()
            .find(|cc| cc.from == NOP_ACTIVITY && cc.to == comp_activity("S2"))
            .unwrap();
        let cond = entry.condition.to_string();
        assert!(cond.contains("State_S2"), "{cond}");
        assert!(cond.contains("State_S3"), "{cond}");
        // Compensations are retriable via their exit condition.
        assert!(c
            .activity(&comp_activity("S1"))
            .unwrap()
            .exit
            .expr
            .is_some());
    }

    #[test]
    fn generated_process_validates_for_all_sizes() {
        for n in 1..=12 {
            let def = translate_saga(&fixtures::linear_saga(&format!("s{n}"), n)).unwrap();
            assert!(validate(&def).is_empty(), "n={n}");
            assert_eq!(def.total_activities(), 2 + n + (n + 1));
        }
    }

    #[test]
    fn flat_variant_validates_and_has_no_blocks() {
        for n in 1..=8 {
            let def = translate_saga_flat(&fixtures::linear_saga(&format!("f{n}"), n)).unwrap();
            assert!(validate(&def).is_empty(), "n={n}");
            assert!(def.activities.iter().all(|a| !a.kind.is_block()));
            // n forward + NOP + n compensations, all top level.
            assert_eq!(def.activities.len(), 2 * n + 1);
            assert_eq!(def.nesting_depth(), 1);
        }
    }

    #[test]
    fn flat_variant_compensates_like_the_block_variant() {
        use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
        use wfms_engine::{Engine, InstanceStatus};
        let n = 4;
        for abort_at in 1..=n + 1 {
            let spec = fixtures::linear_saga("flat", n);
            let def = translate_saga_flat(&spec).unwrap();
            let fed = MultiDatabase::new(0);
            let registry = std::sync::Arc::new(ProgramRegistry::new());
            fixtures::register_saga_programs(&fed, &registry, n);
            if abort_at <= n {
                fed.injector()
                    .set_plan(&format!("S{abort_at}"), FailurePlan::Always);
            }
            let engine = Engine::new(std::sync::Arc::clone(&fed), registry);
            engine.register(def).unwrap();
            let id = engine
                .start("flat", wfms_model::Container::empty())
                .unwrap();
            assert_eq!(
                engine.run_to_quiescence(id).unwrap(),
                InstanceStatus::Finished
            );
            let committed = engine
                .output(id)
                .unwrap()
                .get("Committed")
                .and_then(|v| v.as_int())
                == Some(1);
            assert_eq!(committed, abort_at > n, "abort_at={abort_at}");
            for i in 1..=n {
                let expected = if abort_at > n {
                    Some(1)
                } else if i < abort_at {
                    Some(-1)
                } else {
                    None
                };
                assert_eq!(
                    fixtures::marker(&fed, &format!("S{i}")),
                    expected,
                    "abort_at={abort_at} S{i}"
                );
            }
        }
    }

    #[test]
    fn non_linear_rejected() {
        let spec = atm::SagaSpec::staged(
            "par",
            vec![vec![
                StepSpec::compensatable("A", "pa", "ca"),
                StepSpec::compensatable("B", "pb", "cb"),
            ]],
        );
        assert!(matches!(
            translate_saga(&spec),
            Err(TranslateError::NotLinear)
        ));
    }

    #[test]
    fn ill_formed_rejected() {
        let spec = atm::SagaSpec::linear("bad", vec![StepSpec::pivot("P", "prog")]);
        assert!(matches!(
            translate_saga(&spec),
            Err(TranslateError::NotWellFormed(_))
        ));
    }
}
