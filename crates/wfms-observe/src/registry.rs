//! The named-instrument registry.
//!
//! Instruments are created on first use and shared by name; callers
//! that care about hot-path cost resolve their `Arc` handles once and
//! keep them (see the engine's probe structs) — the registry lookup is
//! for wiring and exposition, not the record path.

use crate::{Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramSnapshot, HistogramVec};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Named counters, gauges, histograms and histogram families.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    families: RwLock<BTreeMap<String, Arc<HistogramVec>>>,
    counter_vecs: RwLock<BTreeMap<String, Arc<CounterVec>>>,
    gauge_vecs: RwLock<BTreeMap<String, Arc<GaugeVec>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("observe lock").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("observe lock");
    Arc::clone(w.entry(name.to_owned()).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.hists, name)
    }

    /// The histogram family named `name`.
    pub fn histogram_vec(&self, name: &str) -> Arc<HistogramVec> {
        get_or_create(&self.families, name)
    }

    /// The counter family named `name`, created on first use with
    /// `label_key` as its exposition label key (`tenant`, `shard`, …).
    /// The key is fixed by whoever creates the family first.
    pub fn counter_vec(&self, name: &str, label_key: &str) -> Arc<CounterVec> {
        if let Some(v) = self.counter_vecs.read().expect("observe lock").get(name) {
            return Arc::clone(v);
        }
        let mut w = self.counter_vecs.write().expect("observe lock");
        Arc::clone(
            w.entry(name.to_owned())
                .or_insert_with(|| Arc::new(CounterVec::new(label_key))),
        )
    }

    /// The gauge family named `name` (see [`Registry::counter_vec`]).
    pub fn gauge_vec(&self, name: &str, label_key: &str) -> Arc<GaugeVec> {
        if let Some(v) = self.gauge_vecs.read().expect("observe lock").get(name) {
            return Arc::clone(v);
        }
        let mut w = self.gauge_vecs.write().expect("observe lock");
        Arc::clone(
            w.entry(name.to_owned())
                .or_insert_with(|| Arc::new(GaugeVec::new(label_key))),
        )
    }

    /// Snapshots every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .hists
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            families: self
                .families
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            counter_vecs: self
                .counter_vecs
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), (v.label_key().to_owned(), v.snapshot())))
                .collect(),
            gauge_vecs: self
                .gauge_vecs
                .read()
                .expect("observe lock")
                .iter()
                .map(|(k, v)| (k.clone(), (v.label_key().to_owned(), v.snapshot())))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`]'s instruments, ready for
/// rendering.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Histogram-family summaries: name → sorted (label, summary).
    pub families: BTreeMap<String, Vec<(String, HistogramSnapshot)>>,
    /// Counter-family values: name → (label key, sorted (label, value)).
    pub counter_vecs: BTreeMap<String, (String, Vec<(String, u64)>)>,
    /// Gauge-family levels: name → (label key, sorted (label, level)).
    pub gauge_vecs: BTreeMap<String, (String, Vec<(String, i64)>)>,
}

/// `foo.bar-baz` → `foo_bar_baz` (Prometheus metric name charset).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn prom_hist(out: &mut String, name: &str, label: Option<&str>, s: &HistogramSnapshot) {
    let tag = |q: &str| match label {
        Some(l) => format!("{name}{{label=\"{l}\",quantile=\"{q}\"}}"),
        None => format!("{name}{{quantile=\"{q}\"}}"),
    };
    let bare = |suffix: &str| match label {
        Some(l) => format!("{name}_{suffix}{{label=\"{l}\"}}"),
        None => format!("{name}_{suffix}"),
    };
    out.push_str(&format!("{} {}\n", tag("0.5"), s.p50));
    out.push_str(&format!("{} {}\n", tag("0.95"), s.p95));
    out.push_str(&format!("{} {}\n", tag("0.99"), s.p99));
    out.push_str(&format!("{} {}\n", bare("count"), s.count));
    out.push_str(&format!("{} {}\n", bare("sum"), s.sum));
    out.push_str(&format!("{} {}\n", bare("max"), s.max));
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (histograms as quantile summaries).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, s) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            prom_hist(&mut out, &n, None, s);
        }
        for (name, labels) in &self.families {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (label, s) in labels {
                prom_hist(&mut out, &n, Some(label), s);
            }
        }
        for (name, (key, labels)) in &self.counter_vecs {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n"));
            for (label, v) in labels {
                out.push_str(&format!("{n}{{{key}=\"{label}\"}} {v}\n"));
            }
        }
        for (name, (key, labels)) in &self.gauge_vecs {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n"));
            for (label, v) in labels {
                out.push_str(&format!("{n}{{{key}=\"{label}\"}} {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        assert_eq!(r.counter("a.b").get(), 3);
        r.gauge("g").set(-4);
        assert_eq!(r.gauge("g").get(), -4);
        r.histogram("h").record(10);
        assert_eq!(r.histogram("h").count(), 1);
        r.histogram_vec("f").observe("x", 1);
        assert_eq!(r.histogram_vec("f").with_label("x").count(), 1);
    }

    #[test]
    fn snapshot_and_prometheus_rendering() {
        let r = Registry::new();
        r.counter("engine.steps").add(42);
        r.gauge("heap.depth").record_max(7);
        r.histogram("flush.ns").record(1000);
        r.histogram_vec("act.latency_ns").observe("T1", 500);

        let snap = r.snapshot();
        assert_eq!(snap.counters["engine.steps"], 42);
        assert_eq!(snap.gauges["heap.depth"], 7);
        assert_eq!(snap.histograms["flush.ns"].count, 1);
        assert_eq!(snap.families["act.latency_ns"][0].0, "T1");

        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE engine_steps counter"));
        assert!(text.contains("engine_steps 42"));
        assert!(text.contains("heap_depth 7"));
        assert!(text.contains("flush_ns{quantile=\"0.5\"}"));
        assert!(text.contains("act_latency_ns{label=\"T1\",quantile=\"0.99\"}"));
        assert!(text.contains("act_latency_ns_count{label=\"T1\"} 1"));
    }

    #[test]
    fn labeled_families_render_with_their_key() {
        let r = Registry::new();
        r.counter_vec("server.tenant.accepted", "tenant")
            .inc("acme");
        r.counter_vec("server.tenant.accepted", "tenant")
            .inc("acme");
        r.counter_vec("server.tenant.accepted", "tenant")
            .inc("beta");
        r.gauge_vec("server.tenant.inflight", "tenant")
            .add("acme", 3);

        let snap = r.snapshot();
        let (key, labels) = &snap.counter_vecs["server.tenant.accepted"];
        assert_eq!(key, "tenant");
        assert_eq!(labels[0], ("acme".to_owned(), 2));

        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE server_tenant_accepted counter"));
        assert!(text.contains("server_tenant_accepted{tenant=\"acme\"} 2"));
        assert!(text.contains("server_tenant_accepted{tenant=\"beta\"} 1"));
        assert!(text.contains("# TYPE server_tenant_inflight gauge"));
        assert!(text.contains("server_tenant_inflight{tenant=\"acme\"} 3"));
    }
}
