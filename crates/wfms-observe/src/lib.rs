//! # wfms-observe
//!
//! Observability primitives for the workflow stack, built on nothing
//! but `std`: no external crates, no allocation on the record path, no
//! locks around counters. Everything here is safe to hammer from the
//! parallel scheduler's worker threads.
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`;
//! * [`Gauge`] — signed level with `set`/`add` and a `record_max`
//!   high-water mark;
//! * [`Histogram`] — log-linear latency histogram over `u64`
//!   nanoseconds with integer-only p50/p95/p99 estimation;
//! * [`Registry`] — named get-or-create home for the above, plus
//!   [`HistogramVec`] for label-keyed families (per-activity latency)
//!   and [`CounterVec`]/[`GaugeVec`] for labeled counter/gauge
//!   families (per-tenant admissions);
//! * [`TraceSink`] / [`SpanGuard`] — structured span & event tracing
//!   with a no-op default sink;
//! * [`Observer`] — the bundle the engine threads through its hot
//!   paths. `enabled` is a plain bool decided at construction, so a
//!   disabled observer costs one branch per hook site.
//!
//! Recording into a disabled observer's registry still works — cold
//! paths (recovery fix-ups, crash-sweep counters) record
//! unconditionally so their counts are visible even on engines that
//! never asked for hot-path metrics.

mod registry;
mod trace;

pub use registry::{Registry, RegistrySnapshot};
pub use trace::{NoopSink, RecordingSink, SpanGuard, TraceEvent, TraceKind, TraceSink};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level (queue depths, instances in a state) with a
/// high-water mark helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher — a high-water mark.
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Values below this are counted in exact unit-wide buckets.
const LINEAR_CUTOFF: u64 = 32;
/// Sub-buckets per power of two above the cutoff (2 significant bits:
/// relative quantisation error ≤ 1/8).
const SUBS: usize = 4;
/// Bucket count: 32 linear + 4 per power of two for msb 5..=63.
const NBUCKETS: usize = LINEAR_CUTOFF as usize + (63 - 4) * SUBS;

/// A log-linear histogram over `u64` values (nanoseconds by
/// convention). Recording is three relaxed atomic adds and one atomic
/// max; quantile estimation is integer-only (the only floats in this
/// crate live in the text exposition).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, max={})",
            s.count, s.p50, s.max
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 5
        let sub = ((v >> (msb - 2)) & 3) as usize;
        LINEAR_CUTOFF as usize + (msb - 5) * SUBS + sub
    }
}

/// Inclusive lower bound of bucket `idx` (inverse of [`bucket_of`]).
fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let msb = 5 + rel / SUBS;
        let sub = (rel % SUBS) as u64;
        (1u64 << msb) + sub * (1u64 << (msb - 2))
    }
}

/// Representative value reported for bucket `idx`: its midpoint.
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let msb = 5 + rel / SUBS;
        bucket_floor(idx) + (1u64 << (msb - 2)) / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `num/den` (e.g. 95/100): the
    /// midpoint of the bucket holding the rank-`⌈count·num/den⌉`
    /// observation, clamped to the recorded maximum.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total * num).div_ceil(den)).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time summary. (Individual fields
    /// are loaded relaxed; under concurrent writers the snapshot may
    /// mix adjacent states, which is fine for monitoring.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(1, 2),
            p95: self.quantile(19, 20),
            p99: self.quantile(99, 100),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean value, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A label-keyed family of histograms (e.g. per-activity latency).
///
/// The fast path — an existing label — takes a shared read lock and
/// records in place without cloning the `Arc`.
#[derive(Debug, Default)]
pub struct HistogramVec {
    inner: std::sync::RwLock<std::collections::HashMap<String, Arc<Histogram>>>,
}

impl HistogramVec {
    /// An empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `label`, created on first use.
    pub fn with_label(&self, label: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.read().expect("observe lock").get(label) {
            return Arc::clone(h);
        }
        let mut w = self.inner.write().expect("observe lock");
        Arc::clone(
            w.entry(label.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Records `v` under `label`.
    pub fn observe(&self, label: &str, v: u64) {
        if let Some(h) = self.inner.read().expect("observe lock").get(label) {
            h.record(v);
            return;
        }
        self.with_label(label).record(v);
    }

    /// Snapshots every label, sorted.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out: Vec<(String, HistogramSnapshot)> = self
            .inner
            .read()
            .expect("observe lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A label-keyed family of counters (e.g. per-tenant admissions).
///
/// Unlike [`HistogramVec`] — whose Prometheus exposition hardcodes a
/// generic `label` key — a counter family carries its label *key*
/// (`tenant`, `shard`, …) so the exposition reads
/// `server_tenant_accepted{tenant="acme"} 3`.
#[derive(Debug)]
pub struct CounterVec {
    label_key: String,
    inner: std::sync::RwLock<std::collections::HashMap<String, Arc<Counter>>>,
}

impl CounterVec {
    /// An empty family whose exposition uses `label_key`.
    pub fn new(label_key: &str) -> Self {
        Self {
            label_key: label_key.to_owned(),
            inner: std::sync::RwLock::new(std::collections::HashMap::new()),
        }
    }

    /// The Prometheus label key this family renders with.
    pub fn label_key(&self) -> &str {
        &self.label_key
    }

    /// The counter for `label`, created at zero on first use.
    pub fn with_label(&self, label: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().expect("observe lock").get(label) {
            return Arc::clone(c);
        }
        let mut w = self.inner.write().expect("observe lock");
        Arc::clone(
            w.entry(label.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Adds one under `label`.
    pub fn inc(&self, label: &str) {
        if let Some(c) = self.inner.read().expect("observe lock").get(label) {
            c.inc();
            return;
        }
        self.with_label(label).inc();
    }

    /// Snapshots every label, sorted.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .inner
            .read()
            .expect("observe lock")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A label-keyed family of gauges (e.g. per-tenant in-flight work).
#[derive(Debug)]
pub struct GaugeVec {
    label_key: String,
    inner: std::sync::RwLock<std::collections::HashMap<String, Arc<Gauge>>>,
}

impl GaugeVec {
    /// An empty family whose exposition uses `label_key`.
    pub fn new(label_key: &str) -> Self {
        Self {
            label_key: label_key.to_owned(),
            inner: std::sync::RwLock::new(std::collections::HashMap::new()),
        }
    }

    /// The Prometheus label key this family renders with.
    pub fn label_key(&self) -> &str {
        &self.label_key
    }

    /// The gauge for `label`, created at zero on first use.
    pub fn with_label(&self, label: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().expect("observe lock").get(label) {
            return Arc::clone(g);
        }
        let mut w = self.inner.write().expect("observe lock");
        Arc::clone(
            w.entry(label.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Adjusts the level under `label` by `d` (may be negative).
    pub fn add(&self, label: &str, d: i64) {
        if let Some(g) = self.inner.read().expect("observe lock").get(label) {
            g.add(d);
            return;
        }
        self.with_label(label).add(d);
    }

    /// Snapshots every label, sorted.
    pub fn snapshot(&self) -> Vec<(String, i64)> {
        let mut out: Vec<(String, i64)> = self
            .inner
            .read()
            .expect("observe lock")
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The bundle threaded through the engine, journal, substrate and CLI:
/// a [`Registry`] plus a [`TraceSink`] and the hot-path enable flag.
///
/// `enabled` gates only the *hot* hooks (per-activity timing, heap
/// depths, journal counters). Cold paths — recovery fix-ups, stale
/// work-item releases, crash-sweep tallies — record unconditionally,
/// so even a disabled observer answers "what did recovery do".
pub struct Observer {
    enabled: bool,
    registry: Registry,
    sink: Arc<dyn TraceSink>,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Observer {
    /// An observer whose hot-path hooks are compiled down to one
    /// branch — the default on every engine that did not opt in.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            registry: Registry::new(),
            sink: Arc::new(NoopSink),
            next_span: AtomicU64::new(1),
        }
    }

    /// An observer with hot-path metrics on and the no-op trace sink.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Replaces the trace sink (builder style).
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// True when hot-path hooks should record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The instrument registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Emits a point event to the trace sink (no-op on [`NoopSink`]).
    pub fn trace_event(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if self.sink.wants_events() {
            self.sink.record(&TraceEvent {
                kind: TraceKind::Event,
                name,
                id: 0,
                detail: detail(),
                nanos: 0,
            });
        }
    }

    /// Opens a span; the returned guard emits the matching exit (with
    /// wall-clock nanoseconds) when dropped. Inert on [`NoopSink`].
    pub fn span(&self, name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard<'_> {
        if !self.sink.wants_events() {
            return SpanGuard::inert();
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.sink.record(&TraceEvent {
            kind: TraceKind::Enter,
            name,
            id,
            detail: detail(),
            nanos: 0,
        });
        SpanGuard::live(self.sink.as_ref(), name, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        g.record_max(3);
        assert_eq!(g.get(), 5, "record_max never lowers");
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_round_trip() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_of(v);
            assert!(bucket_floor(idx) <= v, "floor({idx}) > {v}");
            if idx + 1 < NBUCKETS {
                assert!(bucket_floor(idx + 1) > v, "ceil({idx}) <= {v}");
            }
        }
        // Floors are strictly increasing: the inverse is well defined.
        for idx in 1..NBUCKETS {
            assert!(bucket_floor(idx) > bucket_floor(idx - 1), "idx {idx}");
        }
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // Log-linear with 4 sub-buckets: ≤ 12.5% quantisation error.
        for (q, exact) in [(s.p50, 500u64), (s.p95, 950), (s.p99, 990)] {
            let err = q.abs_diff(exact);
            assert!(err * 8 <= exact, "quantile {q} too far from {exact}");
        }
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn histogram_small_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(7);
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p95, s.max), (1, 7, 7, 7));
    }

    #[test]
    fn histogram_vec_labels() {
        let v = HistogramVec::new();
        v.observe("a", 10);
        v.observe("a", 20);
        v.observe("b", 5);
        let snap = v.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[1].1.count, 1);
        assert_eq!(v.with_label("a").count(), 2);
    }

    #[test]
    fn counter_and_gauge_vec_labels() {
        let c = CounterVec::new("tenant");
        c.inc("acme");
        c.inc("acme");
        c.inc("beta");
        assert_eq!(c.label_key(), "tenant");
        assert_eq!(
            c.snapshot(),
            vec![("acme".to_owned(), 2), ("beta".to_owned(), 1)]
        );
        assert_eq!(c.with_label("acme").get(), 2);

        let g = GaugeVec::new("tenant");
        g.add("acme", 3);
        g.add("acme", -1);
        g.add("beta", 5);
        assert_eq!(
            g.snapshot(),
            vec![("acme".to_owned(), 2), ("beta".to_owned(), 5)]
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v % 4096);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn observer_defaults() {
        let o = Observer::disabled();
        assert!(!o.is_enabled());
        assert!(Observer::enabled().is_enabled());
        // Cold-path recording works regardless of `enabled`.
        o.registry().counter("cold.path").inc();
        assert_eq!(o.registry().counter("cold.path").get(), 1);
        // Spans against the no-op sink are inert.
        drop(o.span("nothing", String::new));
    }

    #[test]
    fn observer_recording_sink_captures_spans() {
        let sink = Arc::new(RecordingSink::new());
        let o = Observer::enabled().with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        {
            let _g = o.span("work", || "detail".into());
            o.trace_event("milestone", || "mid".into());
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!((evs[0].kind, evs[0].name), (TraceKind::Enter, "work"));
        assert_eq!(evs[1].name, "milestone");
        assert_eq!(evs[2].kind, TraceKind::Exit);
        assert_eq!(evs[2].id, evs[0].id);
    }
}
