//! Structured span/event tracing.
//!
//! The engine emits [`TraceEvent`]s to a [`TraceSink`] — span
//! enter/exit pairs around units of work (activity execution,
//! recovery, checkpointing) and point events for milestones. The
//! default [`NoopSink`] declines events up front
//! ([`TraceSink::wants_events`] is false), so an unconfigured engine
//! never even formats the detail strings.

use std::sync::Mutex;
use std::time::Instant;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened.
    Enter,
    /// A span closed; `nanos` holds its wall-clock duration.
    Exit,
    /// A point event.
    Event,
}

/// One structured trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Enter, exit or point.
    pub kind: TraceKind,
    /// Static span/event name (e.g. `"activity"`, `"recovery"`).
    pub name: &'static str,
    /// Span id correlating enter and exit (0 for point events).
    pub id: u64,
    /// Free-form detail (instance, path, …); empty on exits.
    pub detail: String,
    /// Span duration in nanoseconds (exits only).
    pub nanos: u64,
}

/// Receiver of trace records. Implementations must be cheap and
/// non-blocking — sinks run inline on engine threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, ev: &TraceEvent);

    /// False to suppress event construction entirely (the default
    /// sink); hooks skip formatting when the sink does not want input.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards everything; reports `wants_events() == false` so callers
/// skip the work of building events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: &TraceEvent) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Buffers every record in memory — for tests and the `fmtm top`
/// development view.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Drops all buffered records.
    pub fn clear(&self) {
        self.events.lock().expect("trace lock").clear();
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, ev: &TraceEvent) {
        self.events.lock().expect("trace lock").push(ev.clone());
    }
}

/// RAII guard for a span: emits the exit record (with duration) on
/// drop. Obtained from [`Observer::span`](crate::Observer::span).
pub struct SpanGuard<'a> {
    live: Option<(&'a dyn TraceSink, &'static str, u64, Instant)>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn inert() -> Self {
        Self { live: None }
    }

    pub(crate) fn live(sink: &'a dyn TraceSink, name: &'static str, id: u64) -> Self {
        Self {
            live: Some((sink, name, id, Instant::now())),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, name, id, started)) = self.live.take() {
            sink.record(&TraceEvent {
                kind: TraceKind::Exit,
                name,
                id,
                detail: String::new(),
                nanos: started.elapsed().as_nanos() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_declines_events() {
        assert!(!NoopSink.wants_events());
        NoopSink.record(&TraceEvent {
            kind: TraceKind::Event,
            name: "x",
            id: 0,
            detail: String::new(),
            nanos: 0,
        });
    }

    #[test]
    fn recording_sink_buffers_and_clears() {
        let sink = RecordingSink::new();
        {
            let _g = SpanGuard::live(&sink, "unit", 9);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, TraceKind::Exit);
        assert_eq!(evs[0].id, 9);
        sink.clear();
        assert!(sink.events().is_empty());
    }
}
