//! FDL diagnostics.
//!
//! The Figure 5 pipeline reports problems at two stages: *import*
//! (syntax — produced by the [`crate::parser`]) and *translation*
//! (semantics — produced by `wfms_model::validate` on the compiled
//! definition). Both are surfaced as [`FdlError`]s with source
//! positions so the Exotica pre-processor can point back at the
//! offending line.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An FDL error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdlError {
    /// Where the problem was detected.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

impl FdlError {
    /// Builds an error.
    pub fn new(pos: Pos, msg: impl Into<String>) -> Self {
        Self {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for FdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FDL error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for FdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FdlError::new(Pos { line: 3, col: 7 }, "unexpected END");
        assert_eq!(e.to_string(), "FDL error at 3:7: unexpected END");
    }
}
