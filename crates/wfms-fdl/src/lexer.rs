//! The FDL lexer.

use crate::diag::{FdlError, Pos};

/// FDL keywords (case-insensitive in source, canonical upper-case
/// here).
pub const KEYWORDS: &[&str] = &[
    "PROCESS",
    "VERSION",
    "DESCRIPTION",
    "INPUT",
    "OUTPUT",
    "ACTIVITY",
    "PROGRAM",
    "BLOCK",
    "NOOP",
    "CONTROL",
    "DATA",
    "FROM",
    "TO",
    "WHEN",
    "MAP",
    "START",
    "EXIT",
    "ROLE",
    "PERSON",
    "DEADLINE",
    "MANUAL",
    "AUTOMATIC",
    "AND",
    "OR",
    "END",
    "INT",
    "STRING",
    "BOOL",
    "DEFAULT",
];

/// One FDL token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword (canonical upper-case form).
    Kw(&'static str),
    /// Identifier (activity names, member names).
    Ident(String),
    /// String literal (names with spaces, conditions, program names).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation: `(`, `)`, `:`, `,`, `.`, `->`.
    Punct(&'static str),
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenises FDL source. Comments run from `//` or `--` to end of
/// line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, FdlError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned {
                    tok: Tok::Punct("->"),
                    pos,
                });
                bump!();
                bump!();
            }
            '-' if bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                bump!(); // consume '-'
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((bytes[i] - b'0') as i64))
                        .ok_or_else(|| FdlError::new(pos, "integer literal overflows i64"))?;
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Int(-n),
                    pos,
                });
            }
            '(' | ')' | ':' | ',' | '.' => {
                let p = match c {
                    '(' => "(",
                    ')' => ")",
                    ':' => ":",
                    ',' => ",",
                    _ => ".",
                };
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    pos,
                });
                bump!();
            }
            '"' => {
                bump!(); // opening quote
                let mut buf: Vec<u8> = Vec::new();
                loop {
                    if i >= bytes.len() {
                        return Err(FdlError::new(pos, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' if bytes.get(i + 1) == Some(&b'"') => {
                            buf.push(b'"');
                            bump!();
                            bump!();
                        }
                        b'\n' => {
                            return Err(FdlError::new(pos, "string literal spans end of line"))
                        }
                        b => {
                            buf.push(b);
                            bump!();
                        }
                    }
                }
                // The source is a &str, so any byte run sliced out of
                // it is valid UTF-8 (escapes only splice in ASCII).
                let s = String::from_utf8(buf)
                    .expect("string literal bytes come from valid UTF-8 source");
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((bytes[i] - b'0') as i64))
                        .ok_or_else(|| FdlError::new(pos, "integer literal overflows i64"))?;
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Int(n),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    bump!();
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                match KEYWORDS.iter().find(|k| **k == upper) {
                    Some(k) => out.push(Spanned {
                        tok: Tok::Kw(k),
                        pos,
                    }),
                    None => out.push(Spanned {
                        tok: Tok::Ident(word.to_owned()),
                        pos,
                    }),
                }
            }
            other => {
                return Err(FdlError::new(
                    pos,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("PROCESS demo Activity t1"),
            vec![
                Tok::Kw("PROCESS"),
                Tok::Ident("demo".into()),
                Tok::Kw("ACTIVITY"),
                Tok::Ident("t1".into()),
            ]
        );
    }

    #[test]
    fn punctuation_and_arrow() {
        assert_eq!(
            toks("( x : INT , y ) -> z"),
            vec![
                Tok::Punct("("),
                Tok::Ident("x".into()),
                Tok::Punct(":"),
                Tok::Kw("INT"),
                Tok::Punct(","),
                Tok::Ident("y".into()),
                Tok::Punct(")"),
                Tok::Punct("->"),
                Tok::Ident("z".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""RC = 1" "he said \"hi\"""#),
            vec![Tok::Str("RC = 1".into()), Tok::Str("he said \"hi\"".into())]
        );
    }

    #[test]
    fn integers_incl_negative() {
        assert_eq!(toks("42 -7"), vec![Tok::Int(42), Tok::Int(-7)]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("PROCESS // trailing words END\n-- another comment\ndemo"),
            vec![Tok::Kw("PROCESS"), Tok::Ident("demo".into())]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("PROCESS\n  demo").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("ok @").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 4 });
        assert!(lex("\"open").is_err());
        assert!(lex("\"no\nnewlines\"").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
