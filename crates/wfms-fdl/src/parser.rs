//! The FDL parser: token stream → [`ProcessDefinition`].
//!
//! The grammar (keywords case-insensitive, `//` and `--` comments):
//!
//! ```text
//! process   := PROCESS name [VERSION int] body END
//! body      := { DESCRIPTION str | INPUT schema | OUTPUT schema
//!              | activity | block | noop | control | data }
//! schema    := '(' [ member { ',' member } ] ')'
//! member    := ident ':' (INT|STRING|BOOL) [DEFAULT (int|str)]
//! activity  := ACTIVITY ident PROGRAM str { actopt } END
//! noop      := NOOP ident { actopt } END
//! block     := BLOCK ident { actopt | body-item } END
//! actopt    := DESCRIPTION str | INPUT schema | OUTPUT schema
//!            | START (AND|OR) | EXIT WHEN str
//!            | ROLE str | PERSON str | DEADLINE int
//!            | MANUAL | AUTOMATIC
//! control   := CONTROL FROM ident TO ident [WHEN str]
//! data      := DATA FROM endpoint TO endpoint MAP map { ',' map }
//! endpoint  := (PROCESS | ident) '.' (INPUT | OUTPUT)
//! map       := ident '->' ident
//! ```
//!
//! Conditions are quoted strings in the expression language of
//! [`wfms_model::Expr`]; they are parsed eagerly so syntax errors in a
//! condition surface at import time with the position of the string
//! literal — matching the Figure 5 pipeline, where the import stage
//! catches syntactic inconsistencies.

use crate::diag::{FdlError, Pos};
use crate::lexer::{lex, Spanned, Tok};
use crate::provenance::Provenance;
use txn_substrate::Value;
use wfms_model::{
    validate, Activity, ActivityKind, ContainerSchema, ControlConnector, DataConnector,
    DataEndpoint, DataType, Expr, Mapping, MemberDecl, ProcessDefinition, StaffAssignment,
    StartCondition, ValidationError,
};

/// Parses FDL source into an (unvalidated) process definition.
pub fn parse(src: &str) -> Result<ProcessDefinition, FdlError> {
    parse_with_provenance(src).map(|(def, _)| def)
}

/// Parses FDL source into an (unvalidated) process definition plus a
/// [`Provenance`] table mapping each compiled element — process and
/// block headers, activities, control and data connectors — back to
/// its source position, so later analyses can report findings at the
/// originating FDL line.
pub fn parse_with_provenance(src: &str) -> Result<(ProcessDefinition, Provenance), FdlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        path: Vec::new(),
        prov: Provenance::default(),
    };
    let def = p.process()?;
    if p.pos != p.tokens.len() {
        return Err(FdlError::new(
            p.here(),
            format!("unexpected trailing {}", p.tokens[p.pos].tok),
        ));
    }
    Ok((def, p.prov))
}

/// Parses and statically validates; validation findings carry the
/// source position of the element they concern (the duplicate
/// activity, the offending connector, …) where one is known.
pub fn parse_and_validate(src: &str) -> Result<ProcessDefinition, Vec<FdlError>> {
    let (def, prov) = parse_with_provenance(src).map_err(|e| vec![e])?;
    let errors: Vec<FdlError> = validate(&def)
        .into_iter()
        .map(|e: ValidationError| FdlError::new(prov.locate(&e).unwrap_or_default(), e.to_string()))
        .collect();
    if errors.is_empty() {
        Ok(def)
    } else {
        Err(errors)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Stack of enclosing process/block names (provenance key path).
    path: Vec<String>,
    prov: Provenance,
}

impl Parser {
    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .map(|s| s.pos)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.pos).unwrap_or_default())
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<(), FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Kw(k)) if k == kw => Ok(()),
            other => Err(FdlError::new(
                pos,
                format!("expected {kw}, found {}", tok_name(other)),
            )),
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(FdlError::new(
                pos,
                format!("expected {p:?}, found {}", tok_name(other)),
            )),
        }
    }

    fn ident(&mut self) -> Result<String, FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(FdlError::new(
                pos,
                format!("expected an identifier, found {}", tok_name(other)),
            )),
        }
    }

    fn string(&mut self) -> Result<String, FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(FdlError::new(
                pos,
                format!("expected a string literal, found {}", tok_name(other)),
            )),
        }
    }

    fn int(&mut self) -> Result<i64, FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Int(n)) => Ok(n),
            other => Err(FdlError::new(
                pos,
                format!("expected an integer, found {}", tok_name(other)),
            )),
        }
    }

    fn name(&mut self) -> Result<String, FdlError> {
        // Process names may be identifiers or quoted strings.
        let pos = self.here();
        match self.bump() {
            Some(Tok::Ident(s)) | Some(Tok::Str(s)) => Ok(s),
            other => Err(FdlError::new(
                pos,
                format!("expected a name, found {}", tok_name(other)),
            )),
        }
    }

    fn condition(&mut self) -> Result<Expr, FdlError> {
        let pos = self.here();
        let text = self.string()?;
        Expr::parse(&text)
            .map_err(|e| FdlError::new(pos, format!("invalid condition {text:?}: {e}")))
    }

    /// Slash-separated path of the process being parsed — matches the
    /// path labels `wfms_model::validate` uses for nested blocks.
    fn cur_path(&self) -> String {
        self.path.join("/")
    }

    fn process(&mut self) -> Result<ProcessDefinition, FdlError> {
        let pos = self.here();
        self.expect_kw("PROCESS")?;
        let name = self.name()?;
        let mut def = ProcessDefinition::new(&name);
        self.path.push(name);
        self.prov.record_process(&self.cur_path(), pos);
        if self.peek() == Some(&Tok::Kw("VERSION")) {
            self.bump();
            def.version = self.int()? as u32;
        }
        self.body(&mut def)?;
        self.expect_kw("END")?;
        self.path.pop();
        Ok(def)
    }

    /// Parses body items shared by processes and blocks.
    fn body(&mut self, def: &mut ProcessDefinition) -> Result<(), FdlError> {
        loop {
            match self.peek() {
                Some(Tok::Kw("DESCRIPTION")) => {
                    self.bump();
                    def.description = self.string()?;
                }
                Some(Tok::Kw("INPUT")) => {
                    self.bump();
                    def.input = self.schema()?;
                }
                Some(Tok::Kw("OUTPUT")) => {
                    self.bump();
                    def.output = self.schema()?;
                }
                Some(Tok::Kw("ACTIVITY")) => {
                    let a = self.activity()?;
                    def.activities.push(a);
                }
                Some(Tok::Kw("NOOP")) => {
                    let a = self.noop()?;
                    def.activities.push(a);
                }
                Some(Tok::Kw("BLOCK")) => {
                    let a = self.block()?;
                    def.activities.push(a);
                }
                Some(Tok::Kw("CONTROL")) => {
                    let pos = self.here();
                    self.bump();
                    self.expect_kw("FROM")?;
                    let from = self.ident()?;
                    self.expect_kw("TO")?;
                    let to = self.ident()?;
                    let condition = if self.peek() == Some(&Tok::Kw("WHEN")) {
                        self.bump();
                        self.condition()?
                    } else {
                        Expr::truth()
                    };
                    self.prov.record_control(&self.cur_path(), &from, &to, pos);
                    def.control.push(ControlConnector {
                        from,
                        to,
                        condition,
                    });
                }
                Some(Tok::Kw("DATA")) => {
                    let pos = self.here();
                    self.bump();
                    self.expect_kw("FROM")?;
                    let from = self.endpoint()?;
                    self.expect_kw("TO")?;
                    let to = self.endpoint()?;
                    self.expect_kw("MAP")?;
                    let mut mappings = vec![self.mapping()?];
                    while self.peek() == Some(&Tok::Punct(",")) {
                        self.bump();
                        mappings.push(self.mapping()?);
                    }
                    self.prov
                        .record_data(&self.cur_path(), &format!("{from} => {to}"), pos);
                    def.data.push(DataConnector { from, to, mappings });
                }
                _ => return Ok(()),
            }
        }
    }

    fn schema(&mut self) -> Result<ContainerSchema, FdlError> {
        self.expect_punct("(")?;
        let mut schema = ContainerSchema::empty();
        if self.peek() == Some(&Tok::Punct(")")) {
            self.bump();
            return Ok(schema);
        }
        loop {
            let name = self.ident()?;
            self.expect_punct(":")?;
            let pos = self.here();
            let ty = match self.bump() {
                Some(Tok::Kw("INT")) => DataType::Int,
                Some(Tok::Kw("STRING")) => DataType::Str,
                Some(Tok::Kw("BOOL")) => DataType::Bool,
                other => {
                    return Err(FdlError::new(
                        pos,
                        format!(
                            "expected a type (INT, STRING, BOOL), found {}",
                            tok_name(other)
                        ),
                    ))
                }
            };
            let default = if self.peek() == Some(&Tok::Kw("DEFAULT")) {
                self.bump();
                let pos = self.here();
                match self.bump() {
                    Some(Tok::Int(n)) => Some(Value::Int(n)),
                    Some(Tok::Str(s)) => Some(Value::Str(s)),
                    other => {
                        return Err(FdlError::new(
                            pos,
                            format!("expected a default literal, found {}", tok_name(other)),
                        ))
                    }
                }
            } else {
                None
            };
            schema.members.push(MemberDecl { name, ty, default });
            match self.bump() {
                Some(Tok::Punct(",")) => continue,
                Some(Tok::Punct(")")) => break,
                other => {
                    return Err(FdlError::new(
                        self.here(),
                        format!("expected ',' or ')', found {}", tok_name(other)),
                    ))
                }
            }
        }
        Ok(schema)
    }

    fn activity(&mut self) -> Result<Activity, FdlError> {
        let pos = self.here();
        self.expect_kw("ACTIVITY")?;
        let name = self.ident()?;
        self.prov.record_activity(&self.cur_path(), &name, pos);
        self.expect_kw("PROGRAM")?;
        let program = self.name()?;
        let mut act = Activity::program(&name, &program);
        self.act_opts(&mut act)?;
        self.expect_kw("END")?;
        Ok(act)
    }

    fn noop(&mut self) -> Result<Activity, FdlError> {
        let pos = self.here();
        self.expect_kw("NOOP")?;
        let name = self.ident()?;
        self.prov.record_activity(&self.cur_path(), &name, pos);
        let mut act = Activity::noop(&name);
        self.act_opts(&mut act)?;
        self.expect_kw("END")?;
        Ok(act)
    }

    fn block(&mut self) -> Result<Activity, FdlError> {
        let pos = self.here();
        self.expect_kw("BLOCK")?;
        let name = self.ident()?;
        // The facade activity lives in the enclosing process; the
        // block body defines a nested process under an extended path.
        self.prov.record_activity(&self.cur_path(), &name, pos);
        self.path.push(name.clone());
        self.prov.record_process(&self.cur_path(), pos);
        let mut inner = ProcessDefinition::new(&name);
        let mut act = Activity::noop(&name); // kind replaced below
                                             // Block bodies interleave activity options (for the block
                                             // facade) with nested body items (for the inner process).
        loop {
            match self.peek() {
                Some(Tok::Kw("START"))
                | Some(Tok::Kw("EXIT"))
                | Some(Tok::Kw("ROLE"))
                | Some(Tok::Kw("PERSON"))
                | Some(Tok::Kw("DEADLINE"))
                | Some(Tok::Kw("MANUAL"))
                | Some(Tok::Kw("AUTOMATIC")) => {
                    self.act_opt(&mut act)?;
                }
                Some(Tok::Kw("DESCRIPTION"))
                | Some(Tok::Kw("INPUT"))
                | Some(Tok::Kw("OUTPUT"))
                | Some(Tok::Kw("ACTIVITY"))
                | Some(Tok::Kw("NOOP"))
                | Some(Tok::Kw("BLOCK"))
                | Some(Tok::Kw("CONTROL"))
                | Some(Tok::Kw("DATA")) => {
                    self.body(&mut inner)?;
                }
                _ => break,
            }
        }
        self.expect_kw("END")?;
        self.path.pop();
        // The block facade's containers mirror the inner process's.
        act.input = inner.input.clone();
        act.output = inner.output.clone();
        act.kind = ActivityKind::Block {
            process: Box::new(inner),
        };
        Ok(act)
    }

    fn act_opts(&mut self, act: &mut Activity) -> Result<(), FdlError> {
        while matches!(
            self.peek(),
            Some(Tok::Kw(
                "DESCRIPTION"
                    | "INPUT"
                    | "OUTPUT"
                    | "START"
                    | "EXIT"
                    | "ROLE"
                    | "PERSON"
                    | "DEADLINE"
                    | "MANUAL"
                    | "AUTOMATIC"
            ))
        ) {
            self.act_opt(act)?;
        }
        Ok(())
    }

    fn act_opt(&mut self, act: &mut Activity) -> Result<(), FdlError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Kw("DESCRIPTION")) => act.description = self.string()?,
            Some(Tok::Kw("INPUT")) => act.input = self.schema()?,
            Some(Tok::Kw("OUTPUT")) => act.output = self.schema()?,
            Some(Tok::Kw("START")) => match self.bump() {
                Some(Tok::Kw("AND")) => act.start = StartCondition::And,
                Some(Tok::Kw("OR")) => act.start = StartCondition::Or,
                other => {
                    return Err(FdlError::new(
                        pos,
                        format!("expected AND or OR after START, found {}", tok_name(other)),
                    ))
                }
            },
            Some(Tok::Kw("EXIT")) => {
                self.expect_kw("WHEN")?;
                act.exit.expr = Some(self.condition()?);
            }
            Some(Tok::Kw("ROLE")) => {
                act.staff = StaffAssignment::Role(self.name()?);
                act.automatic_start = false;
            }
            Some(Tok::Kw("PERSON")) => {
                act.staff = StaffAssignment::Person(self.name()?);
                act.automatic_start = false;
            }
            Some(Tok::Kw("DEADLINE")) => act.deadline = Some(self.int()? as u64),
            Some(Tok::Kw("MANUAL")) => act.automatic_start = false,
            Some(Tok::Kw("AUTOMATIC")) => act.automatic_start = true,
            other => {
                return Err(FdlError::new(
                    pos,
                    format!("unexpected {}", tok_name(other)),
                ))
            }
        }
        Ok(())
    }

    fn endpoint(&mut self) -> Result<DataEndpoint, FdlError> {
        let pos = self.here();
        let owner = match self.bump() {
            Some(Tok::Kw("PROCESS")) => None,
            Some(Tok::Ident(s)) => Some(s),
            other => {
                return Err(FdlError::new(
                    pos,
                    format!(
                        "expected PROCESS or an activity name, found {}",
                        tok_name(other)
                    ),
                ))
            }
        };
        self.expect_punct(".")?;
        let pos = self.here();
        let is_input = match self.bump() {
            Some(Tok::Kw("INPUT")) => true,
            Some(Tok::Kw("OUTPUT")) => false,
            other => {
                return Err(FdlError::new(
                    pos,
                    format!("expected INPUT or OUTPUT, found {}", tok_name(other)),
                ))
            }
        };
        Ok(match (owner, is_input) {
            (None, true) => DataEndpoint::ProcessInput,
            (None, false) => DataEndpoint::ProcessOutput,
            (Some(a), true) => DataEndpoint::ActivityInput(a),
            (Some(a), false) => DataEndpoint::ActivityOutput(a),
        })
    }

    fn mapping(&mut self) -> Result<Mapping, FdlError> {
        let from = self.ident()?;
        self.expect_punct("->")?;
        let to = self.ident()?;
        Ok(Mapping {
            from_member: from,
            to_member: to,
        })
    }
}

fn tok_name(t: Option<Tok>) -> String {
    match t {
        Some(t) => t.to_string(),
        None => "end of input".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
        PROCESS trip_booking VERSION 2
          DESCRIPTION "book a trip"
          INPUT ( budget: INT DEFAULT 100, traveller: STRING )
          OUTPUT ( total: INT )

          ACTIVITY BookFlight PROGRAM "book_flight"
            DESCRIPTION "reserve the flight"
            INPUT ( limit: INT )
            OUTPUT ( price: INT )
            ROLE "agent"
            DEADLINE 50
          END

          ACTIVITY BookHotel PROGRAM "book_hotel"
            OUTPUT ( price: INT )
            EXIT WHEN "RC = 1"
          END

          CONTROL FROM BookFlight TO BookHotel WHEN "RC = 1"
          DATA FROM PROCESS.INPUT TO BookFlight.INPUT MAP budget -> limit
          DATA FROM BookHotel.OUTPUT TO PROCESS.OUTPUT MAP price -> total
        END
    "#;

    #[test]
    fn parses_demo_process() {
        let def = parse(DEMO).unwrap();
        assert_eq!(def.name, "trip_booking");
        assert_eq!(def.version, 2);
        assert_eq!(def.description, "book a trip");
        assert_eq!(def.activities.len(), 2);
        let bf = def.activity("BookFlight").unwrap();
        assert_eq!(bf.staff, StaffAssignment::Role("agent".into()));
        assert!(!bf.automatic_start);
        assert_eq!(bf.deadline, Some(50));
        let bh = def.activity("BookHotel").unwrap();
        assert!(bh.exit.expr.is_some());
        assert_eq!(def.control.len(), 1);
        assert_eq!(def.data.len(), 2);
        assert_eq!(
            def.input.member("budget").unwrap().default,
            Some(Value::Int(100))
        );
    }

    #[test]
    fn demo_validates() {
        assert!(parse_and_validate(DEMO).is_ok());
    }

    #[test]
    fn blocks_nest() {
        let src = r#"
            PROCESS outer
              BLOCK Fwd
                OUTPUT ( RC: INT )
                EXIT WHEN "RC = 1"
                ACTIVITY T1 PROGRAM "p1" END
                ACTIVITY T2 PROGRAM "p2" END
                CONTROL FROM T1 TO T2 WHEN "RC = 1"
                DATA FROM T2.OUTPUT TO PROCESS.OUTPUT MAP RC -> RC
              END
            END
        "#;
        let def = parse_and_validate(src).unwrap();
        let block = def.activity("Fwd").unwrap();
        assert!(block.kind.is_block());
        assert!(block.exit.expr.is_some(), "EXIT applies to the facade");
        match &block.kind {
            ActivityKind::Block { process } => {
                assert_eq!(process.activities.len(), 2);
                assert_eq!(process.name, "Fwd");
            }
            _ => unreachable!(),
        }
        assert!(block.output.has("RC"), "facade mirrors inner output");
    }

    #[test]
    fn noop_and_or_start() {
        let src = r#"
            PROCESS p
              NOOP Nop START OR END
              ACTIVITY A PROGRAM "pa" END
              CONTROL FROM A TO Nop WHEN "RC = 0"
            END
        "#;
        let def = parse(src).unwrap();
        let nop = def.activity("Nop").unwrap();
        assert_eq!(nop.kind, ActivityKind::NoOp);
        assert_eq!(nop.start, StartCondition::Or);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse("PROCESS p ACTIVITY END END").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(err.msg.contains("identifier"));

        let err2 =
            parse("PROCESS p ACTIVITY A PROGRAM \"x\" EXIT WHEN \"AND\" END END").unwrap_err();
        assert!(err2.msg.contains("invalid condition"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("PROCESS p END leftover").is_err());
    }

    #[test]
    fn validation_errors_reported() {
        let errs = parse_and_validate(
            "PROCESS p ACTIVITY A PROGRAM \"x\" END CONTROL FROM A TO Ghost END",
        )
        .unwrap_err();
        assert!(errs[0].msg.contains("Ghost"));
    }

    #[test]
    fn validation_errors_carry_source_positions() {
        let src = "PROCESS p\n  ACTIVITY A PROGRAM \"x\" END\n  CONTROL FROM A TO Ghost\nEND";
        let errs = parse_and_validate(src).unwrap_err();
        assert!(errs[0].msg.contains("Ghost"));
        // Position of the CONTROL keyword on line 3.
        assert_eq!(errs[0].pos.line, 3);
        assert!(errs[0].pos.col >= 1);
    }

    #[test]
    fn provenance_records_element_positions() {
        let (def, prov) = parse_with_provenance(DEMO).unwrap();
        assert_eq!(def.name, "trip_booking");
        let proc_pos = prov.process("trip_booking").unwrap();
        let act_pos = prov.activity("trip_booking", "BookFlight").unwrap();
        let ctl_pos = prov
            .control("trip_booking", "BookFlight", "BookHotel")
            .unwrap();
        let data_pos = prov
            .data("trip_booking", "PROCESS.INPUT => BookFlight.INPUT")
            .unwrap();
        assert!(proc_pos.line >= 1);
        assert!(act_pos.line > proc_pos.line, "activity after header");
        assert!(ctl_pos.line > act_pos.line, "connector after activities");
        assert!(data_pos.line > ctl_pos.line);
        assert!(prov.activity("trip_booking", "Ghost").is_none());
    }

    #[test]
    fn provenance_paths_follow_nested_blocks() {
        let src = r#"
            PROCESS outer
              BLOCK Fwd
                OUTPUT ( RC: INT )
                ACTIVITY T1 PROGRAM "p1" END
              END
            END
        "#;
        let (_, prov) = parse_with_provenance(src).unwrap();
        // Facade activity in the enclosing process, inner elements
        // under the slash path used by the validator.
        assert!(prov.activity("outer", "Fwd").is_some());
        assert!(prov.process("outer/Fwd").is_some());
        assert!(prov.activity("outer/Fwd", "T1").is_some());
        assert!(prov.activity("outer", "T1").is_none());
    }

    #[test]
    fn person_assignment_and_manual() {
        let src = r#"
            PROCESS p
              ACTIVITY A PROGRAM "x" PERSON "ann" END
              ACTIVITY B PROGRAM "y" MANUAL END
              ACTIVITY C PROGRAM "z" ROLE "r" AUTOMATIC END
            END
        "#;
        let def = parse(src).unwrap();
        assert_eq!(
            def.activity("A").unwrap().staff,
            StaffAssignment::Person("ann".into())
        );
        assert!(!def.activity("B").unwrap().automatic_start);
        // AUTOMATIC after ROLE re-enables engine start.
        assert!(def.activity("C").unwrap().automatic_start);
    }

    #[test]
    fn empty_schema_allowed() {
        let def = parse("PROCESS p ACTIVITY A PROGRAM \"x\" INPUT ( ) END END").unwrap();
        assert!(def.activity("A").unwrap().input.members.is_empty());
    }
}
