//! Source provenance: maps compiled process elements back to the FDL
//! positions they were parsed from.
//!
//! The compiled [`wfms_model::ProcessDefinition`] deliberately carries
//! no source spans — it can be built programmatically, imported from
//! FDL, or emitted by the Exotica translator. When a definition *does*
//! come from FDL text, the parser records a [`Provenance`] side table
//! so later passes (validation, the `wfms-analyzer` lint battery) can
//! report findings at the line and column of the originating element
//! instead of position-less diagnostics.
//!
//! Elements are keyed by the slash-separated process path used by
//! [`wfms_model::validate()`] (`outer/inner` for a block named `inner`
//! inside `outer`) plus the element's own label. When the same label
//! occurs twice (e.g. a duplicate activity), the *last* occurrence
//! wins, which points duplicate-definition diagnostics at the second,
//! offending occurrence.

use crate::diag::Pos;
use std::collections::BTreeMap;
use wfms_model::ValidationError;

/// Key separator — a control character that cannot appear in FDL
/// identifiers, quoted names, or connector labels produced by the
/// parser, so composite keys cannot collide.
const SEP: char = '\u{1}';

/// Kind tags for composite keys.
const KIND_PROCESS: char = 'P';
const KIND_ACTIVITY: char = 'A';
const KIND_CONTROL: char = 'C';
const KIND_DATA: char = 'D';

/// Side table mapping compiled elements to FDL source positions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    map: BTreeMap<String, Pos>,
}

fn key(kind: char, path: &str, label: &str) -> String {
    format!("{path}{SEP}{kind}{SEP}{label}")
}

impl Provenance {
    /// Records the position of a (possibly nested) process header.
    pub(crate) fn record_process(&mut self, path: &str, pos: Pos) {
        self.map.insert(key(KIND_PROCESS, path, ""), pos);
    }

    /// Records the position of an activity, no-op, or block header.
    pub(crate) fn record_activity(&mut self, path: &str, name: &str, pos: Pos) {
        self.map.insert(key(KIND_ACTIVITY, path, name), pos);
    }

    /// Records the position of a control connector (`CONTROL` keyword).
    pub(crate) fn record_control(&mut self, path: &str, from: &str, to: &str, pos: Pos) {
        self.map
            .insert(key(KIND_CONTROL, path, &control_label(from, to)), pos);
    }

    /// Records the position of a data connector (`DATA` keyword),
    /// keyed by the validator's `from => to` label.
    pub(crate) fn record_data(&mut self, path: &str, label: &str, pos: Pos) {
        self.map.insert(key(KIND_DATA, path, label), pos);
    }

    /// Position of the `PROCESS`/`BLOCK` header for a process path.
    pub fn process(&self, path: &str) -> Option<Pos> {
        self.map.get(&key(KIND_PROCESS, path, "")).copied()
    }

    /// Position of an activity (or no-op, or block facade) by name.
    pub fn activity(&self, path: &str, name: &str) -> Option<Pos> {
        self.map.get(&key(KIND_ACTIVITY, path, name)).copied()
    }

    /// Position of the control connector `from -> to`.
    pub fn control(&self, path: &str, from: &str, to: &str) -> Option<Pos> {
        self.map
            .get(&key(KIND_CONTROL, path, &control_label(from, to)))
            .copied()
    }

    /// Position of a data connector by its `from => to` label.
    pub fn data(&self, path: &str, label: &str) -> Option<Pos> {
        self.map.get(&key(KIND_DATA, path, label)).copied()
    }

    /// Number of recorded element positions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no positions were recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Best-effort position for a container label as used by the
    /// validator: `X.INPUT`/`X.OUTPUT` resolve to activity `X`,
    /// `PROCESS.INPUT`/`PROCESS.OUTPUT` to the process header.
    fn container(&self, path: &str, container: &str) -> Option<Pos> {
        let owner = container.split('.').next().unwrap_or(container);
        if owner == "PROCESS" {
            self.process(path)
        } else {
            self.activity(path, owner).or_else(|| self.process(path))
        }
    }

    /// Position of a condition by the validator's location label
    /// (`control connector A -> B` or `exit condition of X`).
    fn condition_location(&self, path: &str, location: &str) -> Option<Pos> {
        if let Some(label) = location.strip_prefix("control connector ") {
            self.map.get(&key(KIND_CONTROL, path, label)).copied()
        } else if let Some(name) = location.strip_prefix("exit condition of ") {
            self.activity(path, name)
        } else {
            None
        }
        .or_else(|| self.process(path))
    }

    /// Maps a validation finding to the position of the element it
    /// concerns, falling back to the enclosing process header and
    /// finally `None` for definitions not built from FDL text.
    pub fn locate(&self, err: &ValidationError) -> Option<Pos> {
        use ValidationError::*;
        match err {
            EmptyProcess { process } | Cycle { process } => self.process(process),
            DuplicateActivity { process, activity }
            | MissingProgramName { process, activity }
            | SelfLoop { process, activity }
            | BlockContainerMismatch {
                process, activity, ..
            } => self
                .activity(process, activity)
                .or_else(|| self.process(process)),
            DuplicateMember {
                process, container, ..
            }
            | ReservedRcWrongType { process, container } => self.container(process, container),
            UnknownEndpoint {
                process, connector, ..
            } => self
                .map
                .get(&key(KIND_CONTROL, process, connector))
                .copied()
                .or_else(|| self.process(process)),
            DuplicateControl { process, from, to } => self
                .control(process, from, to)
                .or_else(|| self.process(process)),
            BadDataDirection { process, connector }
            | UnknownDataActivity {
                process, connector, ..
            }
            | UnknownMember {
                process, connector, ..
            }
            | MappingTypeMismatch {
                process, connector, ..
            }
            | DataAgainstControlFlow { process, connector } => self
                .data(process, connector)
                .or_else(|| self.process(process)),
            UnresolvedConditionVar {
                process, location, ..
            } => self.condition_location(process, location),
        }
    }
}

/// The validator's label for a control connector.
fn control_label(from: &str, to: &str) -> String {
    format!("{from} -> {to}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_looks_up_elements() {
        let mut prov = Provenance::default();
        prov.record_process("p", Pos { line: 1, col: 1 });
        prov.record_activity("p", "A", Pos { line: 2, col: 3 });
        prov.record_control("p", "A", "B", Pos { line: 5, col: 3 });
        prov.record_data("p", "A.OUTPUT => B.INPUT", Pos { line: 6, col: 3 });
        assert_eq!(prov.process("p"), Some(Pos { line: 1, col: 1 }));
        assert_eq!(prov.activity("p", "A"), Some(Pos { line: 2, col: 3 }));
        assert_eq!(prov.control("p", "A", "B"), Some(Pos { line: 5, col: 3 }));
        assert_eq!(
            prov.data("p", "A.OUTPUT => B.INPUT"),
            Some(Pos { line: 6, col: 3 })
        );
        assert_eq!(prov.activity("p", "Ghost"), None);
        assert_eq!(prov.len(), 4);
        assert!(!prov.is_empty());
    }

    #[test]
    fn duplicate_records_keep_last_occurrence() {
        let mut prov = Provenance::default();
        prov.record_activity("p", "A", Pos { line: 2, col: 3 });
        prov.record_activity("p", "A", Pos { line: 7, col: 3 });
        assert_eq!(prov.activity("p", "A"), Some(Pos { line: 7, col: 3 }));
    }

    #[test]
    fn locate_maps_validation_errors() {
        let mut prov = Provenance::default();
        prov.record_process("p", Pos { line: 1, col: 1 });
        prov.record_activity("p", "A", Pos { line: 2, col: 3 });
        prov.record_control("p", "A", "Ghost", Pos { line: 5, col: 3 });

        let pos = prov.locate(&ValidationError::UnknownEndpoint {
            process: "p".into(),
            connector: "A -> Ghost".into(),
            endpoint: "Ghost".into(),
        });
        assert_eq!(pos, Some(Pos { line: 5, col: 3 }));

        let pos = prov.locate(&ValidationError::MissingProgramName {
            process: "p".into(),
            activity: "A".into(),
        });
        assert_eq!(pos, Some(Pos { line: 2, col: 3 }));

        let pos = prov.locate(&ValidationError::UnresolvedConditionVar {
            process: "p".into(),
            location: "control connector A -> Ghost".into(),
            var: "x".into(),
        });
        assert_eq!(pos, Some(Pos { line: 5, col: 3 }));

        // Unknown elements fall back to the process header.
        let pos = prov.locate(&ValidationError::SelfLoop {
            process: "p".into(),
            activity: "Z".into(),
        });
        assert_eq!(pos, Some(Pos { line: 1, col: 1 }));

        // Definitions not built from FDL have no positions at all.
        let empty = Provenance::default();
        assert_eq!(
            empty.locate(&ValidationError::EmptyProcess {
                process: "p".into()
            }),
            None
        );
    }
}
