//! The FDL emitter: [`ProcessDefinition`] → canonical FDL text.
//!
//! This is the output format of the Exotica/FMTM pre-processor
//! (Figure 5: "it then takes the user specification and converts it
//! into a FlowMark process in FDL format"). Emission is canonical —
//! stable member order, explicit conditions — so `parse(emit(d))`
//! reproduces `d` structurally (the round-trip property tests pin
//! this).

use txn_substrate::Value;
use wfms_model::{
    Activity, ActivityKind, ContainerSchema, DataEndpoint, Expr, ProcessDefinition,
    StaffAssignment, StartCondition,
};

/// Renders a process definition as FDL text.
pub fn emit(def: &ProcessDefinition) -> String {
    let mut out = String::new();
    emit_process(def, 0, &mut out, true);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn emit_process(def: &ProcessDefinition, level: usize, out: &mut String, top: bool) {
    if top {
        indent(out, level);
        out.push_str(&format!(
            "PROCESS {} VERSION {}\n",
            quote_if_needed(&def.name),
            def.version
        ));
    }
    let inner = level + 1;
    if !def.description.is_empty() {
        indent(out, inner);
        out.push_str(&format!("DESCRIPTION {}\n", quote(&def.description)));
    }
    if !def.input.members.is_empty() {
        indent(out, inner);
        out.push_str(&format!("INPUT {}\n", schema(&def.input)));
    }
    if !def.output.members.is_empty() {
        indent(out, inner);
        out.push_str(&format!("OUTPUT {}\n", schema(&def.output)));
    }
    for act in &def.activities {
        emit_activity(act, inner, out);
    }
    for c in &def.control {
        indent(out, inner);
        if c.condition == Expr::truth() {
            out.push_str(&format!("CONTROL FROM {} TO {}\n", c.from, c.to));
        } else {
            out.push_str(&format!(
                "CONTROL FROM {} TO {} WHEN {}\n",
                c.from,
                c.to,
                quote(&c.condition.to_string())
            ));
        }
    }
    for d in &def.data {
        indent(out, inner);
        let maps: Vec<String> = d
            .mappings
            .iter()
            .map(|m| format!("{} -> {}", m.from_member, m.to_member))
            .collect();
        out.push_str(&format!(
            "DATA FROM {} TO {} MAP {}\n",
            endpoint(&d.from),
            endpoint(&d.to),
            maps.join(", ")
        ));
    }
    if top {
        indent(out, level);
        out.push_str("END\n");
    }
}

fn emit_activity(act: &Activity, level: usize, out: &mut String) {
    indent(out, level);
    match &act.kind {
        ActivityKind::Program { program } => {
            out.push_str(&format!(
                "ACTIVITY {} PROGRAM {}\n",
                act.name,
                quote(program)
            ));
            emit_act_opts(act, level + 1, out);
            indent(out, level);
            out.push_str("END\n");
        }
        ActivityKind::NoOp => {
            out.push_str(&format!("NOOP {}\n", act.name));
            emit_act_opts(act, level + 1, out);
            indent(out, level);
            out.push_str("END\n");
        }
        ActivityKind::Block { process } => {
            out.push_str(&format!("BLOCK {}\n", act.name));
            // Facade options first (the block's own start/exit/staff);
            // containers come from the inner process.
            emit_act_opts_no_containers(act, level + 1, out);
            emit_process(process, level, out, false);
            indent(out, level);
            out.push_str("END\n");
        }
    }
}

fn emit_act_opts(act: &Activity, level: usize, out: &mut String) {
    if !act.input.members.is_empty() {
        indent(out, level);
        out.push_str(&format!("INPUT {}\n", schema(&act.input)));
    }
    if !act.output.members.is_empty() {
        indent(out, level);
        out.push_str(&format!("OUTPUT {}\n", schema(&act.output)));
    }
    emit_act_opts_no_containers(act, level, out);
    if !act.description.is_empty() {
        indent(out, level);
        out.push_str(&format!("DESCRIPTION {}\n", quote(&act.description)));
    }
}

fn emit_act_opts_no_containers(act: &Activity, level: usize, out: &mut String) {
    if act.start == StartCondition::Or {
        indent(out, level);
        out.push_str("START OR\n");
    }
    if let Some(expr) = &act.exit.expr {
        indent(out, level);
        out.push_str(&format!("EXIT WHEN {}\n", quote(&expr.to_string())));
    }
    match &act.staff {
        StaffAssignment::Automatic => {}
        StaffAssignment::Role(r) => {
            indent(out, level);
            out.push_str(&format!("ROLE {}\n", quote(r)));
        }
        StaffAssignment::Person(p) => {
            indent(out, level);
            out.push_str(&format!("PERSON {}\n", quote(p)));
        }
    }
    if let Some(d) = act.deadline {
        indent(out, level);
        out.push_str(&format!("DEADLINE {d}\n"));
    }
    // MANUAL only needs stating when no staff assignment implies it;
    // AUTOMATIC only when a staff assignment would imply manual.
    match (&act.staff, act.automatic_start) {
        (StaffAssignment::Automatic, false) => {
            indent(out, level);
            out.push_str("MANUAL\n");
        }
        (StaffAssignment::Role(_) | StaffAssignment::Person(_), true) => {
            indent(out, level);
            out.push_str("AUTOMATIC\n");
        }
        _ => {}
    }
}

fn schema(s: &ContainerSchema) -> String {
    let members: Vec<String> = s
        .members
        .iter()
        .map(|m| {
            let base = format!("{}: {}", m.name, m.ty);
            match &m.default {
                Some(Value::Int(n)) => format!("{base} DEFAULT {n}"),
                Some(Value::Str(st)) => format!("{base} DEFAULT {}", quote(st)),
                // BOOL defaults and bytes are not representable in FDL;
                // the type's neutral default applies.
                _ => base,
            }
        })
        .collect();
    format!("( {} )", members.join(", "))
}

fn endpoint(e: &DataEndpoint) -> String {
    match e {
        DataEndpoint::ProcessInput => "PROCESS.INPUT".into(),
        DataEndpoint::ProcessOutput => "PROCESS.OUTPUT".into(),
        DataEndpoint::ActivityInput(a) => format!("{a}.INPUT"),
        DataEndpoint::ActivityOutput(a) => format!("{a}.OUTPUT"),
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\\\""))
}

fn quote_if_needed(s: &str) -> String {
    if !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && s.chars()
            .next()
            .map(|c| !c.is_ascii_digit())
            .unwrap_or(false)
        && !crate::lexer::KEYWORDS.contains(&s.to_ascii_uppercase().as_str())
    {
        s.to_owned()
    } else {
        quote(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use wfms_model::{ContainerSchema, DataType, ProcessBuilder};

    #[test]
    fn emit_then_parse_round_trips_structurally() {
        let def = ProcessBuilder::new("demo")
            .describe("round trip")
            .input(ContainerSchema::of(&[("seed", DataType::Int)]))
            .output(ContainerSchema::of(&[("result", DataType::Str)]))
            .activity(
                wfms_model::Activity::program("A", "prog_a")
                    .with_output(ContainerSchema::of(&[("x", DataType::Int)]))
                    .with_exit("RC = 1")
                    .for_role("clerk")
                    .with_deadline(10),
            )
            .activity(
                wfms_model::Activity::program("B", "prog_b")
                    .with_input(ContainerSchema::of(&[("y", DataType::Int)]))
                    .or_start(),
            )
            .connect_when("A", "B", "RC = 1 AND x > 3")
            .map_data("A", "B", &[("x", "y")])
            .build()
            .unwrap();
        let text = emit(&def);
        let back = parse(&text).unwrap();
        assert_eq!(back, def, "FDL:\n{text}");
    }

    #[test]
    fn blocks_round_trip() {
        let inner = ProcessBuilder::new("Fwd")
            .output(ContainerSchema::of(&[("RC", DataType::Int)]))
            .program("T1", "p1")
            .program("T2", "p2")
            .connect_when("T1", "T2", "RC = 1")
            .map_to_process_output("T2", &[("RC", "RC")])
            .build_unchecked();
        let mut def = ProcessBuilder::new("outer")
            .block("Fwd", inner)
            .build()
            .unwrap();
        def.activities[0].exit = wfms_model::process::ExitCondition::when("RC = 1");
        let text = emit(&def);
        let back = parse(&text).unwrap();
        assert_eq!(back, def, "FDL:\n{text}");
    }

    #[test]
    fn names_needing_quotes_are_quoted() {
        let def = ProcessBuilder::new("has spaces")
            .program("A", "p")
            .build()
            .unwrap();
        let text = emit(&def);
        assert!(text.contains("PROCESS \"has spaces\""));
        assert_eq!(parse(&text).unwrap().name, "has spaces");
    }

    #[test]
    fn keyword_name_is_quoted() {
        let def = ProcessBuilder::new("process")
            .program("A", "p")
            .build()
            .unwrap();
        let text = emit(&def);
        assert!(text.contains("PROCESS \"process\""));
        assert_eq!(parse(&text).unwrap().name, "process");
    }

    #[test]
    fn defaults_round_trip() {
        let mut schema = ContainerSchema::empty();
        schema.members.push(wfms_model::MemberDecl::with_default(
            "n",
            DataType::Int,
            Value::Int(5),
        ));
        schema.members.push(wfms_model::MemberDecl::with_default(
            "s",
            DataType::Str,
            Value::Str("x \"y\"".into()),
        ));
        let def = ProcessBuilder::new("d")
            .input(schema)
            .program("A", "p")
            .build()
            .unwrap();
        let back = parse(&emit(&def)).unwrap();
        assert_eq!(back.input, def.input);
    }

    #[test]
    fn manual_automatic_flags_round_trip() {
        let mut def = ProcessBuilder::new("m").program("A", "p").build().unwrap();
        def.activities[0].automatic_start = false; // manual, no staff
        let back = parse(&emit(&def)).unwrap();
        assert!(!back.activity("A").unwrap().automatic_start);

        let mut def2 = ProcessBuilder::new("m2")
            .activity(wfms_model::Activity::program("A", "p").for_role("r"))
            .build()
            .unwrap();
        def2.activities[0].automatic_start = true; // role but automatic
        let back2 = parse(&emit(&def2)).unwrap();
        assert!(back2.activity("A").unwrap().automatic_start);
    }
}
