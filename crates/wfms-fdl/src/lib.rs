//! # wfms-fdl
//!
//! FDL — a FlowMark-Definition-Language-style textual format for
//! workflow process definitions, reproducing the import/export stage
//! of the paper's Figure 5 pipeline:
//!
//! ```text
//! ATM specification --Exotica/FMTM--> FDL --import--> ProcessDefinition
//!                                           (parse)    (validate)
//! ```
//!
//! * [`parse`] — FDL text → [`wfms_model::ProcessDefinition`], with
//!   positioned syntax diagnostics.
//! * [`parse_and_validate`] — additionally runs the meta-model's
//!   static validation (the Figure 5 "translator checks the
//!   semantics" stage), attaching the source position of each
//!   offending element.
//! * [`parse_with_provenance`] — also returns a [`Provenance`] side
//!   table mapping compiled elements (activities, connectors, nested
//!   blocks) back to their FDL positions, for downstream analyses
//!   such as the `wfms-analyzer` lint battery.
//! * [`emit()`](emit::emit) — canonical FDL text from a definition;
//!   `parse(emit(d)) == d` structurally.
//!
//! ```
//! let src = r#"
//!     PROCESS hello
//!       ACTIVITY Greet PROGRAM "say_hi" END
//!     END
//! "#;
//! let def = wfms_fdl::parse_and_validate(src).unwrap();
//! assert_eq!(def.name, "hello");
//! let round = wfms_fdl::parse(&wfms_fdl::emit(&def)).unwrap();
//! assert_eq!(round, def);
//! ```

pub mod diag;
pub mod emit;
pub mod lexer;
pub mod parser;
pub mod provenance;

pub use diag::{FdlError, Pos};
pub use emit::emit;
pub use parser::{parse, parse_and_validate, parse_with_provenance};
pub use provenance::Provenance;
