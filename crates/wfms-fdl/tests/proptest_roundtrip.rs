//! Property-based FDL round-trip: for generated process definitions,
//! `parse(emit(def)) == def` structurally — including nested blocks,
//! container defaults, staff assignments and conditions.
//!
//! Known representational limits of the concrete syntax (documented in
//! the emitter): BOOL container defaults, backslashes in strings, and
//! descriptions on block facades are not representable; the generator
//! stays inside the representable set.

use proptest::prelude::*;
use txn_substrate::Value;
use wfms_fdl::{emit, parse};
use wfms_model::{
    Activity, ContainerSchema, ControlConnector, DataConnector, DataEndpoint, DataType, Expr,
    Mapping, MemberDecl, ProcessDefinition, StaffAssignment, StartCondition,
};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !wfms_fdl::lexer::KEYWORDS.contains(&s.to_ascii_uppercase().as_str())
    })
}

/// Strings representable in FDL string literals.
fn fdl_string() -> impl Strategy<Value = String> {
    "[ -~&&[^\\\\]]{0,12}" // printable ASCII minus backslash
}

fn datatype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Str),
        Just(DataType::Bool)
    ]
}

fn member() -> impl Strategy<Value = MemberDecl> {
    (
        ident(),
        datatype(),
        prop::option::of(prop_oneof![
            (-50i64..50).prop_map(Value::Int),
            fdl_string().prop_map(Value::Str),
        ]),
    )
        .prop_map(|(name, ty, default)| {
            // Defaults must be type-correct to be meaningful, and BOOL
            // defaults are not representable; drop mismatches.
            let default = match (&ty, default) {
                (DataType::Int, Some(Value::Int(n))) => Some(Value::Int(n)),
                (DataType::Str, Some(Value::Str(s))) => Some(Value::Str(s)),
                _ => None,
            };
            MemberDecl { name, ty, default }
        })
}

fn schema() -> impl Strategy<Value = ContainerSchema> {
    prop::collection::vec(member(), 0..4).prop_map(|members| {
        // Deduplicate member names (duplicates are a validation error
        // and make structural round-trip comparison ambiguous).
        let mut seen = std::collections::BTreeSet::new();
        ContainerSchema {
            members: members
                .into_iter()
                .filter(|m| seen.insert(m.name.clone()))
                .collect(),
        }
    })
}

fn condition() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::truth()),
        (-5i64..5).prop_map(|n| Expr::var_eq_int("RC", n)),
        (ident(), -5i64..5).prop_map(|(v, n)| Expr::var_eq_int(&v, n)),
        ((-5i64..5), (-5i64..5)).prop_map(|(a, b)| Expr::And(
            Box::new(Expr::var_eq_int("RC", a)),
            Box::new(Expr::var_eq_int("State_1", b)),
        )),
    ]
}

fn staff() -> impl Strategy<Value = StaffAssignment> {
    prop_oneof![
        Just(StaffAssignment::Automatic),
        fdl_string().prop_map(StaffAssignment::Role),
        fdl_string().prop_map(StaffAssignment::Person),
    ]
}

fn base_activity(name: String) -> impl Strategy<Value = Activity> {
    (
        fdl_string(),
        schema(),
        schema(),
        prop_oneof![Just(StartCondition::And), Just(StartCondition::Or)],
        prop::option::of(condition()),
        staff(),
        prop::option::of(0u64..1000),
        any::<bool>(),
        prop_oneof![Just("prog"), Just("other_prog")],
        any::<bool>(),
    )
        .prop_map(
            move |(desc, input, output, start, exit, staff, deadline, auto, prog, noop)| {
                let mut a = if noop {
                    Activity::noop(&name)
                } else {
                    Activity::program(&name, prog)
                };
                a.description = desc;
                a.input = input;
                a.output = output;
                a.start = start;
                a.exit.expr = exit;
                a.staff = staff;
                a.deadline = deadline;
                a.automatic_start = auto;
                a
            },
        )
}

/// A definition with `n` uniquely named activities (one may be a
/// block), forward-only connectors and consistent data connectors.
fn definition() -> impl Strategy<Value = ProcessDefinition> {
    (2usize..6).prop_flat_map(|n| {
        let names: Vec<String> = (0..n).map(|i| format!("Act{i}")).collect();
        let acts: Vec<_> = names
            .iter()
            .map(|nm| base_activity(nm.clone()).boxed())
            .collect();
        (
            ident(),
            1u32..9,
            fdl_string(),
            schema(),
            schema(),
            acts,
            prop::collection::vec((0usize..n, 0usize..n, condition()), 0..6),
            any::<bool>(),
        )
            .prop_map(
                move |(name, version, desc, input, output, mut activities, edges, with_block)| {
                    // Optionally turn the last activity into a block
                    // embedding a one-activity process.
                    if with_block {
                        let last = activities.last_mut().expect("n >= 2");
                        let mut inner = ProcessDefinition::new(&last.name);
                        inner.description = String::new();
                        inner.input = last.input.clone();
                        inner.output = last.output.clone();
                        inner.activities.push(Activity::program("Inner0", "p"));
                        last.description = String::new(); // not representable on blocks
                        last.kind = wfms_model::ActivityKind::Block {
                            process: Box::new(inner),
                        };
                    }
                    let mut def = ProcessDefinition::new(&name);
                    def.version = version;
                    def.description = desc;
                    def.input = input;
                    def.output = output;
                    let names: Vec<String> = activities.iter().map(|a| a.name.clone()).collect();
                    def.activities = activities;
                    // Forward-only, deduplicated edges.
                    let mut seen = std::collections::BTreeSet::new();
                    for (a, b, cond) in edges {
                        let (a, b) = (a.min(b), a.max(b));
                        if a == b || !seen.insert((a, b)) {
                            continue;
                        }
                        def.control.push(ControlConnector {
                            from: names[a].clone(),
                            to: names[b].clone(),
                            condition: cond,
                        });
                    }
                    // One data connector along the first edge, if any.
                    if let Some(c) = def.control.first() {
                        let from_act = c.from.clone();
                        let to_act = c.to.clone();
                        def.data.push(DataConnector {
                            from: DataEndpoint::ActivityOutput(from_act),
                            to: DataEndpoint::ActivityInput(to_act),
                            mappings: vec![Mapping::new("m1", "m2")],
                        });
                        def.data.push(DataConnector {
                            from: DataEndpoint::ProcessInput,
                            to: DataEndpoint::ActivityInput(c.to.clone()),
                            mappings: vec![Mapping::new("p", "q")],
                        });
                        def.data.push(DataConnector {
                            from: DataEndpoint::ActivityOutput(c.from.clone()),
                            to: DataEndpoint::ProcessOutput,
                            mappings: vec![Mapping::new("r", "s")],
                        });
                    }
                    def
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The emitter's output re-imports to a structurally identical
    /// definition.
    #[test]
    fn emit_parse_round_trip(def in definition()) {
        let text = emit(&def);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- FDL ---\n{text}"));
        prop_assert_eq!(back, def, "--- FDL ---\n{}", text);
    }

    /// Emission is canonical: emitting the reparsed definition yields
    /// the same text (fixed point after one round).
    #[test]
    fn emission_is_a_fixed_point(def in definition()) {
        let text = emit(&def);
        let back = parse(&text).unwrap();
        prop_assert_eq!(emit(&back), text);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parse_never_panics(s in "\\PC{0,80}") {
        let _ = parse(&s);
    }
}
