//! The service front end: a non-blocking, epoll-backed event loop.
//!
//! One or more **reactor** threads share the listening socket (each
//! registers it `EPOLLEXCLUSIVE`, so the kernel wakes exactly one per
//! pending accept) and own the sockets they accept for the life of
//! the connection. Each connection carries an incremental
//! [`http::Decoder`] — a single readiness event may deliver half a
//! request or a dozen pipelined ones, and both parse without
//! blocking — plus a FIFO of *response slots* that keeps pipelined
//! replies in request order even when they complete out of order.
//!
//! Read-path routes (status, worklist, metrics, health) answer
//! synchronously on the reactor. Submissions are dispatched to the
//! owning shard through [`ShardPool::submit_with`], which fires a
//! completion **after the shard's group commit**; the completion
//! lands in the reactor's queue (woken via eventfd), fills its
//! response slot, and is written out together with every other reply
//! from the same batch — one flush, one wake, one `writev`-sized
//! burst. A `201` on the wire therefore still implies the start is on
//! disk. Admin drain/stop run on short-lived helper threads (they
//! block on shard barriers) and complete through the same queue.
//!
//! Lifecycle: [`Server::start`] binds and serves immediately;
//! [`Server::wait_stop`] blocks the caller until `POST /admin/stop`
//! (or [`Server::shutdown`] from another thread); shutdown drains the
//! pool — every queued submission is processed and flushed, shard
//! journals are checkpointed — unless the caller asks for an abrupt
//! stop to simulate a crash.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use wfms_engine::{EngineError, InstanceStatus, WorklistError};
use wfms_model::Container;

use crate::api::*;
use crate::http::{self, render_response, HttpError, Request};
use crate::poll::{
    Epoll, Waker, EPOLLERR, EPOLLEXCLUSIVE, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::shard::{
    DeployReport, MigrationPolicy, PoolError, ShardPool, SubmitDispatch, SubmitReply,
};
use crate::tenant::{bearer_token, parse_tenants, Tenant};

/// Epoll events drained per wait.
const MAX_EVENTS: usize = 256;
/// Socket read granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Maximum responses (pending or rendered) queued per connection;
/// beyond this the reactor stops reading the connection until the
/// pipeline drains — backpressure instead of unbounded buffering.
const MAX_PIPELINE: usize = 128;
/// Maximum unparsed bytes buffered per connection before reads pause.
const MAX_UNPARSED: usize = 256 * 1024;
/// Idle-connection sweep cadence (also the epoll wait bound).
const SWEEP_EVERY: Duration = Duration::from_millis(500);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Server configuration.
pub struct ServerConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub addr: String,
    /// Port to bind; `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Process started by `POST /instances` when the body names none.
    pub default_process: String,
    /// Idle keep-alive connections are closed after this long.
    pub read_timeout: Duration,
    /// Reactor (event-loop) threads; `0` = one per core, capped by
    /// the shard count (more reactors than shards just contend).
    pub reactors: usize,
    /// Tenants file this server was started from, if tenancy is
    /// enabled; `POST /admin/reload-tenants` re-reads it.
    pub tenants_path: Option<PathBuf>,
}

impl ServerConfig {
    /// Loopback defaults with an ephemeral port.
    pub fn new(default_process: impl Into<String>) -> Self {
        Self {
            addr: "127.0.0.1".to_owned(),
            port: 0,
            default_process: default_process.into(),
            read_timeout: Duration::from_secs(30),
            reactors: 0,
            tenants_path: None,
        }
    }
}

struct ServerState {
    pool: Arc<ShardPool>,
    draining: AtomicBool,
    stopping: AtomicBool,
    default_process: String,
    stop_tx: SyncSender<()>,
    tenants_path: Option<PathBuf>,
}

/// A deferred route completion, produced off-reactor and delivered
/// through [`ReactorShared`].
enum Completion {
    /// A submit acknowledged after its shard's group commit.
    Submit {
        conn: u64,
        slot: u64,
        reply: SubmitReply,
        close: bool,
    },
    /// An admin drain/stop finished on its helper thread.
    Admin {
        conn: u64,
        slot: u64,
        result: Result<usize, String>,
        close: bool,
        stop: bool,
    },
    /// A template deploy finished on its helper thread.
    Deploy {
        conn: u64,
        slot: u64,
        result: Result<DeployReport, (u16, String)>,
        close: bool,
    },
}

/// The cross-thread half of one reactor: completion queue + waker.
struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl ReactorShared {
    fn post(&self, completion: Completion) {
        let was_empty = {
            let mut queue = self.completions.lock();
            let was_empty = queue.is_empty();
            queue.push(completion);
            was_empty
        };
        // One wake per drain cycle: siblings piling onto a non-empty
        // queue ride the wake already in flight (the reactor swaps
        // the whole queue out, so nothing is stranded).
        if was_empty {
            self.waker.wake();
        }
    }
}

/// A running workflow service.
pub struct Server {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    reactors: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shared: Vec<Arc<ReactorShared>>,
    stop_rx: Mutex<Receiver<()>>,
}

impl Server {
    /// Binds the listener and starts the reactor threads.
    pub fn start(pool: Arc<ShardPool>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.addr.as_str(), cfg.port))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let (stop_tx, stop_rx) = sync_channel::<()>(1);
        let nreactors = if cfg.reactors > 0 {
            cfg.reactors
        } else {
            std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(pool.shards())
                .max(1)
        };
        let state = Arc::new(ServerState {
            pool,
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            default_process: cfg.default_process,
            stop_tx,
            tenants_path: cfg.tenants_path,
        });

        let mut shared = Vec::with_capacity(nreactors);
        let mut handles = Vec::with_capacity(nreactors);
        for i in 0..nreactors {
            let reactor_shared = Arc::new(ReactorShared {
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            });
            let epoll = Epoll::new()?;
            epoll.add(reactor_shared.waker.fd(), EPOLLIN, TOKEN_WAKER)?;
            epoll.add(
                listener.as_raw_fd(),
                EPOLLIN | EPOLLEXCLUSIVE,
                TOKEN_LISTENER,
            )?;
            shared.push(Arc::clone(&reactor_shared));
            let state = Arc::clone(&state);
            let listener = Arc::clone(&listener);
            let read_timeout = cfg.read_timeout;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("wfms-reactor-{i}"))
                    .spawn(move || {
                        Reactor {
                            epoll,
                            listener,
                            shared: reactor_shared,
                            state,
                            read_timeout,
                            conns: HashMap::new(),
                            next_token: TOKEN_FIRST_CONN,
                        }
                        .run()
                    })?,
            );
        }

        Ok(Server {
            state,
            local_addr,
            reactors: Mutex::new(handles),
            shared,
            stop_rx: Mutex::new(stop_rx),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until `POST /admin/stop` arrives (or another thread
    /// calls [`Server::shutdown`]).
    pub fn wait_stop(&self) {
        let _ = self.stop_rx.lock().recv();
    }

    /// Stops the server. With `drain`, every queued submission is
    /// processed and flushed and the shard journals are checkpointed
    /// first; without, the pool workers stop after their current
    /// batch and **no checkpoint is written** — the closest a test
    /// can get to a crash without killing the process (everything
    /// acknowledged is already durable via group commit).
    pub fn shutdown(&self, drain: bool) {
        if drain && !self.state.draining.swap(true, Ordering::SeqCst) {
            let _ = self.state.pool.drain();
        }
        if !self.state.stopping.swap(true, Ordering::SeqCst) {
            for shared in &self.shared {
                shared.waker.wake();
            }
        }
        for handle in self.reactors.lock().drain(..) {
            let _ = handle.join();
        }
        self.state.pool.stop();
        let _ = self.state.stop_tx.try_send(());
    }
}

/// One queued response for a connection, in request order.
enum Slot {
    /// Rendered and ready to write.
    Ready {
        bytes: Vec<u8>,
        close: bool,
        stop: bool,
    },
    /// Waiting on a group-commit or admin completion.
    Pending { id: u64 },
}

struct Conn {
    stream: TcpStream,
    decoder: http::Decoder,
    /// FIFO of responses; the front is the oldest request. Written
    /// out only while the front is `Ready` — pipelined responses
    /// never reorder.
    slots: std::collections::VecDeque<Slot>,
    out: Vec<u8>,
    out_pos: usize,
    /// Epoll interest currently registered.
    interest: u32,
    /// Stop reading: a close-marked or malformed request was seen.
    input_dead: bool,
    /// Peer half-closed its write side.
    read_closed: bool,
    /// Close once the output buffer drains.
    close_after_write: bool,
    /// Signal server stop once the output buffer drains.
    stop_after_write: bool,
    next_slot: u64,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: http::Decoder::new(),
            slots: std::collections::VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            input_dead: false,
            read_closed: false,
            close_after_write: false,
            stop_after_write: false,
            next_slot: 0,
            last_activity: Instant::now(),
        }
    }

    fn alloc_slot(&mut self) -> u64 {
        let id = self.next_slot;
        self.next_slot += 1;
        self.slots.push_back(Slot::Pending { id });
        id
    }

    fn push_ready(&mut self, bytes: Vec<u8>, close: bool) {
        self.slots.push_back(Slot::Ready {
            bytes,
            close,
            stop: false,
        });
    }

    fn fill_slot(&mut self, id: u64, bytes: Vec<u8>, close: bool, stop: bool) {
        for slot in &mut self.slots {
            if matches!(slot, Slot::Pending { id: p } if *p == id) {
                *slot = Slot::Ready { bytes, close, stop };
                return;
            }
        }
    }

    /// Moves contiguously-ready slots from the FIFO front into the
    /// output buffer (one buffer, one write syscall for the batch).
    fn pump(&mut self) {
        while let Some(Slot::Ready { .. }) = self.slots.front() {
            let Some(Slot::Ready { bytes, close, stop }) = self.slots.pop_front() else {
                unreachable!("front checked above");
            };
            self.out.extend_from_slice(&bytes);
            if close {
                self.close_after_write = true;
                self.input_dead = true;
            }
            if stop {
                self.stop_after_write = true;
            }
        }
    }

    /// Whether the reactor should be reading this connection.
    fn wants_read(&self) -> bool {
        !self.input_dead
            && !self.read_closed
            && self.slots.len() < MAX_PIPELINE
            && self.decoder.buffered() < MAX_UNPARSED
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// What to do with a connection after handling its events.
#[derive(PartialEq)]
enum Fate {
    Keep,
    Close,
    /// Close and signal server stop (admin/stop response flushed).
    CloseAndStop,
}

struct Reactor {
    epoll: Epoll,
    listener: Arc<TcpListener>,
    shared: Arc<ReactorShared>,
    state: Arc<ServerState>,
    read_timeout: Duration,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![
            crate::poll::Event {
                events: 0,
                token: 0
            };
            MAX_EVENTS
        ];
        let mut last_sweep = Instant::now();
        while let Ok(n) = self.epoll.wait(&mut events, SWEEP_EVERY.as_millis() as i32) {
            if self.state.stopping.load(Ordering::SeqCst) {
                break;
            }
            let mut stop_requested = false;
            for ev in &events[..n] {
                let (token, ready) = ({ ev.token }, { ev.events });
                match token {
                    TOKEN_LISTENER => self.accept_all(),
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                        if self.drain_completions() {
                            stop_requested = true;
                        }
                    }
                    token => {
                        if self.handle_conn_event(token, ready) {
                            stop_requested = true;
                        }
                    }
                }
            }
            if stop_requested {
                let _ = self.state.stop_tx.try_send(());
            }
            if last_sweep.elapsed() >= SWEEP_EVERY {
                last_sweep = Instant::now();
                self.sweep_idle();
            }
        }
        // Reactor exit: drop every connection (closes the sockets).
        self.conns.clear();
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.state.stopping.load(Ordering::SeqCst) {
                        continue; // accept-and-drop while stopping
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let conn = Conn::new(stream);
                    if self
                        .epoll
                        .add(conn.stream.as_raw_fd(), conn.interest, token)
                        .is_ok()
                    {
                        self.conns.insert(token, conn);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Applies queued completions to their connections. Returns true
    /// if a stop was fully flushed.
    fn drain_completions(&mut self) -> bool {
        let drained: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock());
        let mut stop = false;
        let mut touched: Vec<u64> = Vec::with_capacity(drained.len());
        for completion in drained {
            match completion {
                Completion::Submit {
                    conn: token,
                    slot,
                    reply,
                    close,
                } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let mut bytes = Vec::with_capacity(192);
                        render_submit_reply(&mut bytes, reply, close);
                        conn.fill_slot(slot, bytes, close, false);
                        conn.last_activity = Instant::now();
                        touched.push(token);
                    }
                }
                Completion::Admin {
                    conn: token,
                    slot,
                    result,
                    close,
                    stop: stop_after,
                } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let mut bytes = Vec::with_capacity(128);
                        match result {
                            Ok(compacted_events) => {
                                let body =
                                    serde_json::to_string(&DrainResponse { compacted_events })
                                        .expect("drain body serializes");
                                render_response(&mut bytes, 200, JSON, &[], body.as_bytes(), close);
                            }
                            Err(e) => {
                                let body = err_body(&e, "internal");
                                render_response(&mut bytes, 500, JSON, &[], body.as_bytes(), close);
                            }
                        }
                        conn.fill_slot(slot, bytes, close, stop_after);
                        conn.last_activity = Instant::now();
                        touched.push(token);
                    } else if stop_after {
                        // The stop requester vanished; honor the stop
                        // anyway — the drain already happened.
                        stop = true;
                    }
                }
                Completion::Deploy {
                    conn: token,
                    slot,
                    result,
                    close,
                } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let mut bytes = Vec::with_capacity(192);
                        match result {
                            Ok(report) => {
                                let body = serde_json::to_string(&DeployResponse {
                                    process: report.process,
                                    version: report.version,
                                    migrated: report.migrated,
                                    skipped: report.skipped,
                                    already_current: report.already_current,
                                })
                                .expect("deploy body serializes");
                                render_response(&mut bytes, 200, JSON, &[], body.as_bytes(), close);
                            }
                            Err((status, e)) => {
                                let class = if status == 400 {
                                    "bad_request"
                                } else {
                                    "internal"
                                };
                                let body = err_body(&e, class);
                                render_response(
                                    &mut bytes,
                                    status,
                                    JSON,
                                    &[],
                                    body.as_bytes(),
                                    close,
                                );
                            }
                        }
                        conn.fill_slot(slot, bytes, close, false);
                        conn.last_activity = Instant::now();
                        touched.push(token);
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            // Newly-ready slots may also unblock parsing (pipeline
            // backpressure) — run the full service pass.
            if self.service_conn(token) {
                stop = true;
            }
        }
        stop
    }

    /// Handles a readiness event for a connection. Returns true if a
    /// stop response was fully flushed.
    fn handle_conn_event(&mut self, token: u64, ready: u32) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false; // closed earlier in this batch
        };
        if ready & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(token);
            return false;
        }
        if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                if !conn.wants_read() {
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.push(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if n < chunk.len() {
                            break; // socket drained
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(token);
                        return false;
                    }
                }
            }
        }
        self.service_conn(token)
    }

    /// Parses buffered requests, pumps ready slots, writes, and
    /// updates epoll interest / closes as needed. The single
    /// post-anything service pass for a connection.
    fn service_conn(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        // Parse as many complete requests as backpressure allows.
        while !conn.input_dead && conn.slots.len() < MAX_PIPELINE {
            match conn.decoder.next_request() {
                Ok(Some(req)) => {
                    conn.last_activity = Instant::now();
                    dispatch(&self.state, &self.shared, token, conn, &req);
                    if conn.input_dead {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    if !matches!(e, HttpError::Io(_)) {
                        let body = err_body(&e.message(), "bad_request");
                        let mut bytes = Vec::with_capacity(128);
                        render_response(&mut bytes, e.status(), JSON, &[], body.as_bytes(), true);
                        conn.slots.push_back(Slot::Ready {
                            bytes,
                            close: true,
                            stop: false,
                        });
                    }
                    conn.input_dead = true;
                    break;
                }
            }
        }
        conn.pump();
        match self.flush(token) {
            Fate::Keep => false,
            Fate::Close => {
                self.close(token);
                false
            }
            Fate::CloseAndStop => {
                self.close(token);
                true
            }
        }
    }

    /// Writes pending output; decides whether the connection lives.
    fn flush(&mut self, token: u64) -> Fate {
        let Some(conn) = self.conns.get_mut(&token) else {
            return Fate::Keep;
        };
        while conn.has_output() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if !conn.has_output() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.stop_after_write {
                return Fate::CloseAndStop;
            }
            if conn.close_after_write {
                return Fate::Close;
            }
            if conn.read_closed && conn.slots.is_empty() && conn.decoder.is_clean() {
                return Fate::Close; // clean keep-alive EOF
            }
            if conn.read_closed && conn.slots.is_empty() {
                return Fate::Close; // half-closed mid-request: drop
            }
        }
        // Interest: write when output is stuck, read unless throttled.
        let mut want = EPOLLRDHUP;
        if conn.wants_read() {
            want |= EPOLLIN;
        }
        if conn.has_output() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_err()
            {
                return Fate::Close;
            }
        }
        Fate::Keep
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            // Drop closes the socket.
        }
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let timeout = self.read_timeout;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_activity) > timeout)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close(token);
        }
    }
}

const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4";

fn err_body(detail: &str, class: &str) -> String {
    serde_json::to_string(&ErrorResponse::new(class, detail)).expect("error body serializes")
}

fn status_str(s: InstanceStatus) -> &'static str {
    match s {
        InstanceStatus::Running => "running",
        InstanceStatus::Finished => "finished",
        InstanceStatus::Cancelled => "cancelled",
    }
}

/// Renders a post-group-commit submit completion.
fn render_submit_reply(out: &mut Vec<u8>, reply: SubmitReply, close: bool) {
    match reply {
        Ok((id, status, output)) => {
            let body = serde_json::to_string(&SubmitResponse {
                id,
                status: status_str(status).to_owned(),
                output,
            })
            .expect("submit body serializes");
            render_response(out, 201, JSON, &[], body.as_bytes(), close);
        }
        Err((error, unknown_process)) => {
            let (code, class) = if unknown_process {
                (404, "not_found")
            } else {
                (500, "internal")
            };
            let body = err_body(&error, class);
            render_response(out, code, JSON, &[], body.as_bytes(), close);
        }
    }
}

/// A synchronous route answer.
struct Answer {
    status: u16,
    content_type: &'static str,
    body: String,
    /// `Allow` header for 405 answers.
    allow: Option<&'static str>,
    /// Extra response headers (`www-authenticate`, `retry-after`, …).
    extra: Vec<(&'static str, &'static str)>,
    /// Force `connection: close` regardless of the request's
    /// keep-alive wish — the error-path rule for 401/403/429: never
    /// leave a connection open after refusing to serve it.
    force_close: bool,
}

impl Answer {
    fn json(status: u16, body: String) -> Answer {
        Answer {
            status,
            content_type: JSON,
            body,
            allow: None,
            extra: Vec::new(),
            force_close: false,
        }
    }
}

/// `401`: no/bad credentials. Challenges with `www-authenticate` and
/// closes the connection.
fn unauthorized(detail: &str) -> Answer {
    let mut answer = Answer::json(401, err_body(detail, "unauthorized"));
    answer.extra.push(("www-authenticate", "Bearer"));
    answer.force_close = true;
    answer
}

/// `403`: authenticated, but the resource belongs to another tenant.
/// Closes the connection.
fn forbidden(detail: &str) -> Answer {
    let mut answer = Answer::json(403, err_body(detail, "forbidden"));
    answer.force_close = true;
    answer
}

/// Routes one request: synchronous answers are rendered into a ready
/// slot; submits and admin operations allocate a pending slot that a
/// completion fills later.
fn dispatch(
    state: &Arc<ServerState>,
    shared: &Arc<ReactorShared>,
    token: u64,
    conn: &mut Conn,
    req: &Request,
) {
    let close = req.wants_close();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    // Data-plane routes authenticate when tenancy is enabled; the ops
    // plane (healthz, metrics, admin) stays open — it is the operator's
    // surface, not a tenant's, and quota/fairness never apply to it.
    let data_plane = matches!(segments.first(), Some(&"instances" | &"worklist"));
    let tenant: Option<Arc<Tenant>> = if state.pool.tenancy_enabled() && data_plane {
        let resolved = req
            .header("authorization")
            .and_then(bearer_token)
            .and_then(|token| state.pool.authenticate(token.as_bytes()));
        match resolved {
            Some(t) => Some(t),
            None => {
                let detail = if req.header("authorization").is_none() {
                    "missing Authorization header (expected `Bearer <api-key>`)"
                } else {
                    "unrecognized API key"
                };
                return push_answer(conn, unauthorized(detail), close);
            }
        }
    } else {
        None
    };
    let answer = match segments.as_slice() {
        ["instances"] => match req.method.as_str() {
            "POST" => {
                dispatch_submit(state, shared, token, conn, req, tenant, close);
                return;
            }
            _ => method_not_allowed("POST"),
        },
        ["instances", id] => match req.method.as_str() {
            "GET" => instance_status(state, id, tenant.as_ref()),
            _ => method_not_allowed("GET"),
        },
        ["worklist"] => match req.method.as_str() {
            "GET" => worklist(state, req, tenant.as_ref()),
            _ => method_not_allowed("GET"),
        },
        ["worklist", item, "complete"] => match req.method.as_str() {
            "POST" => complete(state, req, item, tenant.as_ref()),
            _ => method_not_allowed("POST"),
        },
        ["metrics"] => match req.method.as_str() {
            "GET" => {
                publish_scrape_gauges(state);
                let text = state.pool.registry().snapshot().to_prometheus();
                Answer {
                    status: 200,
                    content_type: PROM,
                    body: text,
                    allow: None,
                    extra: Vec::new(),
                    force_close: false,
                }
            }
            _ => method_not_allowed("GET"),
        },
        ["healthz"] => match req.method.as_str() {
            "GET" => {
                let draining = state.draining.load(Ordering::SeqCst);
                let health = Health {
                    status: if draining { "draining" } else { "ok" }.to_owned(),
                    shards: state.pool.shards(),
                    recovered_instances: state.pool.recovered_instances(),
                };
                Answer::json(
                    200,
                    serde_json::to_string(&health).expect("health serializes"),
                )
            }
            _ => method_not_allowed("GET"),
        },
        ["admin", "deploy"] => match req.method.as_str() {
            "POST" => {
                dispatch_deploy(state, shared, token, conn, req, close);
                return;
            }
            _ => method_not_allowed("POST"),
        },
        ["admin", "reload-tenants"] => match req.method.as_str() {
            "POST" => reload_tenants(state),
            _ => method_not_allowed("POST"),
        },
        ["admin", "drain"] => match req.method.as_str() {
            "POST" => {
                dispatch_admin(state, shared, token, conn, close, false);
                return;
            }
            _ => method_not_allowed("POST"),
        },
        ["admin", "stop"] => match req.method.as_str() {
            "POST" => {
                // The stop answer always closes the connection — the
                // server is about to exit (satellite fix: the old
                // front end said `keep-alive` and then closed).
                dispatch_admin(state, shared, token, conn, true, true);
                return;
            }
            _ => method_not_allowed("POST"),
        },
        _ => Answer::json(404, err_body("no such route", "not_found")),
    };
    push_answer(conn, answer, close);
}

/// Renders a synchronous [`Answer`] into a ready slot, honoring its
/// extra headers and forced close.
fn push_answer(conn: &mut Conn, answer: Answer, close: bool) {
    let close = close || answer.force_close;
    let mut extra: Vec<(&str, &str)> = Vec::with_capacity(1 + answer.extra.len());
    if let Some(allow) = answer.allow {
        extra.push(("allow", allow));
    }
    extra.extend_from_slice(&answer.extra);
    let mut bytes = Vec::with_capacity(128 + answer.body.len());
    render_response(
        &mut bytes,
        answer.status,
        answer.content_type,
        &extra,
        answer.body.as_bytes(),
        close,
    );
    conn.push_ready(bytes, close);
}

fn method_not_allowed(allow: &'static str) -> Answer {
    Answer {
        status: 405,
        content_type: JSON,
        body: err_body("method not allowed", "bad_request"),
        allow: Some(allow),
        extra: Vec::new(),
        force_close: false,
    }
}

/// `POST /instances`: validate on the reactor, then hand the start to
/// its shard. The response slot is filled by the group-commit
/// completion — the reactor never waits on a journal flush.
fn dispatch_submit(
    state: &Arc<ServerState>,
    shared: &Arc<ReactorShared>,
    token: u64,
    conn: &mut Conn,
    req: &Request,
    tenant: Option<Arc<Tenant>>,
    close: bool,
) {
    let sync_answer = |conn: &mut Conn, status: u16, body: String| {
        let mut bytes = Vec::with_capacity(128 + body.len());
        render_response(&mut bytes, status, JSON, &[], body.as_bytes(), close);
        conn.push_ready(bytes, close);
    };
    if state.draining.load(Ordering::SeqCst) {
        return sync_answer(conn, 503, err_body("server is draining", "draining"));
    }
    let body: SubmitRequest = if req.body.is_empty() {
        SubmitRequest::default()
    } else {
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return sync_answer(conn, 400, err_body("body is not UTF-8", "bad_request"));
        };
        match serde_json::from_str(text) {
            Ok(b) => b,
            Err(e) => {
                return sync_answer(
                    conn,
                    400,
                    err_body(&format!("bad body: {e}"), "bad_request"),
                )
            }
        }
    };
    let process = body
        .process
        .unwrap_or_else(|| state.default_process.clone());
    let input = body.input.unwrap_or_else(Container::empty);

    let slot = conn.alloc_slot();
    let sink = {
        let shared = Arc::clone(shared);
        Box::new(move |reply: SubmitReply| {
            shared.post(Completion::Submit {
                conn: token,
                slot,
                reply,
                close,
            });
        })
    };
    match state.pool.submit_with(&process, input, tenant, sink) {
        SubmitDispatch::Dispatched => {}
        SubmitDispatch::Overloaded { depth, capacity } => {
            // The sink was dropped uncalled; fill the slot now. A 429
            // always closes (error-path rule) and names a retry
            // horizon — overload is measured in group-commit batches,
            // so one second is conservatively past it.
            let body = err_body(
                &format!("queue at high-water mark ({depth}/{capacity})"),
                "overloaded",
            );
            let mut bytes = Vec::with_capacity(128 + body.len());
            render_response(
                &mut bytes,
                429,
                JSON,
                &[("retry-after", "1")],
                body.as_bytes(),
                true,
            );
            conn.fill_slot(slot, bytes, true, false);
        }
    }
}

/// `POST /admin/reload-tenants`: re-reads the tenants file the server
/// was started with and swaps the live table. Synchronous — the file
/// is small and the swap is an `Arc` store.
fn reload_tenants(state: &Arc<ServerState>) -> Answer {
    let Some(path) = &state.tenants_path else {
        return Answer::json(
            400,
            err_body(
                "tenancy is not enabled on this server (start with --tenants)",
                "bad_request",
            ),
        );
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            return Answer::json(
                500,
                err_body(&format!("tenants file {}: {e}", path.display()), "internal"),
            )
        }
    };
    let specs = match parse_tenants(&text) {
        Ok(s) => s,
        Err(e) => {
            return Answer::json(
                400,
                err_body(&format!("tenants file rejected: {e}"), "bad_request"),
            )
        }
    };
    match state.pool.reload_tenants(&specs) {
        Ok(tenants) => Answer::json(
            200,
            serde_json::to_string(&ReloadTenantsResponse { tenants })
                .expect("reload body serializes"),
        ),
        Err(PoolError::Rejected(e)) => Answer::json(400, err_body(&e, "bad_request")),
        Err(e) => Answer::json(500, err_body(&e.to_string(), "internal")),
    }
}

/// `POST /admin/drain|stop`: runs on a helper thread (drain blocks on
/// per-shard FIFO barriers) and completes through the reactor queue.
fn dispatch_admin(
    state: &Arc<ServerState>,
    shared: &Arc<ReactorShared>,
    token: u64,
    conn: &mut Conn,
    close: bool,
    stop: bool,
) {
    let slot = conn.alloc_slot();
    if stop {
        // No more requests on this connection after a stop.
        conn.input_dead = true;
    }
    let state = Arc::clone(state);
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name("wfms-admin".to_owned())
        .spawn(move || {
            state.draining.store(true, Ordering::SeqCst);
            let result = state.pool.drain().map_err(|e| e.to_string());
            // A failed drain on the stop path still stops the server —
            // matching the old front end, which answered with the
            // drain result and stopped regardless.
            shared.post(Completion::Admin {
                conn: token,
                slot,
                result,
                close,
                stop,
            });
        });
}

/// `POST /admin/deploy`: parse and policy-check on the reactor, then
/// register + migrate on a helper thread (deploy blocks on journal
/// flushes) and complete through the reactor queue.
fn dispatch_deploy(
    state: &Arc<ServerState>,
    shared: &Arc<ReactorShared>,
    token: u64,
    conn: &mut Conn,
    req: &Request,
    close: bool,
) {
    let sync_answer = |conn: &mut Conn, status: u16, body: String| {
        let mut bytes = Vec::with_capacity(128 + body.len());
        render_response(&mut bytes, status, JSON, &[], body.as_bytes(), close);
        conn.push_ready(bytes, close);
    };
    if state.draining.load(Ordering::SeqCst) {
        return sync_answer(conn, 503, err_body("server is draining", "draining"));
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return sync_answer(conn, 400, err_body("body is not UTF-8", "bad_request"));
    };
    let body: DeployRequest = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => {
            return sync_answer(
                conn,
                400,
                err_body(&format!("bad body: {e}"), "bad_request"),
            )
        }
    };
    let policy = match body.policy.as_deref() {
        None => MigrationPolicy::DrainOld,
        Some(s) => match MigrationPolicy::parse(s) {
            Some(p) => p,
            None => {
                return sync_answer(
                    conn,
                    400,
                    err_body(
                        &format!("unknown policy {s:?} (expected \"drain-old\" or \"migrate\")"),
                        "bad_request",
                    ),
                )
            }
        },
    };
    let slot = conn.alloc_slot();
    let state = Arc::clone(state);
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name("wfms-deploy".to_owned())
        .spawn(move || {
            let result = state.pool.deploy(body.definition, policy).map_err(|e| {
                let status = match &e {
                    PoolError::Rejected(_) => 400,
                    _ => 500,
                };
                (status, e.to_string())
            });
            shared.post(Completion::Deploy {
                conn: token,
                slot,
                result,
                close,
            });
        });
}

fn instance_status(state: &Arc<ServerState>, id: &str, tenant: Option<&Arc<Tenant>>) -> Answer {
    let Ok(ext) = id.parse::<u64>() else {
        return Answer::json(
            400,
            err_body("instance id must be an integer", "bad_request"),
        );
    };
    // Wrong-tenant reads are refused *before* resolution: the slot is
    // part of the id, so a mismatch is a cross-tenant probe, not a
    // lookup miss.
    if let Some(t) = tenant {
        if state.pool.slot_of(ext) != Some(t.slot) {
            return forbidden(&format!("instance {ext} belongs to another tenant"));
        }
    }
    match state.pool.status(ext) {
        Some((process, status, version, output)) => Answer::json(
            200,
            serde_json::to_string(&StatusResponse {
                id: ext,
                process,
                status: status_str(status).to_owned(),
                version,
                output,
            })
            .expect("status body serializes"),
        ),
        None => Answer::json(404, err_body(&format!("no instance {ext}"), "not_found")),
    }
}

fn worklist(state: &Arc<ServerState>, req: &Request, tenant: Option<&Arc<Tenant>>) -> Answer {
    let person = match req.query_param("person") {
        Ok(Some(p)) => p,
        Ok(None) => {
            return Answer::json(
                400,
                err_body("missing ?person= query parameter", "bad_request"),
            )
        }
        Err(e) => return Answer::json(400, err_body(&e.message(), "bad_request")),
    };
    let items = state
        .pool
        .worklist_scoped(&person, tenant.map(|t| t.slot))
        .into_iter()
        .map(|(id, instance, item)| ItemDto {
            id,
            instance,
            path: item.path,
            attempt: item.attempt,
            offered_to: item.offered_to,
        })
        .collect();
    Answer::json(
        200,
        serde_json::to_string(&WorklistResponse { items }).expect("worklist serializes"),
    )
}

fn complete(
    state: &Arc<ServerState>,
    req: &Request,
    item: &str,
    tenant: Option<&Arc<Tenant>>,
) -> Answer {
    let Ok(ext) = item.parse::<u64>() else {
        return Answer::json(
            400,
            err_body("work-item id must be an integer", "bad_request"),
        );
    };
    if let Some(t) = tenant {
        if state.pool.slot_of(ext) != Some(t.slot) {
            return forbidden(&format!("work item {ext} belongs to another tenant"));
        }
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Answer::json(400, err_body("body is not UTF-8", "bad_request"));
    };
    let body: CompleteRequest = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => return Answer::json(400, err_body(&format!("bad body: {e}"), "bad_request")),
    };
    match state.pool.complete(ext, &body.person) {
        Ok(()) => Answer::json(200, "{}".to_owned()),
        Err(EngineError::Worklist(WorklistError::NoSuchItem(_))) => {
            Answer::json(404, err_body(&format!("no work item {ext}"), "not_found"))
        }
        Err(e @ EngineError::Worklist(_)) | Err(e @ EngineError::BadActivityState { .. }) => {
            Answer::json(409, err_body(&e.to_string(), "conflict"))
        }
        Err(EngineError::UnknownInstance(_)) => {
            Answer::json(404, err_body("owning instance is gone", "not_found"))
        }
        Err(e) => Answer::json(500, err_body(&e.to_string(), "internal")),
    }
}

/// Folds engine aggregates into gauges at scrape time — cheaper than
/// keeping them hot on the submit path.
fn publish_scrape_gauges(state: &Arc<ServerState>) {
    let registry = state.pool.registry();
    let (running, finished, cancelled) = state.pool.instance_counts();
    registry
        .gauge("server.instances.running")
        .set(running as i64);
    registry
        .gauge("server.instances.finished")
        .set(finished as i64);
    registry
        .gauge("server.instances.cancelled")
        .set(cancelled as i64);
    registry
        .gauge("server.queue.depth")
        .set(state.pool.queue_depth());
    registry
        .gauge("server.recovered.instances")
        .set(state.pool.recovered_instances() as i64);
}
