//! The service front end: a [`std::net::TcpListener`] accept loop,
//! one handler thread per connection (keep-alive, bounded by a read
//! timeout), and the route table mapping the JSON protocol onto a
//! [`ShardPool`].
//!
//! Lifecycle: [`Server::start`] binds and serves immediately;
//! [`Server::wait_stop`] blocks the caller until `POST /admin/stop`
//! (or [`Server::shutdown`] from another thread); shutdown drains the
//! pool — every queued submission is processed and flushed, shard
//! journals are checkpointed — unless the caller asks for an abrupt
//! stop to simulate a crash.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use wfms_engine::{EngineError, InstanceStatus, WorklistError};
use wfms_model::Container;

use crate::api::*;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::shard::{ShardPool, SubmitOutcome};

/// Server configuration.
pub struct ServerConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub addr: String,
    /// Port to bind; `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Process started by `POST /instances` when the body names none.
    pub default_process: String,
    /// Idle keep-alive connections are closed after this long.
    pub read_timeout: Duration,
}

impl ServerConfig {
    /// Loopback defaults with an ephemeral port.
    pub fn new(default_process: impl Into<String>) -> Self {
        Self {
            addr: "127.0.0.1".to_owned(),
            port: 0,
            default_process: default_process.into(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

struct ServerState {
    pool: Arc<ShardPool>,
    draining: AtomicBool,
    stopping: AtomicBool,
    default_process: String,
    stop_tx: SyncSender<()>,
}

/// Deferred work a route asks for *after* its response is written.
enum PostAction {
    /// Signal [`Server::wait_stop`].
    Stop,
}

/// A running workflow service.
pub struct Server {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
    stop_rx: Mutex<Receiver<()>>,
}

impl Server {
    /// Binds the listener and starts serving on a background thread.
    pub fn start(pool: Arc<ShardPool>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.addr.as_str(), cfg.port))?;
        let local_addr = listener.local_addr()?;
        let (stop_tx, stop_rx) = sync_channel::<()>(1);
        let state = Arc::new(ServerState {
            pool,
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            default_process: cfg.default_process,
            stop_tx,
        });
        let acceptor = {
            let state = Arc::clone(&state);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new()
                .name("wfms-accept".to_owned())
                .spawn(move || accept_loop(listener, state, read_timeout))?
        };
        Ok(Server {
            state,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
            stop_rx: Mutex::new(stop_rx),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until `POST /admin/stop` arrives (or another thread
    /// calls [`Server::shutdown`]).
    pub fn wait_stop(&self) {
        let _ = self.stop_rx.lock().recv();
    }

    /// Stops the server. With `drain`, every queued submission is
    /// processed and flushed and the shard journals are checkpointed
    /// first; without, the pool workers stop after their current
    /// batch and **no checkpoint is written** — the closest a test
    /// can get to a crash without killing the process (everything
    /// acknowledged is already durable via group commit).
    pub fn shutdown(&self, drain: bool) {
        if drain && !self.state.draining.swap(true, Ordering::SeqCst) {
            let _ = self.state.pool.drain();
        }
        self.state.pool.stop();
        if !self.state.stopping.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of `accept()`.
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(handle) = self.acceptor.lock().take() {
            let _ = handle.join();
        }
        let _ = self.state.stop_tx.try_send(());
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, read_timeout: Duration) {
    for conn in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        let state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("wfms-conn".to_owned())
            .spawn(move || handle_connection(stream, state));
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(req)) => {
                let close = req.wants_close();
                let (status, content_type, body, action) = route(&state, &req);
                if write_response(
                    &mut write_half,
                    status,
                    content_type,
                    body.as_bytes(),
                    close,
                )
                .is_err()
                {
                    break;
                }
                if let Some(PostAction::Stop) = action {
                    let _ = state.stop_tx.try_send(());
                    break;
                }
                if close {
                    break;
                }
            }
            Err(HttpError::Io(_)) => break,
            Err(e) => {
                let body = err_body(&e.message(), "bad_request");
                let _ = write_response(&mut write_half, e.status(), JSON, body.as_bytes(), true);
                break;
            }
        }
    }
}

const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4";

fn err_body(detail: &str, class: &str) -> String {
    serde_json::to_string(&ErrorResponse::new(class, detail)).expect("error body serializes")
}

fn status_str(s: InstanceStatus) -> &'static str {
    match s {
        InstanceStatus::Running => "running",
        InstanceStatus::Finished => "finished",
        InstanceStatus::Cancelled => "cancelled",
    }
}

type RouteAnswer = (u16, &'static str, String, Option<PostAction>);

fn json(status: u16, body: String) -> RouteAnswer {
    (status, JSON, body, None)
}

fn route(state: &Arc<ServerState>, req: &Request) -> RouteAnswer {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let draining = state.draining.load(Ordering::SeqCst);
            let health = Health {
                status: if draining { "draining" } else { "ok" }.to_owned(),
                shards: state.pool.shards(),
                recovered_instances: state.pool.recovered_instances(),
            };
            json(
                200,
                serde_json::to_string(&health).expect("health serializes"),
            )
        }
        ("POST", ["instances"]) => submit(state, req),
        ("GET", ["instances", id]) => instance_status(state, id),
        ("GET", ["worklist"]) => worklist(state, req),
        ("POST", ["worklist", item, "complete"]) => complete(state, req, item),
        ("GET", ["metrics"]) => {
            publish_scrape_gauges(state);
            let text = state.pool.registry().snapshot().to_prometheus();
            (200, PROM, text, None)
        }
        ("POST", ["admin", "drain"]) => {
            state.draining.store(true, Ordering::SeqCst);
            match state.pool.drain() {
                Ok(compacted_events) => json(
                    200,
                    serde_json::to_string(&DrainResponse { compacted_events })
                        .expect("drain body serializes"),
                ),
                Err(e) => json(500, err_body(&e.to_string(), "internal")),
            }
        }
        ("POST", ["admin", "stop"]) => {
            state.draining.store(true, Ordering::SeqCst);
            let compacted = state.pool.drain().unwrap_or(0);
            (
                200,
                JSON,
                serde_json::to_string(&DrainResponse {
                    compacted_events: compacted,
                })
                .expect("stop body serializes"),
                Some(PostAction::Stop),
            )
        }
        ("GET" | "POST", _) => json(404, err_body("no such route", "not_found")),
        _ => json(405, err_body("method not allowed", "bad_request")),
    }
}

fn submit(state: &Arc<ServerState>, req: &Request) -> RouteAnswer {
    if state.draining.load(Ordering::SeqCst) {
        return json(503, err_body("server is draining", "draining"));
    }
    let body: SubmitRequest = if req.body.is_empty() {
        SubmitRequest::default()
    } else {
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return json(400, err_body("body is not UTF-8", "bad_request"));
        };
        match serde_json::from_str(text) {
            Ok(b) => b,
            Err(e) => return json(400, err_body(&format!("bad body: {e}"), "bad_request")),
        }
    };
    let process = body
        .process
        .unwrap_or_else(|| state.default_process.clone());
    let input = body.input.unwrap_or_else(Container::empty);
    match state.pool.submit(&process, input) {
        SubmitOutcome::Accepted { id, status, output } => json(
            201,
            serde_json::to_string(&SubmitResponse {
                id,
                status: status_str(status).to_owned(),
                output,
            })
            .expect("submit body serializes"),
        ),
        SubmitOutcome::Overloaded { depth, capacity } => json(
            429,
            err_body(
                &format!("queue at high-water mark ({depth}/{capacity})"),
                "overloaded",
            ),
        ),
        SubmitOutcome::Failed {
            error,
            unknown_process,
        } => {
            if unknown_process {
                json(404, err_body(&error, "not_found"))
            } else {
                json(500, err_body(&error, "internal"))
            }
        }
    }
}

fn instance_status(state: &Arc<ServerState>, id: &str) -> RouteAnswer {
    let Ok(ext) = id.parse::<u64>() else {
        return json(
            400,
            err_body("instance id must be an integer", "bad_request"),
        );
    };
    match state.pool.status(ext) {
        Some((process, status, output)) => json(
            200,
            serde_json::to_string(&StatusResponse {
                id: ext,
                process,
                status: status_str(status).to_owned(),
                output,
            })
            .expect("status body serializes"),
        ),
        None => json(404, err_body(&format!("no instance {ext}"), "not_found")),
    }
}

fn worklist(state: &Arc<ServerState>, req: &Request) -> RouteAnswer {
    let Some(person) = req.query_param("person") else {
        return json(
            400,
            err_body("missing ?person= query parameter", "bad_request"),
        );
    };
    let items = state
        .pool
        .worklist(person)
        .into_iter()
        .map(|(id, instance, item)| ItemDto {
            id,
            instance,
            path: item.path,
            attempt: item.attempt,
            offered_to: item.offered_to,
        })
        .collect();
    json(
        200,
        serde_json::to_string(&WorklistResponse { items }).expect("worklist serializes"),
    )
}

fn complete(state: &Arc<ServerState>, req: &Request, item: &str) -> RouteAnswer {
    let Ok(ext) = item.parse::<u64>() else {
        return json(
            400,
            err_body("work-item id must be an integer", "bad_request"),
        );
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return json(400, err_body("body is not UTF-8", "bad_request"));
    };
    let body: CompleteRequest = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => return json(400, err_body(&format!("bad body: {e}"), "bad_request")),
    };
    match state.pool.complete(ext, &body.person) {
        Ok(()) => json(200, "{}".to_owned()),
        Err(EngineError::Worklist(WorklistError::NoSuchItem(_))) => {
            json(404, err_body(&format!("no work item {ext}"), "not_found"))
        }
        Err(e @ EngineError::Worklist(_)) | Err(e @ EngineError::BadActivityState { .. }) => {
            json(409, err_body(&e.to_string(), "conflict"))
        }
        Err(EngineError::UnknownInstance(_)) => {
            json(404, err_body("owning instance is gone", "not_found"))
        }
        Err(e) => json(500, err_body(&e.to_string(), "internal")),
    }
}

/// Folds engine aggregates into gauges at scrape time — cheaper than
/// keeping them hot on the submit path.
fn publish_scrape_gauges(state: &Arc<ServerState>) {
    let registry = state.pool.registry();
    let (running, finished, cancelled) = state.pool.instance_counts();
    registry
        .gauge("server.instances.running")
        .set(running as i64);
    registry
        .gauge("server.instances.finished")
        .set(finished as i64);
    registry
        .gauge("server.instances.cancelled")
        .set(cancelled as i64);
    registry
        .gauge("server.queue.depth")
        .set(state.pool.queue_depth());
    registry
        .gauge("server.recovered.instances")
        .set(state.pool.recovered_instances() as i64);
}
