//! The sharded instance manager.
//!
//! A [`ShardPool`] owns N shards; each shard is an [`Engine`] with its
//! own durable journal file (`shard-<i>.journal` under the data
//! directory), a bounded submission queue and a dedicated worker
//! thread. Submissions are spread round-robin; the worker pops a
//! *batch* of queued submissions, navigates each to quiescence, then
//! issues **one** journal flush for the whole batch before
//! acknowledging any of them — group commit. An acknowledgement
//! therefore implies durability: after `kill -9`, every accepted
//! submission is recovered from its shard journal.
//!
//! Admission control is the queue bound itself: when a shard's queue
//! is at the high-water mark, [`ShardPool::submit`] returns
//! [`SubmitOutcome::Overloaded`] immediately instead of queueing
//! without bound. Queue depth and accept/reject counts are published
//! through the pool's [`Registry`].
//!
//! ## External ids
//!
//! Each shard allocates local instance and work-item ids from 1. On
//! the wire they are folded with the shard index:
//! `ext = local * nshards + shard`. The mapping is stable across
//! restarts as long as the shard count is unchanged — which is why the
//! pool records the count in `server.meta.json` and refuses to reopen
//! a data directory with a different `--shards`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use txn_substrate::{DurabilityPolicy, MultiDatabase, ProgramRegistry};
use wfms_engine::{
    recover_with_policy, Engine, EngineConfig, EngineError, InstanceId, InstanceStatus, OrgModel,
    WorkItem, WorkItemId,
};
use wfms_model::{Container, ProcessDefinition};
use wfms_observe::{Counter, Registry};

/// How long a submitter waits for its shard worker to answer before
/// giving up (the worker only goes silent if it panicked).
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Persisted pool invariants, stored as `server.meta.json` in the
/// data directory.
#[derive(Debug, Serialize, Deserialize)]
struct ServerMeta {
    shards: usize,
}

/// Errors opening a [`ShardPool`].
#[derive(Debug)]
pub enum PoolError {
    /// The data directory or meta file could not be read/written.
    Io(std::io::Error),
    /// The data directory was created with a different shard count.
    ShardMismatch {
        /// Count recorded in `server.meta.json`.
        on_disk: usize,
        /// Count requested now.
        requested: usize,
    },
    /// A shard journal could not be recovered.
    Recovery(wfms_engine::RecoveryError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Io(e) => write!(f, "data directory: {e}"),
            PoolError::ShardMismatch { on_disk, requested } => write!(
                f,
                "data directory was created with --shards {on_disk}, \
                 reopened with --shards {requested}; external ids would shift"
            ),
            PoolError::Recovery(e) => write!(f, "shard recovery: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<std::io::Error> for PoolError {
    fn from(e: std::io::Error) -> Self {
        PoolError::Io(e)
    }
}

/// Result of a submission attempt.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The instance was started, navigated to quiescence and its
    /// journal records flushed — durable.
    Accepted {
        /// External instance id.
        id: u64,
        /// Status at quiescence.
        status: InstanceStatus,
        /// Process output container.
        output: Container,
    },
    /// The shard's queue is at the high-water mark; retry later.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: i64,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The engine rejected the submission.
    Failed {
        /// Engine error rendering.
        error: String,
        /// True when the process template does not exist (a client
        /// error, not a server fault).
        unknown_process: bool,
    },
}

/// Immediate result of [`ShardPool::submit_with`].
#[derive(Debug)]
pub enum SubmitDispatch {
    /// The job is queued (or was answered through the sink already):
    /// the sink fires after the owning shard's group commit.
    Dispatched,
    /// The shard's queue is at the high-water mark; the sink was
    /// dropped uncalled. Answer `429` immediately.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: i64,
        /// Configured queue capacity.
        capacity: usize,
    },
}

/// Worker-side submit result: *local* instance id (shard encoding not
/// yet applied).
type InnerReply = Result<(InstanceId, InstanceStatus, Container), (String, bool)>;

/// What a [`ShardPool::submit_with`] sink receives after the owning
/// shard's group commit: external id + status + output, or
/// `(error rendering, unknown_process)`.
pub type SubmitReply = Result<(u64, InstanceStatus, Container), (String, bool)>;

/// Invoked exactly once, *after* the batch's journal flush.
type ReplySink = Box<dyn FnOnce(InnerReply) + Send + 'static>;

enum Job {
    Submit {
        process: String,
        input: Container,
        reply: ReplySink,
    },
    /// FIFO barrier: answered only after every job queued before it
    /// has been processed *and flushed*.
    Barrier(SyncSender<()>),
    /// Worker shutdown sentinel.
    Stop,
}

struct Shard {
    engine: Arc<Engine>,
    tx: SyncSender<Job>,
    depth: Arc<AtomicI64>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Pool configuration.
pub struct PoolConfig {
    /// Data directory holding `server.meta.json` and the shard
    /// journals. Created if absent.
    pub data_dir: PathBuf,
    /// Number of shards (worker threads + journals).
    pub shards: usize,
    /// Submission queue high-water mark per shard.
    pub queue_capacity: usize,
    /// Maximum submissions navigated per group commit.
    pub batch_max: usize,
    /// Journal durability policy for every shard.
    pub durability: DurabilityPolicy,
    /// Organization model installed into every shard.
    pub org: OrgModel,
    /// Process definitions registered into every shard (also the
    /// template set recovery replays against).
    pub templates: Vec<ProcessDefinition>,
    /// Artificial per-submission delay in the worker, for drills that
    /// need a deterministically slow consumer. `None` in production.
    pub throttle: Option<Duration>,
}

impl PoolConfig {
    /// Conventional defaults: 1 shard, queue 1024, group commit of 64.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            shards: 1,
            queue_capacity: 1024,
            batch_max: 64,
            durability: DurabilityPolicy::Batched { n: 64 },
            org: OrgModel::new(),
            templates: Vec::new(),
            throttle: None,
        }
    }
}

/// The sharded instance manager (see module docs).
pub struct ShardPool {
    shards: Vec<Shard>,
    nshards: u64,
    rr: AtomicUsize,
    queue_capacity: usize,
    registry: Arc<Registry>,
    accepted: Arc<Counter>,
    overloaded: Arc<Counter>,
    failed: Arc<Counter>,
    completions: Arc<Counter>,
    recovered: u64,
}

impl ShardPool {
    /// Opens (or creates) the pool's data directory, recovering every
    /// shard journal that already exists and resuming its in-flight
    /// instances. `provision` supplies the multidatabase + program
    /// registry for each shard index (each shard gets its own, so
    /// shard workers never contend on substrate locks).
    pub fn open(
        cfg: PoolConfig,
        registry: Arc<Registry>,
        provision: &dyn Fn(usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>),
    ) -> Result<Self, PoolError> {
        let nshards = cfg.shards.max(1);
        std::fs::create_dir_all(&cfg.data_dir)?;
        check_meta(&cfg.data_dir, nshards)?;

        let mut shards = Vec::with_capacity(nshards);
        let mut recovered = 0u64;
        for i in 0..nshards {
            let journal_path = cfg.data_dir.join(format!("shard-{i}.journal"));
            let (multidb, programs) = provision(i);
            let preexisting = journal_path
                .metadata()
                .map(|m| m.len() > 0)
                .unwrap_or(false);
            let engine = if preexisting {
                let engine = recover_with_policy(
                    &journal_path,
                    cfg.durability,
                    cfg.templates.clone(),
                    cfg.org.clone(),
                    multidb,
                    programs,
                )
                .map_err(PoolError::Recovery)?;
                recovered += resume_running(&engine, i);
                engine
            } else {
                let engine = Engine::with_config(
                    multidb,
                    programs,
                    EngineConfig {
                        org: cfg.org.clone(),
                        journal_path: Some(journal_path),
                        durability: cfg.durability,
                        ..EngineConfig::default()
                    },
                );
                for def in &cfg.templates {
                    engine.register(def.clone()).map_err(|e| {
                        PoolError::Io(std::io::Error::other(format!("template rejected: {e}")))
                    })?;
                }
                engine
            };
            let engine = Arc::new(engine);
            let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
            let depth = Arc::new(AtomicI64::new(0));
            let gauge = registry.gauge(&format!("server.queue.depth.shard{i}"));
            let worker = {
                let engine = Arc::clone(&engine);
                let depth = Arc::clone(&depth);
                let gauge = Arc::clone(&gauge);
                let batch_max = cfg.batch_max.max(1);
                let throttle = cfg.throttle;
                std::thread::Builder::new()
                    .name(format!("wfms-shard-{i}"))
                    .spawn(move || worker_loop(engine, rx, depth, gauge, batch_max, throttle))
                    .expect("spawn shard worker")
            };
            shards.push(Shard {
                engine,
                tx,
                depth,
                worker: Mutex::new(Some(worker)),
            });
        }

        Ok(Self {
            shards,
            nshards: nshards as u64,
            rr: AtomicUsize::new(0),
            queue_capacity: cfg.queue_capacity,
            registry: Arc::clone(&registry),
            accepted: registry.counter("server.submit.accepted"),
            overloaded: registry.counter("server.submit.overloaded"),
            failed: registry.counter("server.submit.failed"),
            completions: registry.counter("server.worklist.completions"),
            recovered,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Instances resumed from shard journals when the pool opened.
    pub fn recovered_instances(&self) -> u64 {
        self.recovered
    }

    /// The metrics registry the pool publishes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Submits one instance start *without blocking*: `sink` is
    /// invoked — from the shard worker thread — exactly once, after
    /// the batch's single journal flush, so a `201` rendered from it
    /// still implies durability. This is the event-loop entry point;
    /// [`ShardPool::submit`] is the blocking convenience built on it.
    ///
    /// Returns [`SubmitDispatch::Overloaded`] (and drops `sink`
    /// uncalled) when the shard queue is at its high-water mark;
    /// otherwise [`SubmitDispatch::Dispatched`] — the sink has been
    /// or will be called, possibly with an error.
    pub fn submit_with(
        &self,
        process: &str,
        input: Container,
        sink: Box<dyn FnOnce(SubmitReply) + Send + 'static>,
    ) -> SubmitDispatch {
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[idx];
        let accepted = Arc::clone(&self.accepted);
        let failed = Arc::clone(&self.failed);
        let nshards = self.nshards;
        let reply: ReplySink = Box::new(move |inner| match inner {
            Ok((local, status, output)) => {
                accepted.inc();
                sink(Ok((local.0 * nshards + idx as u64, status, output)));
            }
            Err(e) => {
                failed.inc();
                sink(Err(e));
            }
        });
        let job = Job::Submit {
            process: process.to_owned(),
            input,
            reply,
        };
        match shard.tx.try_send(job) {
            Ok(()) => {
                shard.depth.fetch_add(1, Ordering::Relaxed);
                SubmitDispatch::Dispatched
            }
            Err(TrySendError::Full(_)) => {
                self.overloaded.inc();
                SubmitDispatch::Overloaded {
                    depth: shard.depth.load(Ordering::Relaxed),
                    capacity: self.queue_capacity,
                }
            }
            Err(TrySendError::Disconnected(job)) => {
                // Only during shutdown; answer through the sink so the
                // caller sees one uniform completion path.
                if let Job::Submit { reply, .. } = job {
                    reply(Err(("shard worker stopped".to_owned(), false)));
                }
                SubmitDispatch::Dispatched
            }
        }
    }

    /// Submits one instance start, blocking until the owning shard's
    /// group commit has made it durable (or until it is rejected).
    pub fn submit(&self, process: &str, input: Container) -> SubmitOutcome {
        let (reply_tx, reply_rx) = sync_channel::<SubmitReply>(1);
        let sink = Box::new(move |reply: SubmitReply| {
            let _ = reply_tx.send(reply);
        });
        match self.submit_with(process, input, sink) {
            SubmitDispatch::Overloaded { depth, capacity } => {
                return SubmitOutcome::Overloaded { depth, capacity };
            }
            SubmitDispatch::Dispatched => {}
        }
        match reply_rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Ok((id, status, output))) => SubmitOutcome::Accepted { id, status, output },
            Ok(Err((error, unknown_process))) => SubmitOutcome::Failed {
                error,
                unknown_process,
            },
            Err(_) => {
                self.failed.inc();
                SubmitOutcome::Failed {
                    error: "shard worker did not answer".to_owned(),
                    unknown_process: false,
                }
            }
        }
    }

    /// `(process name, status, output)` of the instance behind an
    /// external id.
    pub fn status(&self, ext: u64) -> Option<(String, InstanceStatus, Container)> {
        let (shard, local) = self.decode(ext)?;
        let engine = &self.shards[shard].engine;
        let id = InstanceId(local);
        let status = engine.status(id).ok()?;
        let process = engine
            .instances()
            .into_iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, p, _)| p)?;
        let output = engine.output(id).ok()?;
        Some((process, status, output))
    }

    /// Open work items of `person` across every shard, with external
    /// ids, sorted by external item id.
    pub fn worklist(&self, person: &str) -> Vec<(u64, u64, WorkItem)> {
        let mut out = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            for item in shard.engine.worklist(person) {
                out.push((
                    self.encode(item.id.0, idx),
                    self.encode(item.instance.0, idx),
                    item,
                ));
            }
        }
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Completes (claim + execute) a work item by external id as
    /// `person`, then flushes the owning shard's journal so the
    /// completion is durable before the call returns.
    pub fn complete(&self, ext_item: u64, person: &str) -> Result<(), EngineError> {
        let (shard, local) = self.decode(ext_item).ok_or(EngineError::Worklist(
            wfms_engine::WorklistError::NoSuchItem(WorkItemId(ext_item)),
        ))?;
        let engine = &self.shards[shard].engine;
        engine.execute_item(WorkItemId(local), person)?;
        engine.flush_journal()?;
        self.completions.inc();
        Ok(())
    }

    /// Flushes every queued submission through its shard (FIFO
    /// barriers), then drains every engine (flush + checkpoint +
    /// flush). Returns total journal events dropped by compaction.
    pub fn drain(&self) -> Result<usize, EngineError> {
        let mut waits = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = sync_channel::<()>(1);
            if shard.tx.send(Job::Barrier(tx)).is_ok() {
                waits.push(rx);
            }
        }
        for rx in waits {
            let _ = rx.recv_timeout(REPLY_TIMEOUT);
        }
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.engine.drain()?;
        }
        Ok(dropped)
    }

    /// Stops every shard worker and joins it. Queued jobs submitted
    /// before the stop are still processed and flushed. Idempotent.
    pub fn stop(&self) {
        for shard in &self.shards {
            let _ = shard.tx.send(Job::Stop);
        }
        for shard in &self.shards {
            if let Some(handle) = shard.worker.lock().take() {
                let _ = handle.join();
            }
        }
    }

    /// Instance counts `(running, finished, cancelled)` across shards.
    pub fn instance_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for shard in &self.shards {
            for (_, _, status) in shard.engine.instances() {
                match status {
                    InstanceStatus::Running => counts.0 += 1,
                    InstanceStatus::Finished => counts.1 += 1,
                    InstanceStatus::Cancelled => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// Total queued submissions across shards right now.
    pub fn queue_depth(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .sum()
    }

    fn encode(&self, local: u64, shard: usize) -> u64 {
        local * self.nshards + shard as u64
    }

    fn decode(&self, ext: u64) -> Option<(usize, u64)> {
        let shard = (ext % self.nshards) as usize;
        let local = ext / self.nshards;
        (local > 0).then_some((shard, local))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Validates (or writes) `server.meta.json` in `dir`.
fn check_meta(dir: &Path, shards: usize) -> Result<(), PoolError> {
    let meta_path = dir.join("server.meta.json");
    match std::fs::read_to_string(&meta_path) {
        Ok(text) => {
            let meta: ServerMeta = serde_json::from_str(&text)
                .map_err(|e| PoolError::Io(std::io::Error::other(format!("bad meta: {e}"))))?;
            if meta.shards != shards {
                return Err(PoolError::ShardMismatch {
                    on_disk: meta.shards,
                    requested: shards,
                });
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let meta = ServerMeta { shards };
            std::fs::write(
                &meta_path,
                serde_json::to_string(&meta).expect("meta serializes"),
            )?;
            Ok(())
        }
        Err(e) => Err(PoolError::Io(e)),
    }
}

/// Resumes every instance a recovered shard reports as running —
/// recovery re-readies what was in flight; this navigates it onward.
/// Returns how many instances were resumed.
fn resume_running(engine: &Engine, shard: usize) -> u64 {
    let mut resumed = 0;
    for (id, _, status) in engine.instances() {
        if status == InstanceStatus::Running {
            resumed += 1;
            if let Err(e) = engine.run_to_quiescence(id) {
                eprintln!("shard {shard}: resume of instance {id} failed: {e}");
            }
        }
    }
    resumed
}

/// The shard worker: pop a batch, navigate it, flush once, answer.
fn worker_loop(
    engine: Arc<Engine>,
    rx: Receiver<Job>,
    depth: Arc<AtomicI64>,
    gauge: Arc<wfms_observe::Gauge>,
    batch_max: usize,
    throttle: Option<Duration>,
) {
    let mut stop = false;
    while !stop {
        let Ok(first) = rx.recv() else { break };
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }

        let mut replies: Vec<(ReplySink, InnerReply)> = Vec::new();
        let mut barriers: Vec<SyncSender<()>> = Vec::new();
        for job in batch {
            match job {
                Job::Submit {
                    process,
                    input,
                    reply,
                } => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    if let Some(pause) = throttle {
                        std::thread::sleep(pause);
                    }
                    let result = engine
                        .start(&process, input)
                        .and_then(|id| engine.run_to_quiescence(id).map(|s| (id, s)))
                        .and_then(|(id, status)| engine.output(id).map(|out| (id, status, out)))
                        .map_err(|e| {
                            let unknown = matches!(e, EngineError::UnknownProcess(_));
                            (e.to_string(), unknown)
                        });
                    replies.push((reply, result));
                }
                Job::Barrier(reply) => barriers.push(reply),
                Job::Stop => {
                    stop = true;
                    break;
                }
            }
        }
        gauge.set(depth.load(Ordering::Relaxed));

        // One group commit for the whole batch, *then* the
        // acknowledgements: an ACK certifies durability.
        if let Err(e) = engine.flush_journal() {
            for (reply, _) in replies {
                reply(Err((format!("journal flush failed: {e}"), false)));
            }
            for b in barriers {
                let _ = b.send(());
            }
            continue;
        }
        for (reply, result) in replies {
            reply(result);
        }
        for b in barriers {
            let _ = b.send(());
        }
    }
    // Final barrier so nothing accepted is left unflushed.
    let _ = engine.flush_journal();
}
