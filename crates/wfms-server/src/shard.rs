//! The sharded instance manager.
//!
//! A [`ShardPool`] owns N shards; each shard is an [`Engine`] with its
//! own durable journal file (`shard-<i>.journal` under the data
//! directory), a bounded submission queue and a dedicated worker
//! thread. Submissions are spread round-robin; the worker pops a
//! *batch* of queued submissions, navigates each to quiescence, then
//! issues **one** journal flush for the whole batch before
//! acknowledging any of them — group commit. An acknowledgement
//! therefore implies durability: after `kill -9`, every accepted
//! submission is recovered from its shard journal.
//!
//! Admission control is the queue bound itself: when a shard's queue
//! is at the high-water mark, [`ShardPool::submit`] returns
//! [`SubmitOutcome::Overloaded`] immediately instead of queueing
//! without bound. Queue depth and accept/reject counts are published
//! through the pool's [`Registry`].
//!
//! ## External ids
//!
//! Each shard allocates local instance and work-item ids from 1. On
//! the wire they are folded with the shard index:
//! `ext = local * nshards + shard`. When tenancy is enabled the owning
//! tenant's slot additionally occupies the top [`TENANT_BITS`] bits:
//! `ext = (slot << (64 - TENANT_BITS)) | (local * nshards + shard)`.
//! The mapping is stable across restarts as long as the shard count
//! and tenant-bit layout are unchanged — which is why the pool records
//! both in `server.meta.json` and refuses to reopen a data directory
//! with a different `--shards` or a flipped tenancy mode.
//!
//! ## Tenancy
//!
//! With a tenant table installed ([`PoolConfig::tenants`]), each
//! submission is attributed to a tenant. Admission is two-staged:
//! a per-tenant in-flight quota checked at dispatch (breach →
//! [`SubmitDispatch::Overloaded`], i.e. `429`), then weighted
//! deficit-round-robin inside the shard worker — each tenant has its
//! own FIFO and the worker assembles every group-commit batch by
//! DRR over the non-empty FIFOs, so a hot tenant saturating its quota
//! cannot starve a quiet one. Group commit is preserved: one flush
//! per batch regardless of how many tenants contributed to it.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use txn_substrate::{DurabilityPolicy, MultiDatabase, ProgramRegistry};
use wfms_engine::{
    recover_with_policy, spec_hash_of, Engine, EngineConfig, EngineError, InstanceId,
    InstanceStatus, MigrationOutcome, OrgModel, WorkItem, WorkItemId,
};
use wfms_model::{Container, ProcessDefinition};
use wfms_observe::{Counter, Registry};

use crate::tenant::{Tenant, TenantSpec, TenantTable, MAX_TENANTS, TENANT_BITS};

/// How long a submitter waits for its shard worker to answer before
/// giving up (the worker only goes silent if it panicked).
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Persisted pool invariants, stored as `server.meta.json` in the
/// data directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServerMeta {
    shards: usize,
    /// Spec content hashes (hex) of every template version ever
    /// registered into this directory, in deploy order. The definition
    /// behind each hash lives in `templates/<hash>.json`; together they
    /// are the exact template set shard journals replay against.
    templates: Vec<String>,
    /// Wire-id bits reserved for the tenant slot: [`TENANT_BITS`] when
    /// the directory was created with tenancy enabled, 0 otherwise.
    /// Pinned for the same reason the shard count is — changing it
    /// shifts every external id.
    tenant_bits: usize,
    /// Ordered tenant slot list (slot = index + 1), first-seen order.
    /// Append-only: hot reloads add names, never move or drop them.
    tenants: Vec<String>,
}

/// Pre-tenancy meta shape: shard count and template hashes only.
#[derive(Debug, Deserialize)]
struct MetaV2 {
    shards: usize,
    templates: Vec<String>,
}

/// Pre-versioning meta shape: only the shard count was recorded.
#[derive(Debug, Deserialize)]
struct LegacyMeta {
    shards: usize,
}

/// Errors opening a [`ShardPool`].
#[derive(Debug)]
pub enum PoolError {
    /// The data directory or meta file could not be read/written.
    Io(std::io::Error),
    /// The data directory was created with a different shard count.
    ShardMismatch {
        /// Count recorded in `server.meta.json`.
        on_disk: usize,
        /// Count requested now.
        requested: usize,
    },
    /// A definition supplied at open names a process this directory
    /// already knows, but its content hash matches none of the stored
    /// versions — the spec changed out of band.
    SpecMismatch {
        /// Process name both specs carry.
        process: String,
        /// Current default version (hex hash) recorded on disk.
        on_disk: String,
        /// Hash of the definition supplied now.
        requested: String,
    },
    /// The data directory was created with a different tenant-bit
    /// layout (tenancy flipped on or off across a reopen).
    TenancyMismatch {
        /// Tenant bits recorded in `server.meta.json`.
        on_disk: usize,
        /// Tenant bits implied by the current configuration.
        requested: usize,
    },
    /// A deployed definition failed validation or compilation — a
    /// client error, not a server fault.
    Rejected(String),
    /// A shard journal could not be recovered.
    Recovery(wfms_engine::RecoveryError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Io(e) => write!(f, "data directory: {e}"),
            PoolError::ShardMismatch { on_disk, requested } => write!(
                f,
                "data directory was created with --shards {on_disk}, \
                 reopened with --shards {requested}; external ids would shift"
            ),
            PoolError::SpecMismatch {
                process,
                on_disk,
                requested,
            } => write!(
                f,
                "process {process:?} is pinned to version {on_disk} on disk, but the \
                 supplied definition hashes to {requested}; the spec changed — reopen \
                 with the original definition, or deploy the new one side-by-side \
                 (POST /admin/deploy)"
            ),
            PoolError::TenancyMismatch { on_disk, requested } => write!(
                f,
                "data directory was created with {on_disk} tenant bits in its wire ids, \
                 reopened with a configuration implying {requested}; external ids would \
                 shift — reopen with the same tenancy mode (--tenants present or absent \
                 as at creation)"
            ),
            PoolError::Rejected(e) => write!(f, "deploy rejected: {e}"),
            PoolError::Recovery(e) => write!(f, "shard recovery: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<std::io::Error> for PoolError {
    fn from(e: std::io::Error) -> Self {
        PoolError::Io(e)
    }
}

/// What happens to running instances of a process when a new version
/// of it is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Old instances keep their pinned version and finish under it;
    /// only new submissions see the deployed version.
    DrainOld,
    /// Running instances parked at a scope boundary are migrated to
    /// the deployed version (journalled as `Migrated`); instances with
    /// an activity mid-flight fall back to draining under their old
    /// version.
    MigrateAtScopeBoundary,
}

impl MigrationPolicy {
    /// Parses the wire/CLI spelling of a policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "drain-old" => Some(Self::DrainOld),
            "migrate" | "migrate-at-scope-boundary" => Some(Self::MigrateAtScopeBoundary),
            _ => None,
        }
    }
}

/// Outcome of [`ShardPool::deploy`].
#[derive(Debug)]
pub struct DeployReport {
    /// Process template name.
    pub process: String,
    /// Version (hex hash) now the default for new submissions.
    pub version: String,
    /// Running instances migrated to the new version.
    pub migrated: u64,
    /// Running instances left on their old version (mid-flight, or
    /// policy was [`MigrationPolicy::DrainOld`]).
    pub skipped: u64,
    /// Running instances that were already on the deployed version.
    pub already_current: u64,
}

/// Result of a submission attempt.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The instance was started, navigated to quiescence and its
    /// journal records flushed — durable.
    Accepted {
        /// External instance id.
        id: u64,
        /// Status at quiescence.
        status: InstanceStatus,
        /// Process output container.
        output: Container,
    },
    /// The shard's queue is at the high-water mark; retry later.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: i64,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The engine rejected the submission.
    Failed {
        /// Engine error rendering.
        error: String,
        /// True when the process template does not exist (a client
        /// error, not a server fault).
        unknown_process: bool,
    },
}

/// Immediate result of [`ShardPool::submit_with`].
#[derive(Debug)]
pub enum SubmitDispatch {
    /// The job is queued (or was answered through the sink already):
    /// the sink fires after the owning shard's group commit.
    Dispatched,
    /// The shard's queue is at the high-water mark; the sink was
    /// dropped uncalled. Answer `429` immediately.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: i64,
        /// Configured queue capacity.
        capacity: usize,
    },
}

/// Worker-side submit result: *local* instance id (shard encoding not
/// yet applied).
type InnerReply = Result<(InstanceId, InstanceStatus, Container), (String, bool)>;

/// What a [`ShardPool::submit_with`] sink receives after the owning
/// shard's group commit: external id + status + output, or
/// `(error rendering, unknown_process)`.
pub type SubmitReply = Result<(u64, InstanceStatus, Container), (String, bool)>;

/// Invoked exactly once, *after* the batch's journal flush.
type ReplySink = Box<dyn FnOnce(InnerReply) + Send + 'static>;

enum Job {
    Submit {
        process: String,
        input: Container,
        /// Owning tenant (`None` when tenancy is disabled): selects the
        /// DRR lane and names the tenant journalled on the instance.
        tenant: Option<Arc<Tenant>>,
        reply: ReplySink,
    },
    /// FIFO barrier: answered only after every job queued before it
    /// has been processed *and flushed*.
    Barrier(SyncSender<()>),
    /// Worker shutdown sentinel.
    Stop,
}

struct Shard {
    engine: Arc<Engine>,
    tx: SyncSender<Job>,
    depth: Arc<AtomicI64>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Pool configuration.
pub struct PoolConfig {
    /// Data directory holding `server.meta.json` and the shard
    /// journals. Created if absent.
    pub data_dir: PathBuf,
    /// Number of shards (worker threads + journals).
    pub shards: usize,
    /// Submission queue high-water mark per shard.
    pub queue_capacity: usize,
    /// Maximum submissions navigated per group commit.
    pub batch_max: usize,
    /// Journal durability policy for every shard.
    pub durability: DurabilityPolicy,
    /// Organization model installed into every shard.
    pub org: OrgModel,
    /// Process definitions registered into every shard (also the
    /// template set recovery replays against).
    pub templates: Vec<ProcessDefinition>,
    /// Artificial per-submission delay in the worker, for drills that
    /// need a deterministically slow consumer. `None` in production.
    pub throttle: Option<Duration>,
    /// Tenant table. Empty = tenancy disabled: wire ids carry no
    /// tenant bits and submissions are unattributed. Non-empty =
    /// [`TENANT_BITS`] are reserved in every wire id and the layout is
    /// pinned in `server.meta.json`.
    pub tenants: Vec<TenantSpec>,
}

impl PoolConfig {
    /// Conventional defaults: 1 shard, queue 1024, group commit of 64.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            shards: 1,
            queue_capacity: 1024,
            batch_max: 64,
            durability: DurabilityPolicy::Batched { n: 64 },
            org: OrgModel::new(),
            templates: Vec::new(),
            throttle: None,
            tenants: Vec::new(),
        }
    }
}

/// The sharded instance manager (see module docs).
pub struct ShardPool {
    shards: Vec<Shard>,
    nshards: u64,
    rr: AtomicUsize,
    queue_capacity: usize,
    data_dir: PathBuf,
    /// In-memory mirror of `server.meta.json`; the lock also
    /// serializes concurrent deploys.
    meta: Mutex<ServerMeta>,
    registry: Arc<Registry>,
    accepted: Arc<Counter>,
    overloaded: Arc<Counter>,
    failed: Arc<Counter>,
    completions: Arc<Counter>,
    recovered: u64,
    /// Wire-id bits reserved for the tenant slot ([`TENANT_BITS`] with
    /// tenancy enabled, 0 without); mirrors the pinned meta value.
    tenant_bits: u32,
    /// Live tenant table, swapped atomically on hot reload. Empty when
    /// tenancy is disabled.
    tenants: RwLock<Arc<TenantTable>>,
}

impl ShardPool {
    /// Opens (or creates) the pool's data directory, recovering every
    /// shard journal that already exists and resuming its in-flight
    /// instances. `provision` supplies the multidatabase + program
    /// registry for each shard index (each shard gets its own, so
    /// shard workers never contend on substrate locks).
    pub fn open(
        cfg: PoolConfig,
        registry: Arc<Registry>,
        provision: &dyn Fn(usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>),
    ) -> Result<Self, PoolError> {
        let nshards = cfg.shards.max(1);
        let tenant_bits = if cfg.tenants.is_empty() {
            0
        } else {
            TENANT_BITS as usize
        };
        std::fs::create_dir_all(&cfg.data_dir)?;
        let (meta, templates) = check_meta(
            &cfg.data_dir,
            nshards,
            tenant_bits,
            &cfg.tenants,
            &cfg.templates,
        )?;
        let table = TenantTable::build(&meta.tenants, &cfg.tenants, None, &registry);

        let mut shards = Vec::with_capacity(nshards);
        let mut recovered = 0u64;
        for i in 0..nshards {
            let journal_path = cfg.data_dir.join(format!("shard-{i}.journal"));
            let (multidb, programs) = provision(i);
            let preexisting = journal_path
                .metadata()
                .map(|m| m.len() > 0)
                .unwrap_or(false);
            let engine = if preexisting {
                let engine = recover_with_policy(
                    &journal_path,
                    cfg.durability,
                    templates.clone(),
                    cfg.org.clone(),
                    multidb,
                    programs,
                )
                .map_err(PoolError::Recovery)?;
                recovered += resume_running(&engine, i);
                engine
            } else {
                let engine = Engine::with_config(
                    multidb,
                    programs,
                    EngineConfig {
                        org: cfg.org.clone(),
                        journal_path: Some(journal_path),
                        durability: cfg.durability,
                        ..EngineConfig::default()
                    },
                );
                for def in &templates {
                    engine.register(def.clone()).map_err(|e| {
                        PoolError::Io(std::io::Error::other(format!("template rejected: {e}")))
                    })?;
                }
                engine
            };
            let engine = Arc::new(engine);
            let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
            let depth = Arc::new(AtomicI64::new(0));
            let gauge = registry.gauge(&format!("server.queue.depth.shard{i}"));
            let worker = {
                let engine = Arc::clone(&engine);
                let depth = Arc::clone(&depth);
                let gauge = Arc::clone(&gauge);
                let batch_max = cfg.batch_max.max(1);
                let throttle = cfg.throttle;
                let capacity = cfg.queue_capacity;
                std::thread::Builder::new()
                    .name(format!("wfms-shard-{i}"))
                    .spawn(move || {
                        worker_loop(engine, rx, depth, gauge, batch_max, capacity, throttle)
                    })
                    .expect("spawn shard worker")
            };
            shards.push(Shard {
                engine,
                tx,
                depth,
                worker: Mutex::new(Some(worker)),
            });
        }

        Ok(Self {
            shards,
            nshards: nshards as u64,
            rr: AtomicUsize::new(0),
            queue_capacity: cfg.queue_capacity,
            data_dir: cfg.data_dir,
            meta: Mutex::new(meta),
            registry: Arc::clone(&registry),
            accepted: registry.counter("server.submit.accepted"),
            overloaded: registry.counter("server.submit.overloaded"),
            failed: registry.counter("server.submit.failed"),
            completions: registry.counter("server.worklist.completions"),
            recovered,
            tenant_bits: tenant_bits as u32,
            tenants: RwLock::new(Arc::new(table)),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Instances resumed from shard journals when the pool opened.
    pub fn recovered_instances(&self) -> u64 {
        self.recovered
    }

    /// The metrics registry the pool publishes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// True when this pool was opened with a tenant table (wire ids
    /// carry tenant bits, submissions require attribution).
    pub fn tenancy_enabled(&self) -> bool {
        self.tenant_bits > 0
    }

    /// The live tenant table (hot-swapped on reload).
    pub fn tenant_table(&self) -> Arc<TenantTable> {
        Arc::clone(&self.tenants.read())
    }

    /// Resolves an API key to its tenant — constant-time over the
    /// whole table (see [`TenantTable::authenticate`]).
    pub fn authenticate(&self, key: &[u8]) -> Option<Arc<Tenant>> {
        self.tenants.read().authenticate(key)
    }

    /// Replaces the live tenant set from a freshly parsed tenants
    /// file. Slot assignments are append-only: names this directory
    /// has seen keep their slot (pinned in `server.meta.json`), new
    /// names are appended, and names absent from `specs` keep their
    /// slot reserved but can no longer authenticate. In-flight
    /// counters are carried over by name so quota accounting survives
    /// the swap. Returns the number of live tenants.
    pub fn reload_tenants(&self, specs: &[TenantSpec]) -> Result<usize, PoolError> {
        if self.tenant_bits == 0 {
            return Err(PoolError::Rejected(
                "tenancy is not enabled on this server (start with --tenants)".to_owned(),
            ));
        }
        let mut meta = self.meta.lock();
        let mut dirty = false;
        for spec in specs {
            if !meta.tenants.iter().any(|n| n == &spec.name) {
                if meta.tenants.len() >= MAX_TENANTS {
                    return Err(PoolError::Rejected(format!(
                        "tenant slot space exhausted ({MAX_TENANTS} names already pinned)"
                    )));
                }
                meta.tenants.push(spec.name.clone());
                dirty = true;
            }
        }
        if dirty {
            write_meta(&self.data_dir.join("server.meta.json"), &meta)?;
        }
        let mut table = self.tenants.write();
        *table = Arc::new(TenantTable::build(
            &meta.tenants,
            specs,
            Some(&table),
            &self.registry,
        ));
        Ok(table.live().count())
    }

    /// Submits one instance start *without blocking*: `sink` is
    /// invoked — from the shard worker thread — exactly once, after
    /// the batch's single journal flush, so a `201` rendered from it
    /// still implies durability. This is the event-loop entry point;
    /// [`ShardPool::submit`] is the blocking convenience built on it.
    ///
    /// Returns [`SubmitDispatch::Overloaded`] (and drops `sink`
    /// uncalled) when the shard queue is at its high-water mark;
    /// otherwise [`SubmitDispatch::Dispatched`] — the sink has been
    /// or will be called, possibly with an error.
    pub fn submit_with(
        &self,
        process: &str,
        input: Container,
        tenant: Option<Arc<Tenant>>,
        sink: Box<dyn FnOnce(SubmitReply) + Send + 'static>,
    ) -> SubmitDispatch {
        // Per-tenant admission quota, stage one: the in-flight level is
        // reserved *before* the queue, and released by the reply sink
        // (every dispatched submission is answered exactly once) or on
        // a queue rejection below.
        if let Some(t) = &tenant {
            let prev = t.inflight.fetch_add(1, Ordering::Relaxed);
            if prev >= t.max_inflight {
                t.inflight.fetch_sub(1, Ordering::Relaxed);
                t.overloaded.inc();
                self.overloaded.inc();
                return SubmitDispatch::Overloaded {
                    depth: prev,
                    capacity: t.max_inflight as usize,
                };
            }
            t.inflight_gauge.set(t.inflight.load(Ordering::Relaxed));
        }
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[idx];
        let accepted = Arc::clone(&self.accepted);
        let failed = Arc::clone(&self.failed);
        let nshards = self.nshards;
        let tenant_bits = self.tenant_bits;
        let sink_tenant = tenant.clone();
        let reply: ReplySink = Box::new(move |inner| {
            if let Some(t) = &sink_tenant {
                t.inflight.fetch_sub(1, Ordering::Relaxed);
                t.inflight_gauge.set(t.inflight.load(Ordering::Relaxed));
            }
            match inner {
                Ok((local, status, output)) => {
                    accepted.inc();
                    let slot = sink_tenant.as_ref().map(|t| t.slot).unwrap_or(0);
                    if let Some(t) = &sink_tenant {
                        t.accepted.inc();
                    }
                    sink(Ok((
                        encode_ext(local.0, idx, nshards, slot, tenant_bits),
                        status,
                        output,
                    )));
                }
                Err(e) => {
                    failed.inc();
                    sink(Err(e));
                }
            }
        });
        let job = Job::Submit {
            process: process.to_owned(),
            input,
            tenant: tenant.clone(),
            reply,
        };
        match shard.tx.try_send(job) {
            Ok(()) => {
                shard.depth.fetch_add(1, Ordering::Relaxed);
                SubmitDispatch::Dispatched
            }
            Err(TrySendError::Full(_)) => {
                // The job (and its sink) is dropped uncalled: release
                // the quota reservation here.
                if let Some(t) = &tenant {
                    t.inflight.fetch_sub(1, Ordering::Relaxed);
                    t.inflight_gauge.set(t.inflight.load(Ordering::Relaxed));
                    t.overloaded.inc();
                }
                self.overloaded.inc();
                SubmitDispatch::Overloaded {
                    depth: shard.depth.load(Ordering::Relaxed),
                    capacity: self.queue_capacity,
                }
            }
            Err(TrySendError::Disconnected(job)) => {
                // Only during shutdown; answer through the sink so the
                // caller sees one uniform completion path.
                if let Job::Submit { reply, .. } = job {
                    reply(Err(("shard worker stopped".to_owned(), false)));
                }
                SubmitDispatch::Dispatched
            }
        }
    }

    /// Submits one instance start, blocking until the owning shard's
    /// group commit has made it durable (or until it is rejected).
    pub fn submit(&self, process: &str, input: Container) -> SubmitOutcome {
        self.submit_as(process, input, None)
    }

    /// [`ShardPool::submit`] attributed to a tenant: quota-checked,
    /// DRR-scheduled, and the returned external id carries the
    /// tenant's slot.
    pub fn submit_as(
        &self,
        process: &str,
        input: Container,
        tenant: Option<Arc<Tenant>>,
    ) -> SubmitOutcome {
        let (reply_tx, reply_rx) = sync_channel::<SubmitReply>(1);
        let sink = Box::new(move |reply: SubmitReply| {
            let _ = reply_tx.send(reply);
        });
        match self.submit_with(process, input, tenant, sink) {
            SubmitDispatch::Overloaded { depth, capacity } => {
                return SubmitOutcome::Overloaded { depth, capacity };
            }
            SubmitDispatch::Dispatched => {}
        }
        match reply_rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Ok((id, status, output))) => SubmitOutcome::Accepted { id, status, output },
            Ok(Err((error, unknown_process))) => SubmitOutcome::Failed {
                error,
                unknown_process,
            },
            Err(_) => {
                self.failed.inc();
                SubmitOutcome::Failed {
                    error: "shard worker did not answer".to_owned(),
                    unknown_process: false,
                }
            }
        }
    }

    /// `(process name, status, pinned version, output)` of the
    /// instance behind an external id. With tenancy enabled, an ext id
    /// whose tenant slot does not match the tenant journalled on the
    /// instance resolves to nothing — a forged slot cannot reach
    /// another tenant's instance.
    pub fn status(&self, ext: u64) -> Option<(String, InstanceStatus, String, Container)> {
        let (shard, local, slot) = self.decode(ext)?;
        let engine = &self.shards[shard].engine;
        let id = InstanceId(local);
        if !self.slot_owns_instance(engine, id, slot) {
            return None;
        }
        let status = engine.status(id).ok()?;
        let process = engine
            .instances()
            .into_iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, p, _)| p)?;
        let version = engine.instance_version(id).ok()?;
        let output = engine.output(id).ok()?;
        Some((process, status, version, output))
    }

    /// The tenant slot folded into an external id (0 = untenanted, or
    /// tenancy disabled). `None` when the id is malformed.
    pub fn slot_of(&self, ext: u64) -> Option<u16> {
        self.decode(ext).map(|(_, _, slot)| slot)
    }

    /// True when the tenant slot claimed by a wire id matches the
    /// tenant journalled on the instance (trivially true with tenancy
    /// disabled).
    fn slot_owns_instance(&self, engine: &Engine, id: InstanceId, slot: u16) -> bool {
        if self.tenant_bits == 0 {
            return slot == 0;
        }
        let journalled = match engine.instance_tenant(id) {
            Ok(t) => t,
            Err(_) => return false,
        };
        match (slot, journalled) {
            (0, None) => true,
            (0, Some(_)) | (_, None) => false,
            (s, Some(name)) => self.tenants.read().slot_of_name(&name) == Some(s),
        }
    }

    /// Registers a new version of a process into every shard and makes
    /// it the default for new submissions; existing instances are
    /// handled per `policy`. Durable in stages: the definition file is
    /// written first, then the meta hash list, then each shard journals
    /// its `TemplateDeployed` (and any `Migrated`) events and flushes —
    /// a crash between any two stages recovers to a consistent state.
    pub fn deploy(
        &self,
        def: ProcessDefinition,
        policy: MigrationPolicy,
    ) -> Result<DeployReport, PoolError> {
        // Validate before anything is persisted: a rejected definition
        // must leave no trace in the templates directory or the meta.
        let errors = wfms_model::validate(&def);
        if !errors.is_empty() {
            let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
            return Err(PoolError::Rejected(rendered.join("; ")));
        }
        let version = format!("{:016x}", spec_hash_of(&def));
        let process = def.name.clone();
        {
            let mut meta = self.meta.lock();
            if !meta.templates.contains(&version) {
                persist_template(&self.data_dir.join("templates"), &version, &def)?;
                meta.templates.push(version.clone());
                write_meta(&self.data_dir.join("server.meta.json"), &meta)?;
            }
        }
        let mut report = DeployReport {
            process: process.clone(),
            version: version.clone(),
            migrated: 0,
            skipped: 0,
            already_current: 0,
        };
        let flush_err =
            |e: EngineError| PoolError::Io(std::io::Error::other(format!("journal flush: {e}")));
        for shard in &self.shards {
            shard
                .engine
                .register(def.clone())
                .map_err(|e| PoolError::Rejected(e.to_string()))?;
            shard.engine.flush_journal().map_err(flush_err)?;
        }
        if policy == MigrationPolicy::MigrateAtScopeBoundary {
            for shard in &self.shards {
                let engine = &shard.engine;
                for (id, p, status) in engine.instances() {
                    if p != process || status != InstanceStatus::Running {
                        continue;
                    }
                    match engine.migrate_to_default(id) {
                        Ok(MigrationOutcome::Migrated { .. }) => {
                            report.migrated += 1;
                            // Migration fixups may have re-readied
                            // automatic work; navigate it onward.
                            let _ = engine.run_to_quiescence(id);
                        }
                        Ok(MigrationOutcome::AlreadyCurrent) => report.already_current += 1,
                        Ok(MigrationOutcome::Skipped { .. }) | Err(_) => report.skipped += 1,
                    }
                }
                engine.flush_journal().map_err(flush_err)?;
            }
        }
        Ok(report)
    }

    /// Open work items of `person` across every shard, with external
    /// ids, sorted by external item id. With tenancy enabled, each
    /// item's ids carry the slot of the instance's tenant; `scope`
    /// restricts the listing to one slot (a tenant sees only its own
    /// items).
    pub fn worklist(&self, person: &str) -> Vec<(u64, u64, WorkItem)> {
        self.worklist_scoped(person, None)
    }

    /// [`ShardPool::worklist`] restricted to one tenant slot when
    /// `scope` is `Some`.
    pub fn worklist_scoped(&self, person: &str, scope: Option<u16>) -> Vec<(u64, u64, WorkItem)> {
        let table = self.tenants.read();
        let mut out = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            for item in shard.engine.worklist(person) {
                let slot = if self.tenant_bits == 0 {
                    0
                } else {
                    shard
                        .engine
                        .instance_tenant(item.instance)
                        .ok()
                        .flatten()
                        .and_then(|name| table.slot_of_name(&name))
                        .unwrap_or(0)
                };
                if scope.is_some_and(|s| s != slot) {
                    continue;
                }
                out.push((
                    self.encode(item.id.0, idx, slot),
                    self.encode(item.instance.0, idx, slot),
                    item,
                ));
            }
        }
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Completes (claim + execute) a work item by external id as
    /// `person`, then flushes the owning shard's journal so the
    /// completion is durable before the call returns. With tenancy
    /// enabled, the slot in the wire id must match the owning
    /// instance's tenant — a forged slot resolves to "no such item".
    pub fn complete(&self, ext_item: u64, person: &str) -> Result<(), EngineError> {
        let no_such_item =
            || EngineError::Worklist(wfms_engine::WorklistError::NoSuchItem(WorkItemId(ext_item)));
        let (shard, local, slot) = self.decode(ext_item).ok_or_else(no_such_item)?;
        let engine = &self.shards[shard].engine;
        let owner = engine
            .item_instance(WorkItemId(local))
            .ok_or_else(no_such_item)?;
        if !self.slot_owns_instance(engine, owner, slot) {
            return Err(no_such_item());
        }
        engine.execute_item(WorkItemId(local), person)?;
        engine.flush_journal()?;
        self.completions.inc();
        Ok(())
    }

    /// Flushes every queued submission through its shard (FIFO
    /// barriers), then drains every engine (flush + checkpoint +
    /// flush). Returns total journal events dropped by compaction.
    pub fn drain(&self) -> Result<usize, EngineError> {
        let mut waits = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = sync_channel::<()>(1);
            if shard.tx.send(Job::Barrier(tx)).is_ok() {
                waits.push(rx);
            }
        }
        for rx in waits {
            let _ = rx.recv_timeout(REPLY_TIMEOUT);
        }
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.engine.drain()?;
        }
        Ok(dropped)
    }

    /// Stops every shard worker and joins it. Queued jobs submitted
    /// before the stop are still processed and flushed. Idempotent.
    pub fn stop(&self) {
        for shard in &self.shards {
            let _ = shard.tx.send(Job::Stop);
        }
        for shard in &self.shards {
            if let Some(handle) = shard.worker.lock().take() {
                let _ = handle.join();
            }
        }
    }

    /// Instance counts `(running, finished, cancelled)` across shards.
    pub fn instance_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for shard in &self.shards {
            for (_, _, status) in shard.engine.instances() {
                match status {
                    InstanceStatus::Running => counts.0 += 1,
                    InstanceStatus::Finished => counts.1 += 1,
                    InstanceStatus::Cancelled => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// Total queued submissions across shards right now.
    pub fn queue_depth(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .sum()
    }

    fn encode(&self, local: u64, shard: usize, slot: u16) -> u64 {
        encode_ext(local, shard, self.nshards, slot, self.tenant_bits)
    }

    fn decode(&self, ext: u64) -> Option<(usize, u64, u16)> {
        decode_ext(ext, self.nshards, self.tenant_bits)
    }
}

/// Folds a shard-local id into the wire id: `ext = local * nshards +
/// shard`, with the tenant slot in the top `tenant_bits` bits when
/// tenancy is enabled (`tenant_bits == 0` keeps the pre-tenancy
/// layout, bit for bit). Template version identity is deliberately
/// *not* encoded in wire ids — an instance keeps its external id
/// across a live migration, and ids stay stable as long as the shard
/// count and tenant-bit layout do.
fn encode_ext(local: u64, shard: usize, nshards: u64, slot: u16, tenant_bits: u32) -> u64 {
    let base = local * nshards + shard as u64;
    if tenant_bits == 0 {
        base
    } else {
        (u64::from(slot) << (64 - tenant_bits)) | (base & (u64::MAX >> tenant_bits))
    }
}

/// Inverse of [`encode_ext`]: `(shard, local, slot)`. Locals are
/// allocated from 1, so a base that would fold to local 0 is rejected
/// rather than resolved to a nonexistent instance.
fn decode_ext(ext: u64, nshards: u64, tenant_bits: u32) -> Option<(usize, u64, u16)> {
    let (slot, base) = if tenant_bits == 0 {
        (0u16, ext)
    } else {
        (
            (ext >> (64 - tenant_bits)) as u16,
            ext & (u64::MAX >> tenant_bits),
        )
    };
    let shard = (base % nshards) as usize;
    let local = base / nshards;
    (local > 0).then_some((shard, local, slot))
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Validates (or writes) `server.meta.json` in `dir` and reconciles
/// the supplied definitions with the versions stored on disk.
///
/// Returns the meta record plus the full deploy-ordered template set —
/// every stored version followed by any genuinely new processes from
/// `cli` — which is both the recovery replay set and the registration
/// set for fresh shards. A `cli` definition whose *name* is already
/// recorded but whose content hash matches no stored version is
/// refused with [`PoolError::SpecMismatch`]: the spec changed out of
/// band, and silently replaying old journals against it would corrupt
/// recovery.
fn check_meta(
    dir: &Path,
    shards: usize,
    tenant_bits: usize,
    tenant_specs: &[TenantSpec],
    cli: &[ProcessDefinition],
) -> Result<(ServerMeta, Vec<ProcessDefinition>), PoolError> {
    let meta_path = dir.join("server.meta.json");
    let tpl_dir = dir.join("templates");
    let mut meta = match std::fs::read_to_string(&meta_path) {
        Ok(text) => {
            let meta = parse_meta(&text)?;
            if meta.shards != shards {
                return Err(PoolError::ShardMismatch {
                    on_disk: meta.shards,
                    requested: shards,
                });
            }
            if meta.tenant_bits != tenant_bits {
                return Err(PoolError::TenancyMismatch {
                    on_disk: meta.tenant_bits,
                    requested: tenant_bits,
                });
            }
            meta
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => ServerMeta {
            shards,
            templates: Vec::new(),
            tenant_bits,
            tenants: Vec::new(),
        },
        Err(e) => return Err(PoolError::Io(e)),
    };

    // Pin any tenant names this directory has not seen yet; existing
    // names keep their slot (reload_tenants follows the same rule).
    let mut dirty = false;
    for spec in tenant_specs {
        if !meta.tenants.iter().any(|n| n == &spec.name) {
            if meta.tenants.len() >= MAX_TENANTS {
                return Err(PoolError::Rejected(format!(
                    "tenant slot space exhausted ({MAX_TENANTS} names already pinned)"
                )));
            }
            meta.tenants.push(spec.name.clone());
            dirty = true;
        }
    }

    // Load every stored version in deploy order; the *last* hash per
    // name is that process's current default.
    let mut templates: Vec<ProcessDefinition> = Vec::with_capacity(meta.templates.len());
    let mut default_of: std::collections::HashMap<String, String> =
        std::collections::HashMap::new();
    for hash in &meta.templates {
        let path = tpl_dir.join(format!("{hash}.json"));
        let text = std::fs::read_to_string(&path).map_err(|e| {
            PoolError::Io(std::io::Error::other(format!(
                "stored template {hash}: {e}"
            )))
        })?;
        let def: ProcessDefinition = serde_json::from_str(&text).map_err(|e| {
            PoolError::Io(std::io::Error::other(format!(
                "stored template {hash}: {e}"
            )))
        })?;
        default_of.insert(def.name.clone(), hash.clone());
        templates.push(def);
    }

    for def in cli {
        let hash = format!("{:016x}", spec_hash_of(def));
        if meta.templates.contains(&hash) {
            continue; // already stored — possibly no longer the default
        }
        if let Some(on_disk) = default_of.get(def.name.as_str()) {
            return Err(PoolError::SpecMismatch {
                process: def.name.clone(),
                on_disk: on_disk.clone(),
                requested: hash,
            });
        }
        // A process name this directory has never seen: adopt it.
        persist_template(&tpl_dir, &hash, def)?;
        default_of.insert(def.name.clone(), hash.clone());
        meta.templates.push(hash);
        templates.push(def.clone());
        dirty = true;
    }
    if dirty || !meta_path.exists() {
        write_meta(&meta_path, &meta)?;
    }
    Ok((meta, templates))
}

/// Parses `server.meta.json`, accepting older shapes: pre-tenancy
/// metas (no tenant fields) upgrade to `tenant_bits: 0` — which is
/// exactly the layout those directories' wire ids use — and the
/// pre-versioning shape (only a shard count) additionally upgrades to
/// an empty template list, the supplied definitions then being adopted
/// as the initial versions.
fn parse_meta(text: &str) -> Result<ServerMeta, PoolError> {
    if let Ok(meta) = serde_json::from_str::<ServerMeta>(text) {
        return Ok(meta);
    }
    if let Ok(m) = serde_json::from_str::<MetaV2>(text) {
        return Ok(ServerMeta {
            shards: m.shards,
            templates: m.templates,
            tenant_bits: 0,
            tenants: Vec::new(),
        });
    }
    serde_json::from_str::<LegacyMeta>(text)
        .map(|m| ServerMeta {
            shards: m.shards,
            templates: Vec::new(),
            tenant_bits: 0,
            tenants: Vec::new(),
        })
        .map_err(|e| PoolError::Io(std::io::Error::other(format!("bad meta: {e}"))))
}

/// Writes one definition to `templates/<hash>.json` (idempotent).
fn persist_template(tpl_dir: &Path, hash: &str, def: &ProcessDefinition) -> Result<(), PoolError> {
    std::fs::create_dir_all(tpl_dir)?;
    let path = tpl_dir.join(format!("{hash}.json"));
    if !path.exists() {
        std::fs::write(
            &path,
            serde_json::to_string(def).expect("definition serializes"),
        )?;
    }
    Ok(())
}

/// Rewrites `server.meta.json`.
fn write_meta(meta_path: &Path, meta: &ServerMeta) -> Result<(), PoolError> {
    std::fs::write(
        meta_path,
        serde_json::to_string(meta).expect("meta serializes"),
    )?;
    Ok(())
}

/// Resumes every instance a recovered shard reports as running —
/// recovery re-readies what was in flight; this navigates it onward.
/// Returns how many instances were resumed.
fn resume_running(engine: &Engine, shard: usize) -> u64 {
    let mut resumed = 0;
    for (id, _, status) in engine.instances() {
        if status == InstanceStatus::Running {
            resumed += 1;
            if let Err(e) = engine.run_to_quiescence(id) {
                eprintln!("shard {shard}: resume of instance {id} failed: {e}");
            }
        }
    }
    resumed
}

/// One queued submission, parked in its tenant's DRR lane.
struct QueuedSubmit {
    process: String,
    input: Container,
    tenant: Option<Arc<Tenant>>,
    reply: ReplySink,
}

/// Per-tenant FIFO inside a shard worker, keyed by slot (slot 0 =
/// untenanted). `deficit` is the DRR credit in whole submissions.
struct Lane {
    fifo: VecDeque<QueuedSubmit>,
    deficit: u64,
    weight: u64,
}

/// The shard worker: drain the channel into per-tenant lanes, assemble
/// a batch by weighted deficit-round-robin over the non-empty lanes,
/// navigate it, flush once, answer.
///
/// Fairness: each DRR round credits every backlogged lane `weight`
/// submissions and dequeues up to its accumulated deficit, so over any
/// backlogged interval tenants progress proportionally to their
/// weights — a hot tenant with a deep FIFO cannot starve a quiet one
/// whose occasional submission is always near the front of its own
/// lane. A lane that empties forfeits its remaining deficit (classic
/// DRR: credit does not accrue while idle).
fn worker_loop(
    engine: Arc<Engine>,
    rx: Receiver<Job>,
    depth: Arc<AtomicI64>,
    gauge: Arc<wfms_observe::Gauge>,
    batch_max: usize,
    capacity: usize,
    throttle: Option<Duration>,
) {
    let capacity = capacity.max(1);
    let mut lanes: BTreeMap<u16, Lane> = BTreeMap::new();
    let mut queued = 0usize;
    let mut barriers: Vec<SyncSender<()>> = Vec::new();
    let mut stop = false;
    let mut disconnected = false;

    fn stash(
        lanes: &mut BTreeMap<u16, Lane>,
        queued: &mut usize,
        barriers: &mut Vec<SyncSender<()>>,
        stop: &mut bool,
        job: Job,
    ) {
        match job {
            Job::Submit {
                process,
                input,
                tenant,
                reply,
            } => {
                let (slot, weight) = tenant
                    .as_ref()
                    .map(|t| (t.slot, t.weight))
                    .unwrap_or((0, 1));
                let lane = lanes.entry(slot).or_insert_with(|| Lane {
                    fifo: VecDeque::new(),
                    deficit: 0,
                    weight,
                });
                lane.weight = weight; // reloads may rebalance shares
                lane.fifo.push_back(QueuedSubmit {
                    process,
                    input,
                    tenant,
                    reply,
                });
                *queued += 1;
            }
            Job::Barrier(reply) => barriers.push(reply),
            Job::Stop => *stop = true,
        }
    }

    loop {
        // Block for work only when every lane is dry and no barrier is
        // pending; otherwise just drain whatever has arrived.
        if queued == 0 && barriers.is_empty() {
            if stop || disconnected {
                break;
            }
            match rx.recv() {
                Ok(job) => stash(&mut lanes, &mut queued, &mut barriers, &mut stop, job),
                Err(_) => break,
            }
        }
        // Opportunistic drain, bounded so lanes can hold at most one
        // channel's worth of backlog — the channel bound stays the
        // admission high-water mark instead of an ever-draining relay.
        if !disconnected {
            while queued < capacity {
                match rx.try_recv() {
                    Ok(job) => stash(&mut lanes, &mut queued, &mut barriers, &mut stop, job),
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        }

        // Deficit-round-robin batch assembly.
        let mut batch: Vec<QueuedSubmit> = Vec::new();
        while batch.len() < batch_max && queued > 0 {
            for lane in lanes.values_mut() {
                if lane.fifo.is_empty() {
                    lane.deficit = 0;
                    continue;
                }
                lane.deficit += lane.weight;
                while lane.deficit > 0 && batch.len() < batch_max {
                    match lane.fifo.pop_front() {
                        Some(job) => {
                            lane.deficit -= 1;
                            queued -= 1;
                            batch.push(job);
                        }
                        None => {
                            lane.deficit = 0;
                            break;
                        }
                    }
                }
                if batch.len() >= batch_max {
                    break;
                }
            }
        }

        let mut replies: Vec<(ReplySink, InnerReply)> = Vec::with_capacity(batch.len());
        for job in batch {
            depth.fetch_sub(1, Ordering::Relaxed);
            if let Some(pause) = throttle {
                std::thread::sleep(pause);
            }
            let tenant_name = job.tenant.as_ref().map(|t| t.name.clone());
            let result = engine
                .start_for_tenant(&job.process, job.input, tenant_name)
                .and_then(|id| engine.run_to_quiescence(id).map(|s| (id, s)))
                .and_then(|(id, status)| engine.output(id).map(|out| (id, status, out)))
                .map_err(|e| {
                    let unknown = matches!(e, EngineError::UnknownProcess(_));
                    (e.to_string(), unknown)
                });
            replies.push((job.reply, result));
        }
        gauge.set(depth.load(Ordering::Relaxed));

        // One group commit for the whole batch, *then* the
        // acknowledgements: an ACK certifies durability.
        match engine.flush_journal() {
            Err(e) => {
                for (reply, _) in replies {
                    reply(Err((format!("journal flush failed: {e}"), false)));
                }
            }
            Ok(()) => {
                for (reply, result) in replies {
                    reply(result);
                }
            }
        }
        // A barrier answers only once every job queued before it has
        // been processed and flushed — i.e. once the lanes are dry.
        if queued == 0 && !barriers.is_empty() {
            for b in barriers.drain(..) {
                let _ = b.send(());
            }
        }
    }
    // Final barrier so nothing accepted is left unflushed.
    let _ = engine.flush_journal();
}

#[cfg(test)]
mod tests {
    use super::{decode_ext, encode_ext, TENANT_BITS};

    /// Every (local, shard) pair round-trips through the wire fold,
    /// including locals at the top of the representable range. With
    /// tenancy disabled (`tenant_bits == 0`) the fold is byte-identical
    /// to the pre-tenancy layout.
    #[test]
    fn ext_ids_roundtrip_near_u64_boundaries() {
        for &n in &[1u64, 3, 16] {
            let max_local = u64::MAX / n;
            for &local in &[1u64, 2, 7, 1000, max_local - 1, max_local] {
                for shard in 0..n as usize {
                    if local == max_local && shard as u64 > u64::MAX - local * n {
                        continue; // ext would not be representable
                    }
                    let ext = encode_ext(local, shard, n, 0, 0);
                    assert_eq!(ext, local * n + shard as u64, "layout is pinned");
                    assert_eq!(
                        decode_ext(ext, n, 0),
                        Some((shard, local, 0)),
                        "nshards={n} local={local} shard={shard}"
                    );
                }
            }
        }
    }

    /// With tenancy enabled the top [`TENANT_BITS`] carry the slot and
    /// the base fold round-trips in the remaining low bits, including
    /// locals at the top of the narrowed range.
    #[test]
    fn tenanted_ext_ids_roundtrip_near_base_boundaries() {
        let base_max = u64::MAX >> TENANT_BITS;
        for &n in &[1u64, 3, 16] {
            let max_local = base_max / n;
            for &slot in &[0u16, 1, 5, 255] {
                for &local in &[1u64, 2, 1000, max_local - 1, max_local] {
                    for shard in 0..n as usize {
                        if local * n + shard as u64 > base_max {
                            continue; // base would spill into the slot bits
                        }
                        let ext = encode_ext(local, shard, n, slot, TENANT_BITS);
                        assert_eq!(
                            ext >> (64 - TENANT_BITS),
                            u64::from(slot),
                            "slot occupies the top bits"
                        );
                        assert_eq!(
                            decode_ext(ext, n, TENANT_BITS),
                            Some((shard, local, slot)),
                            "nshards={n} local={local} shard={shard} slot={slot}"
                        );
                    }
                }
            }
        }
    }

    /// Locals are allocated from 1, so a base that folds to local 0
    /// never names an instance and must decode to `None` — with and
    /// without tenant bits — and the first representable id per shard
    /// decodes cleanly.
    #[test]
    fn small_ext_ids_decode_to_none() {
        for &n in &[1u64, 3, 16] {
            for ext in 0..n {
                assert_eq!(decode_ext(ext, n, 0), None, "nshards={n} ext={ext}");
                let tenanted = (7u64 << (64 - TENANT_BITS)) | ext;
                assert_eq!(decode_ext(tenanted, n, TENANT_BITS), None);
            }
            for shard in 0..n as usize {
                assert_eq!(decode_ext(n + shard as u64, n, 0), Some((shard, 1, 0)));
                let tenanted = (7u64 << (64 - TENANT_BITS)) | (n + shard as u64);
                assert_eq!(
                    decode_ext(tenanted, n, TENANT_BITS),
                    Some((shard, 1, 7)),
                    "nshards={n} shard={shard}"
                );
            }
        }
    }
}
