//! A minimal, dependency-free HTTP/1.1 subset — just enough protocol
//! for the workflow service: incremental request parsing with hard
//! limits, keep-alive and pipelining, `Content-Length` bodies, and
//! response rendering.
//!
//! The core is [`Decoder`], an incremental parser that consumes from
//! an internal byte buffer: feed it whatever the socket produced
//! ([`Decoder::push`]) and pop zero or more complete requests
//! ([`Decoder::next_request`]). That shape is what the non-blocking
//! event loop in [`crate::server`] needs — a read can deliver half a
//! request or three pipelined ones, and the decoder handles both
//! without ever blocking or re-scanning.
//!
//! The parser is deliberately paranoid rather than featureful. Every
//! input is bounded ([`MAX_LINE`], [`MAX_HEADERS`], [`MAX_BODY`]) and
//! every malformed or oversized input maps to a typed [`HttpError`]
//! that renders as `400` or `413` — never a panic, never unbounded
//! buffering. Chunked transfer encoding is rejected (the service's own
//! clients never send it). See `docs/serving.md` for the wire
//! protocol.

use std::io::{self, BufRead, Write};

/// Maximum bytes in the request line or any single header line.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum request body size in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// HTTP protocol version of a request. Only the keep-alive default
/// differs: HTTP/1.0 closes unless the client asks `keep-alive`,
/// HTTP/1.1 keeps alive unless the client asks `close`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — connections default to close.
    Http10,
    /// `HTTP/1.1` (or a later 1.x minor) — connections default to
    /// keep-alive.
    Http11,
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Query string (after `?`), if present.
    pub query: Option<String>,
    /// Protocol version from the request line.
    pub version: Version,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key`, percent-decoded: `+` means
    /// space and `%XX` the escaped byte, in both keys and values. A
    /// malformed escape is a [`HttpError::BadRequest`] — answering 400
    /// beats silently matching the wrong identifier.
    pub fn query_param(&self, key: &str) -> Result<Option<String>, HttpError> {
        let Some(query) = self.query.as_deref() else {
            return Ok(None);
        };
        for pair in query.split('&') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            if percent_decode(k)? == key {
                return Ok(Some(percent_decode(v)?));
            }
        }
        Ok(None)
    }

    /// True if the connection must be closed after this request: an
    /// explicit `Connection: close`, or an HTTP/1.0 request without
    /// `Connection: keep-alive` (1.0 connections default to close;
    /// only 1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.version == Version::Http10,
        }
    }
}

/// Parse/IO failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request: answered with `400 Bad Request`.
    BadRequest(&'static str),
    /// An input limit was exceeded: answered with `413 Content Too
    /// Large`.
    TooLarge(&'static str),
    /// The transport failed mid-request (reset, timeout); the
    /// connection is closed without a response.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-readable explanation for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) | HttpError::TooLarge(m) => (*m).to_owned(),
            HttpError::Io(e) => format!("io: {e}"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for HttpError {}

/// Decodes `application/x-www-form-urlencoded` escapes: `+` to space,
/// `%XX` to the escaped byte. Escapes must be complete two-digit hex
/// and the decoded bytes must still be UTF-8.
fn percent_decode(s: &str) -> Result<String, HttpError> {
    if !s.contains(['%', '+']) {
        return Ok(s.to_owned());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let pair = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(&h), Some(&l)) => hex_val(h).zip(hex_val(l)),
                    _ => None,
                };
                let Some((h, l)) = pair else {
                    return Err(HttpError::BadRequest("malformed percent-escape in query"));
                };
                out.push(h * 16 + l);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::BadRequest("query escapes decode to invalid UTF-8"))
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// RFC 7230 `tchar`: the bytes legal in a header field name.
fn is_tchar(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b'!' | b'#'
                | b'$'
                | b'%'
                | b'&'
                | b'\''
                | b'*'
                | b'+'
                | b'-'
                | b'.'
                | b'^'
                | b'_'
                | b'`'
                | b'|'
                | b'~'
        )
}

/// Strict `Content-Length`: ASCII digits only. `usize::parse` would
/// also accept a leading `+`, which some proxies treat differently —
/// a classic request-smuggling wedge, so any non-digit byte is a 400.
fn parse_content_length(v: &str) -> Result<usize, HttpError> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::BadRequest("unparseable content-length"));
    }
    v.parse::<usize>()
        .map_err(|_| HttpError::TooLarge("request body too large"))
}

/// Parse progress inside [`Decoder`].
enum DecodeState {
    /// Accumulating the request line and header lines.
    Head,
    /// Head complete; `need` body bytes outstanding.
    Body { req: Request, need: usize },
    /// A previous call returned `Err`; the stream is unusable.
    Failed,
}

/// Incremental HTTP/1.1 request parser over an internal buffer.
///
/// Feed raw socket bytes with [`push`](Decoder::push); pop complete
/// requests with [`next_request`](Decoder::next_request). Pipelined
/// requests are returned one at a time with no byte loss — whatever
/// follows a complete request stays buffered for the next call.
///
/// After an `Err` the decoder is poisoned: the connection should be
/// answered with [`HttpError::status`] and closed.
pub struct Decoder {
    buf: Vec<u8>,
    /// First unconsumed byte in `buf`.
    start: usize,
    state: DecodeState,
    /// Partial head: request line, once parsed.
    head: Option<(String, String, Option<String>, Version)>,
    /// Partial head: headers parsed so far.
    headers: Vec<(String, String)>,
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            state: DecodeState::Head,
            head: None,
            headers: Vec::new(),
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates.
        if self.start > 0 && self.start >= self.buf.len().max(4096) / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when nothing is buffered and no request is half-parsed —
    /// i.e. EOF here is a clean keep-alive termination.
    pub fn is_clean(&self) -> bool {
        self.buffered() == 0 && self.head.is_none() && matches!(self.state, DecodeState::Head)
    }

    /// What a mid-stream EOF means given current progress.
    pub fn truncation(&self) -> &'static str {
        match self.state {
            DecodeState::Body { .. } => "truncated body",
            _ if self.head.is_some() => "truncated headers",
            _ => "truncated request",
        }
    }

    /// Takes one `\n`-terminated line (stripping the terminator and a
    /// preceding `\r`), or `None` if no full line is buffered yet.
    fn take_line(&mut self) -> Result<Option<String>, HttpError> {
        let hay = &self.buf[self.start..];
        match hay.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if i > MAX_LINE {
                    return Err(HttpError::TooLarge("request line or header too long"));
                }
                let end = if i > 0 && hay[i - 1] == b'\r' {
                    i - 1
                } else {
                    i
                };
                let text = std::str::from_utf8(&hay[..end])
                    .map_err(|_| HttpError::BadRequest("non-UTF-8 request bytes"))?
                    .to_owned();
                self.start += i + 1;
                Ok(Some(text))
            }
            None => {
                if hay.len() > MAX_LINE {
                    return Err(HttpError::TooLarge("request line or header too long"));
                }
                Ok(None)
            }
        }
    }

    /// Pops the next complete request, or `Ok(None)` if more input is
    /// needed. Errors poison the decoder.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        match self.advance() {
            Err(e) => {
                self.state = DecodeState::Failed;
                Err(e)
            }
            ok => ok,
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        if matches!(self.state, DecodeState::Failed) {
            return Err(HttpError::BadRequest("request stream already failed"));
        }
        if let DecodeState::Body { .. } = self.state {
            return self.fill_body();
        }
        // Head: consume lines until the empty terminator line.
        loop {
            let Some(line) = self.take_line()? else {
                return Ok(None);
            };
            if self.head.is_none() {
                self.head = Some(parse_request_line(&line)?);
                continue;
            }
            if line.is_empty() {
                let (method, path, query, version) = self.head.take().expect("head parsed");
                let req = Request {
                    method,
                    path,
                    query,
                    version,
                    headers: std::mem::take(&mut self.headers),
                    body: Vec::new(),
                };
                return self.finish_head(req);
            }
            if self.headers.len() >= MAX_HEADERS {
                return Err(HttpError::TooLarge("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("header without colon"))?;
            if name.is_empty() || !name.bytes().all(is_tchar) {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            self.headers
                .push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    /// Validates body framing headers and transitions to `Body` (or
    /// returns the request directly when there is none).
    fn finish_head(&mut self, req: Request) -> Result<Option<Request>, HttpError> {
        if req.header("transfer-encoding").is_some() {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding unsupported",
            ));
        }
        if req
            .headers
            .iter()
            .filter(|(n, _)| n == "content-length")
            .count()
            > 1
        {
            return Err(HttpError::BadRequest("conflicting content-length headers"));
        }
        let len = match req.header("content-length") {
            Some(cl) => parse_content_length(cl)?,
            None => 0,
        };
        if len > MAX_BODY {
            return Err(HttpError::TooLarge("request body too large"));
        }
        if len == 0 {
            return Ok(Some(req));
        }
        self.state = DecodeState::Body { req, need: len };
        self.fill_body()
    }

    fn fill_body(&mut self) -> Result<Option<Request>, HttpError> {
        let DecodeState::Body { req, need } = &mut self.state else {
            unreachable!("fill_body called outside Body state");
        };
        let take = (*need).min(self.buf.len() - self.start);
        req.body
            .extend_from_slice(&self.buf[self.start..self.start + take]);
        self.start += take;
        *need -= take;
        if *need > 0 {
            return Ok(None);
        }
        let DecodeState::Body { req, .. } = std::mem::replace(&mut self.state, DecodeState::Head)
        else {
            unreachable!("state checked above");
        };
        Ok(Some(req))
    }
}

/// Parses and validates `METHOD SP TARGET SP VERSION`.
fn parse_request_line(line: &str) -> Result<(String, String, Option<String>, Version), HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    let version = if version == "HTTP/1.0" {
        Version::Http10
    } else {
        Version::Http11
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(
            "request target must be absolute path",
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    Ok((method.to_owned(), path, query, version))
}

/// Reads one request from `r` with a fresh [`Decoder`] — a one-shot
/// convenience for tests and simple blocking callers.
///
/// * `Ok(None)` — the peer closed the connection cleanly between
///   requests (normal keep-alive termination).
/// * `Err(e)` — malformed/oversized input; answer with
///   [`HttpError::status`] and close.
///
/// Bytes the reader had buffered *past* the returned request are left
/// in the discarded decoder; callers interleaving pipelined requests
/// must hold a [`Decoder`] themselves (the event loop does).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let mut dec = Decoder::new();
    loop {
        if let Some(req) = dec.next_request()? {
            return Ok(Some(req));
        }
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if chunk.is_empty() {
            if dec.is_clean() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest(dec.truncation()));
        }
        let n = chunk.len();
        dec.push(chunk);
        r.consume(n);
    }
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders one `Content-Length`-framed response into `out` (appending
/// — the event loop batches many responses into one write). `extra`
/// headers (e.g. `allow` on a 405) are emitted between the framing
/// headers and `connection`.
pub fn render_response(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    close: bool,
) {
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            status,
            reason(status),
            content_type,
            body.len(),
        )
        .as_bytes(),
    );
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(if close {
        b"connection: close\r\n\r\n" as &[u8]
    } else {
        b"connection: keep-alive\r\n\r\n"
    });
    out.extend_from_slice(body);
}

/// Writes one response with `Content-Length` framing.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    render_response(&mut out, status, content_type, &[], body, close);
    w.write_all(&out)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_get_with_query_and_keepalive() {
        let req = parse(b"GET /worklist?person=ann HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/worklist");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.query_param("person").unwrap().as_deref(), Some("ann"));
        assert!(!req.wants_close());
    }

    #[test]
    fn query_params_are_percent_decoded() {
        let req = parse(b"GET /worklist?person=a%6En%2Bb&x=1+2%203 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("person").unwrap().as_deref(), Some("ann+b"));
        assert_eq!(req.query_param("x").unwrap().as_deref(), Some("1 2 3"));
        // Keys decode too: `%70erson` is `person` on the wire.
        let req = parse(b"GET /worklist?%70erson=ann HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("person").unwrap().as_deref(), Some("ann"));
        assert_eq!(req.query_param("absent").unwrap(), None);
    }

    #[test]
    fn malformed_query_escapes_are_400() {
        for q in ["p=%", "p=%2", "p=%zz", "p=%2g", "p=a%", "%g0=v", "p=%ff"] {
            let raw = format!("GET /worklist?{q} HTTP/1.1\r\n\r\n");
            let req = parse(raw.as_bytes()).unwrap().unwrap();
            let err = req.query_param("p").unwrap_err();
            assert_eq!(err.status(), 400, "query {q:?}");
        }
    }

    #[test]
    fn parses_post_body_exactly() {
        let req = parse(b"POST /instances HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_header_is_413() {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE + 1));
        raw.extend(b"\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 413);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status(), 413);
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.version, Version::Http10);
        assert!(req.wants_close(), "HTTP/1.0 without keep-alive closes");

        let req = parse(b"GET /healthz HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_close(), "explicit keep-alive holds a 1.0 conn");

        let req = parse(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close(), "explicit close closes a 1.1 conn");
    }

    #[test]
    fn plus_prefixed_content_length_is_400() {
        // `"+42".parse::<usize>()` succeeds — the strict digit check
        // must reject it anyway (and trailing junk, and inner spaces).
        for cl in ["+42", "4 2", "42a", "0x10", "-1", ""] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {cl}\r\n\r\n");
            let err = parse(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "content-length {cl:?}");
        }
    }

    #[test]
    fn illegal_header_name_bytes_are_400() {
        for name in ["a@b", "a(b)", "a,b", "a;b", "a\"b", "a b", "a\tb"] {
            let raw = format!("GET / HTTP/1.1\r\n{name}: v\r\n\r\n");
            let err = parse(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "header name {name:?}");
        }
    }

    #[test]
    fn decoder_pops_pipelined_requests_without_byte_loss() {
        let mut dec = Decoder::new();
        dec.push(b"POST /instances HTTP/1.1\r\ncontent-length: 2\r\n\r\nab");
        dec.push(b"GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.0\r\ncontent-length: 1\r\n\r\nz");
        let a = dec.next_request().unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.body.as_slice()), ("POST", &b"ab"[..]));
        let b = dec.next_request().unwrap().unwrap();
        assert_eq!((b.method.as_str(), b.path.as_str()), ("GET", "/healthz"));
        let c = dec.next_request().unwrap().unwrap();
        assert_eq!(c.body, b"z");
        assert_eq!(c.version, Version::Http10);
        assert!(dec.next_request().unwrap().is_none());
        assert!(dec.is_clean());
    }

    #[test]
    fn decoder_resumes_across_arbitrary_chunk_boundaries() {
        let wire = b"POST /instances HTTP/1.1\r\nx-tag: t\r\ncontent-length: 5\r\n\r\nhello";
        for split in 1..wire.len() {
            let mut dec = Decoder::new();
            dec.push(&wire[..split]);
            let early = dec.next_request().unwrap();
            dec.push(&wire[split..]);
            let req = match early {
                Some(r) => r,
                None => dec.next_request().unwrap().expect("complete after push"),
            };
            assert_eq!(req.body, b"hello", "split at {split}");
            assert_eq!(req.header("x-tag"), Some("t"));
        }
    }

    #[test]
    fn response_writer_frames_body() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn render_emits_extra_headers_before_connection() {
        let mut out = Vec::new();
        render_response(
            &mut out,
            405,
            "application/json",
            &[("allow", "POST")],
            b"{}",
            false,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("allow: POST\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
    }
}
