//! A minimal, dependency-free HTTP/1.1 subset — just enough protocol
//! for the workflow service: request parsing with hard limits,
//! keep-alive, `Content-Length` bodies, and response writing.
//!
//! The parser is deliberately paranoid rather than featureful. Every
//! input is bounded ([`MAX_LINE`], [`MAX_HEADERS`], [`MAX_BODY`]) and
//! every malformed or oversized input maps to a typed [`HttpError`]
//! that renders as `400` or `413` — never a panic, never unbounded
//! buffering. Chunked transfer encoding is rejected (the service's own
//! clients never send it). See `docs/serving.md` for the wire
//! protocol.

use std::io::{self, BufRead, Write};

/// Maximum bytes in the request line or any single header line.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum request body size in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Query string (after `?`), if present.
    pub query: Option<String>,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (no percent-decoding; the
    /// service's identifiers are plain ASCII).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// True if the client asked to close the connection after this
    /// request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Parse/IO failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request: answered with `400 Bad Request`.
    BadRequest(&'static str),
    /// An input limit was exceeded: answered with `413 Content Too
    /// Large`.
    TooLarge(&'static str),
    /// The transport failed mid-request (reset, timeout); the
    /// connection is closed without a response.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-readable explanation for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) | HttpError::TooLarge(m) => (*m).to_owned(),
            HttpError::Io(e) => format!("io: {e}"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for HttpError {}

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes,
/// stripping the terminator (and a preceding `\r`). `Ok(None)` means
/// clean EOF before any byte of the line.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated request"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request bytes"))?;
                    return Ok(Some(text));
                }
                if line.len() >= MAX_LINE {
                    return Err(HttpError::TooLarge("request line or header too long"));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request from `r`.
///
/// * `Ok(None)` — the peer closed the connection cleanly between
///   requests (normal keep-alive termination).
/// * `Err(e)` — malformed/oversized input; answer with
///   [`HttpError::status`] and close.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(
            "request target must be absolute path",
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(r)?.ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding unsupported",
        ));
    }
    if req
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .count()
        > 1
    {
        return Err(HttpError::BadRequest("conflicting content-length headers"));
    }
    if let Some(cl) = req.header("content-length") {
        let len: usize = cl
            .parse()
            .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
        if len > MAX_BODY {
            return Err(HttpError::TooLarge("request body too large"));
        }
        let mut body = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match r.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::BadRequest("truncated body")),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        req.body = body;
    }
    Ok(Some(req))
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response with `Content-Length` framing.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_get_with_query_and_keepalive() {
        let req = parse(b"GET /worklist?person=ann HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/worklist");
        assert_eq!(req.query_param("person"), Some("ann"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_exactly() {
        let req = parse(b"POST /instances HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_header_is_413() {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE + 1));
        raw.extend(b"\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 413);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status(), 413);
    }

    #[test]
    fn response_writer_frames_body() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
