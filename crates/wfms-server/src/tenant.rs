//! Tenancy: named tenants with API keys, admission quotas and
//! fair-share weights.
//!
//! A tenants file (`fmtm serve --tenants FILE`) is a JSON document:
//!
//! ```json
//! {"tenants": [
//!   {"name": "acme", "key": "s3cret", "weight": 4, "max_inflight": 256},
//!   {"name": "beta", "key": "0ther"}
//! ]}
//! ```
//!
//! `weight` (default 1) is the tenant's share in the shard workers'
//! deficit-round-robin dequeue; `max_inflight` (default 256) caps the
//! tenant's submissions admitted but not yet answered — the breach
//! answer is `429` with `Retry-After`.
//!
//! ## Slots and identity
//!
//! Each tenant name is assigned a **slot** (1-based; 0 is reserved for
//! untenanted operation) in first-seen order. Slots are pinned in
//! `server.meta.json` next to the shard count because wire ids fold
//! the slot into their top [`TENANT_BITS`] bits — reopening a data
//! directory with a different tenancy layout is refused the same way
//! a different `--shards` is. Keys, weights and quotas are *not*
//! pinned: they live in the tenants file and hot-reload over
//! `POST /admin/reload-tenants`; new names are appended to the slot
//! list, existing names keep their slot forever.

use std::sync::atomic::AtomicI64;
use std::sync::Arc;

use serde::Deserialize;
use wfms_observe::{Counter, Gauge, Registry};

/// Wire-id bits reserved for the tenant slot when tenancy is enabled
/// (0 when disabled, which keeps untenanted wire ids byte-identical
/// to the pre-tenancy format). 8 bits → 255 tenants per directory.
pub const TENANT_BITS: u32 = 8;

/// Most tenant slots a directory can pin (slot 0 is reserved).
pub const MAX_TENANTS: usize = (1 << TENANT_BITS) - 1;

/// One tenant as declared in the tenants file.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Stable tenant name — the slot-list key and the metric label.
    pub name: String,
    /// Bearer API key.
    pub key: String,
    /// Deficit-round-robin share (≥ 1).
    pub weight: u64,
    /// Max submissions admitted but not yet answered.
    pub max_inflight: i64,
}

impl Deserialize for TenantSpec {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        fn opt<T: Deserialize>(
            content: &serde::Content,
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match content.field(name) {
                Some(v) => Option::<T>::from_content(v),
                None => Ok(None),
            }
        }
        let name = match content.field("name") {
            Some(v) => String::from_content(v)?,
            None => return Err(serde::Error::msg("tenant entry missing `name`")),
        };
        let key = match content.field("key") {
            Some(v) => String::from_content(v)?,
            None => return Err(serde::Error::msg("tenant entry missing `key`")),
        };
        Ok(TenantSpec {
            name,
            key,
            weight: opt::<u64>(content, "weight")?.unwrap_or(1),
            max_inflight: opt::<i64>(content, "max_inflight")?.unwrap_or(256),
        })
    }
}

/// Top-level tenants-file shape.
struct TenantsFile {
    tenants: Vec<TenantSpec>,
}

impl Deserialize for TenantsFile {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content.field("tenants") {
            Some(v) => Ok(TenantsFile {
                tenants: Vec::<TenantSpec>::from_content(v)?,
            }),
            None => Err(serde::Error::msg(
                "tenants file missing top-level `tenants` array",
            )),
        }
    }
}

/// Parses and validates a tenants file. Returns the declared tenants
/// in file order (which is slot order for first-seen names).
pub fn parse_tenants(text: &str) -> Result<Vec<TenantSpec>, String> {
    let file: TenantsFile = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let specs = file.tenants;
    let mut seen = std::collections::HashSet::new();
    for spec in &specs {
        if spec.name.is_empty() {
            return Err("tenant with empty name".to_owned());
        }
        if spec.key.is_empty() {
            return Err(format!("tenant {:?} has an empty key", spec.name));
        }
        if spec.weight == 0 {
            return Err(format!("tenant {:?} has weight 0", spec.name));
        }
        if spec.max_inflight <= 0 {
            return Err(format!("tenant {:?} has max_inflight <= 0", spec.name));
        }
        if !seen.insert(spec.name.clone()) {
            return Err(format!("duplicate tenant name {:?}", spec.name));
        }
    }
    if specs.len() > MAX_TENANTS {
        return Err(format!(
            "{} tenants declared; at most {MAX_TENANTS} fit the wire-id slot space",
            specs.len()
        ));
    }
    Ok(specs)
}

/// One live tenant: spec plus the runtime counters that must survive
/// hot reloads (the inflight level is shared by `Arc`, so a reply
/// sink created before a reload decrements the same counter the
/// post-reload admission check reads).
pub struct Tenant {
    /// Tenant name (metric label).
    pub name: String,
    /// Wire-id slot (1-based).
    pub slot: u16,
    key: Box<[u8]>,
    /// Deficit-round-robin share.
    pub weight: u64,
    /// Admission quota: max submissions in flight.
    pub max_inflight: i64,
    /// Submissions admitted but not yet answered.
    pub inflight: Arc<AtomicI64>,
    /// `server.tenant.accepted{tenant=name}`.
    pub accepted: Arc<Counter>,
    /// `server.tenant.overloaded{tenant=name}`.
    pub overloaded: Arc<Counter>,
    /// `server.tenant.inflight{tenant=name}`.
    pub inflight_gauge: Arc<Gauge>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("slot", &self.slot)
            .field("weight", &self.weight)
            .field("max_inflight", &self.max_inflight)
            .finish_non_exhaustive()
    }
}

/// One pinned slot: the name is durable (from `server.meta.json`);
/// the tenant is present only while the current tenants file declares
/// it — a slot whose name vanished from the file keeps its wire-id
/// space but cannot authenticate.
#[derive(Debug)]
struct Slot {
    name: String,
    tenant: Option<Arc<Tenant>>,
}

/// The live tenant set, indexed by slot. Rebuilt wholesale on reload;
/// readers hold an `Arc` snapshot so authentication never blocks a
/// reload (and vice versa).
#[derive(Debug, Default)]
pub struct TenantTable {
    slots: Vec<Slot>,
}

impl TenantTable {
    /// Builds the table for `slot_names` (the pinned, ordered slot
    /// list) from the current `specs`, carrying runtime counters over
    /// from `previous` by name.
    pub fn build(
        slot_names: &[String],
        specs: &[TenantSpec],
        previous: Option<&TenantTable>,
        registry: &Registry,
    ) -> TenantTable {
        let accepted = registry.counter_vec("server.tenant.accepted", "tenant");
        let overloaded = registry.counter_vec("server.tenant.overloaded", "tenant");
        let inflight = registry.gauge_vec("server.tenant.inflight", "tenant");
        let slots = slot_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let tenant = specs.iter().find(|s| &s.name == name).map(|spec| {
                    let carried = previous
                        .and_then(|t| t.by_name(&spec.name))
                        .map(|t| Arc::clone(&t.inflight));
                    Arc::new(Tenant {
                        name: spec.name.clone(),
                        slot: (i + 1) as u16,
                        key: spec.key.as_bytes().into(),
                        weight: spec.weight,
                        max_inflight: spec.max_inflight,
                        inflight: carried.unwrap_or_default(),
                        accepted: accepted.with_label(&spec.name),
                        overloaded: overloaded.with_label(&spec.name),
                        inflight_gauge: inflight.with_label(&spec.name),
                    })
                });
                Slot {
                    name: name.clone(),
                    tenant,
                }
            })
            .collect();
        TenantTable { slots }
    }

    /// Resolves an API key to its tenant. Scans every slot without
    /// early exit and compares each key in constant time, so the
    /// response latency leaks neither which tenant matched nor how
    /// many prefix bytes did.
    pub fn authenticate(&self, key: &[u8]) -> Option<Arc<Tenant>> {
        let mut found: Option<&Arc<Tenant>> = None;
        for slot in &self.slots {
            if let Some(t) = &slot.tenant {
                if constant_time_eq(&t.key, key) {
                    found = Some(t);
                }
            }
        }
        found.cloned()
    }

    /// The live tenant in `slot` (1-based), if any.
    pub fn by_slot(&self, slot: u16) -> Option<&Arc<Tenant>> {
        self.slots
            .get(usize::from(slot).checked_sub(1)?)?
            .tenant
            .as_ref()
    }

    /// The pinned name of `slot` (1-based), live or not.
    pub fn name_of_slot(&self, slot: u16) -> Option<&str> {
        self.slots
            .get(usize::from(slot).checked_sub(1)?)
            .map(|s| s.name.as_str())
    }

    /// The live tenant named `name`, if any.
    pub fn by_name(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.slots
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| s.tenant.as_ref())
    }

    /// The slot (1-based) pinned to `name`, live or not.
    pub fn slot_of_name(&self, name: &str) -> Option<u16> {
        self.slots
            .iter()
            .position(|s| s.name == name)
            .map(|i| (i + 1) as u16)
    }

    /// Number of pinned slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slots are pinned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Live (authenticatable) tenants, slot order.
    pub fn live(&self) -> impl Iterator<Item = &Arc<Tenant>> {
        self.slots.iter().filter_map(|s| s.tenant.as_ref())
    }
}

/// Byte-equality in time that depends only on the *lengths*, never on
/// where the first mismatch sits: the accumulator folds every byte
/// pair before the single comparison at the end. Empty inputs never
/// match (a slot with no key must not authenticate an empty bearer).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let mut acc = (a.len() ^ b.len()) as u64;
    for i in 0..a.len().max(b.len()) {
        let x = a[i % a.len()];
        let y = b[i % b.len()];
        acc |= u64::from(x ^ y);
    }
    acc == 0
}

/// Extracts the bearer token from an `Authorization` header value.
/// Total over arbitrary bytes: anything that is not exactly
/// `Bearer <nonempty-token>` (scheme case-insensitive, single spaces
/// tolerated) is `None`, never a panic.
pub fn bearer_token(header: &str) -> Option<&str> {
    let rest = header.strip_prefix("Bearer").or_else(|| {
        // Case-insensitive scheme match without allocating.
        let (scheme, rest) = header.split_at_checked(6)?;
        scheme.eq_ignore_ascii_case("Bearer").then_some(rest)
    })?;
    let token = rest.strip_prefix(' ')?.trim();
    (!token.is_empty() && !token.contains(' ')).then_some(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<TenantSpec> {
        parse_tenants(
            r#"{"tenants":[
                {"name":"acme","key":"k-acme","weight":4,"max_inflight":8},
                {"name":"beta","key":"k-beta"}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_applies_defaults_and_validates() {
        let specs = specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].weight, 4);
        assert_eq!(specs[0].max_inflight, 8);
        assert_eq!(specs[1].weight, 1, "default weight");
        assert_eq!(specs[1].max_inflight, 256, "default quota");

        for bad in [
            r#"{"tenants":[{"name":"","key":"k"}]}"#,
            r#"{"tenants":[{"name":"a","key":""}]}"#,
            r#"{"tenants":[{"name":"a","key":"k","weight":0}]}"#,
            r#"{"tenants":[{"name":"a","key":"k","max_inflight":0}]}"#,
            r#"{"tenants":[{"name":"a","key":"k"},{"name":"a","key":"j"}]}"#,
            r#"{"nope":1}"#,
            r#"not json"#,
        ] {
            assert!(parse_tenants(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn table_authenticates_and_pins_slots() {
        let registry = Registry::new();
        let names = vec!["acme".to_owned(), "beta".to_owned()];
        let table = TenantTable::build(&names, &specs(), None, &registry);
        assert_eq!(table.len(), 2);
        let acme = table.authenticate(b"k-acme").expect("acme key");
        assert_eq!((acme.name.as_str(), acme.slot), ("acme", 1));
        let beta = table.authenticate(b"k-beta").expect("beta key");
        assert_eq!(beta.slot, 2);
        assert!(table.authenticate(b"nope").is_none());
        assert!(table.authenticate(b"").is_none());
        assert_eq!(table.name_of_slot(2), Some("beta"));
        assert_eq!(table.slot_of_name("beta"), Some(2));
        assert_eq!(table.by_slot(3).map(|t| t.name.as_str()), None);
    }

    #[test]
    fn reload_carries_inflight_and_keeps_slots() {
        use std::sync::atomic::Ordering;
        let registry = Registry::new();
        let names = vec!["acme".to_owned(), "beta".to_owned()];
        let table = TenantTable::build(&names, &specs(), None, &registry);
        table
            .by_name("acme")
            .unwrap()
            .inflight
            .store(5, Ordering::Relaxed);

        // Reload: beta vanishes, gamma appears (appended), acme's key
        // rotates — acme keeps its slot and its inflight level.
        let new_specs = parse_tenants(
            r#"{"tenants":[
                {"name":"gamma","key":"k-gamma"},
                {"name":"acme","key":"rotated","weight":2,"max_inflight":4}
            ]}"#,
        )
        .unwrap();
        let names2 = vec!["acme".to_owned(), "beta".to_owned(), "gamma".to_owned()];
        let table2 = TenantTable::build(&names2, &new_specs, Some(&table), &registry);
        let acme = table2.authenticate(b"rotated").expect("rotated key");
        assert_eq!(acme.slot, 1, "slot survives reload");
        assert_eq!(acme.inflight.load(Ordering::Relaxed), 5, "level carried");
        assert_eq!(acme.max_inflight, 4, "quota updated");
        assert!(table2.authenticate(b"k-acme").is_none(), "old key dead");
        assert!(table2.authenticate(b"k-beta").is_none(), "stale slot");
        assert_eq!(table2.name_of_slot(2), Some("beta"), "slot reserved");
        assert_eq!(table2.authenticate(b"k-gamma").unwrap().slot, 3);
    }

    #[test]
    fn constant_time_eq_semantics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(!constant_time_eq(b"", b""));
        assert!(!constant_time_eq(b"x", b""));
    }

    #[test]
    fn bearer_token_extraction() {
        assert_eq!(bearer_token("Bearer k1"), Some("k1"));
        assert_eq!(bearer_token("bearer k1"), Some("k1"));
        assert_eq!(bearer_token("BEARER k1"), Some("k1"));
        assert_eq!(bearer_token("Bearer  k1"), Some("k1"), "trimmed");
        assert_eq!(bearer_token("Bearer"), None);
        assert_eq!(bearer_token("Bearer "), None);
        assert_eq!(bearer_token("Bearer a b"), None);
        assert_eq!(bearer_token("Basic dXNlcg=="), None);
        assert_eq!(bearer_token(""), None);
        assert_eq!(bearer_token("Bear"), None);
    }
}
