//! Wire-level request/response types for the JSON protocol.
//!
//! Instance and work-item ids on the wire are *external* ids — the
//! shard index is folded into the low bits (see
//! [`crate::shard::ShardPool`]) so a client talks to the pool as if
//! it were one engine.

use serde::{Deserialize, Serialize};
use wfms_model::{Container, ProcessDefinition};

/// Body of `POST /instances`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SubmitRequest {
    /// Process template to start. Defaults to the server's default
    /// process (the first spec on the `fmtm serve` command line).
    pub process: Option<String>,
    /// Seed values for the process input container.
    pub input: Option<Container>,
}

// Hand-written so both fields are genuinely optional on the wire —
// `{}`, `{"process":"p"}` and `{"process":"p","input":{...}}` are all
// valid submissions.
impl Deserialize for SubmitRequest {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        fn opt<T: Deserialize>(
            content: &serde::Content,
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match content.field(name) {
                None => Ok(None),
                Some(v) => Deserialize::from_content(v),
            }
        }
        Ok(Self {
            process: opt(content, "process")?,
            input: opt(content, "input")?,
        })
    }
}

/// Body of a `201` answer to `POST /instances`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// External instance id.
    pub id: u64,
    /// Status after the automatic part ran: `"running"` (parked on
    /// manual work or deadlines), `"finished"` or `"cancelled"`.
    pub status: String,
    /// Process output container (final once `status` is `finished`).
    pub output: Container,
}

/// Body of `GET /instances/:id`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResponse {
    /// External instance id.
    pub id: u64,
    /// Process template name.
    pub process: String,
    /// `"running"`, `"finished"` or `"cancelled"`.
    pub status: String,
    /// Template version (spec content hash, hex) the instance is
    /// currently pinned to.
    pub version: String,
    /// Process output container.
    pub output: Container,
}

/// Body of `POST /admin/deploy`.
#[derive(Debug, Clone, Serialize)]
pub struct DeployRequest {
    /// The new process definition to register side-by-side with any
    /// existing versions of the same name.
    pub definition: ProcessDefinition,
    /// Migration policy for running instances of the process:
    /// `"drain-old"` (default) or `"migrate"` /
    /// `"migrate-at-scope-boundary"`.
    pub policy: Option<String>,
}

// Hand-written so `policy` is genuinely optional on the wire.
impl Deserialize for DeployRequest {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let definition = match content.field("definition") {
            Some(v) => Deserialize::from_content(v)?,
            None => return Err(serde::Error::msg("deploy body missing \"definition\"")),
        };
        let policy = match content.field("policy") {
            None => None,
            Some(v) => Deserialize::from_content(v)?,
        };
        Ok(Self { definition, policy })
    }
}

/// Body of a `200` answer to `POST /admin/deploy`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployResponse {
    /// Process template name.
    pub process: String,
    /// Version (spec content hash, hex) now the default for new
    /// submissions of the process.
    pub version: String,
    /// Running instances migrated to the new version.
    pub migrated: u64,
    /// Running instances left draining under their old version (not at
    /// a scope boundary, or policy was `drain-old`).
    pub skipped: u64,
    /// Running instances already on the deployed version.
    pub already_current: u64,
}

/// One work item in a `GET /worklist` answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItemDto {
    /// External work-item id.
    pub id: u64,
    /// External id of the owning instance.
    pub instance: u64,
    /// Activity path inside the instance.
    pub path: String,
    /// Execution attempt this item belongs to.
    pub attempt: u32,
    /// People the item is offered to.
    pub offered_to: Vec<String>,
}

/// Body of `GET /worklist`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorklistResponse {
    /// Open items across all shards, in external-id order.
    pub items: Vec<ItemDto>,
}

/// Body of `POST /worklist/:item/complete`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompleteRequest {
    /// Person completing the item (must be on the offer list or the
    /// claimant).
    pub person: String,
}

/// Body of `POST /admin/drain` and `POST /admin/stop` answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrainResponse {
    /// Journal events dropped by the drain checkpoints, across shards.
    pub compacted_events: usize,
}

/// Body of a `200` answer to `POST /admin/reload-tenants`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadTenantsResponse {
    /// Live (authenticatable) tenants after the reload.
    pub tenants: usize,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Health {
    /// `"ok"` or `"draining"`.
    pub status: String,
    /// Number of shards.
    pub shards: usize,
    /// Instances resumed from shard journals at the last startup.
    pub recovered_instances: u64,
}

/// Uniform error body for every non-2xx answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Machine-readable error class: `"overloaded"`, `"draining"`,
    /// `"not_found"`, `"bad_request"`, `"conflict"`, `"internal"`,
    /// `"unauthorized"` (401: missing/unknown API key) or
    /// `"forbidden"` (403: another tenant's resource).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorResponse {
    /// Builds an error body.
    pub fn new(error: &str, detail: impl Into<String>) -> Self {
        Self {
            error: error.to_owned(),
            detail: detail.into(),
        }
    }
}
