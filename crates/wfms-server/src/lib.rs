//! # wfms-server
//!
//! A long-lived workflow service runtime on top of the engine: where
//! `fmtm run` executes a fixed cohort of instances and exits, this
//! crate keeps a process-template federation open for business —
//! accepting starts continuously, surviving restarts, and reporting
//! health — the client/server split of a FlowMark-class WFMS.
//!
//! Three layers:
//!
//! * [`shard`] — the sharded instance manager. N shards, each an
//!   [`wfms_engine::Engine`] with its own durable journal and worker
//!   thread; bounded submission queues with explicit `Overloaded`
//!   rejection past the high-water mark; per-shard **group commit**
//!   (one journal flush per batch, acknowledgements only after it);
//!   restart recovery through the engine's forward-recovery path.
//! * [`http`] — a hand-rolled, zero-dependency HTTP/1.1 subset: an
//!   incremental [`http::Decoder`] that parses pipelined keep-alive
//!   requests from per-connection buffers, hard input limits, typed
//!   400/413 errors.
//! * [`server`] — the route table (`POST /instances`,
//!   `GET /instances/:id`, `GET /worklist`,
//!   `POST /worklist/:item/complete`, `GET /metrics`,
//!   `POST /admin/drain`, `POST /admin/stop`) served by epoll-backed
//!   reactor threads ([`poll`]) that share the listener
//!   `EPOLLEXCLUSIVE`; submit replies are batched behind each shard's
//!   group commit, so a `201` on the wire implies durability.
//!
//! [`client`] is the matching side: a keep-alive HTTP client with
//! request pipelining, the `fmtm load` generator (closed-loop and
//! open-loop target-RPS schedules with coordinated-omission-corrected
//! latency percentiles), and the verification helpers the
//! crash-restart drill uses.
//!
//! The wire protocol, on-disk layout and recovery guarantee are
//! documented in `docs/serving.md`.

pub mod api;
pub mod client;
pub mod http;
pub mod poll;
pub mod server;
pub mod shard;
pub mod tenant;

pub use client::{
    latency_curve, run_load, verify_ids, verify_ids_as, wait_ready, CurvePoint, Http1Client,
    LoadOptions, LoadReport,
};
pub use server::{Server, ServerConfig};
pub use shard::{
    DeployReport, MigrationPolicy, PoolConfig, PoolError, ShardPool, SubmitDispatch, SubmitOutcome,
    SubmitReply,
};
pub use tenant::{parse_tenants, Tenant, TenantSpec, TenantTable, MAX_TENANTS, TENANT_BITS};
