//! # wfms-server
//!
//! A long-lived workflow service runtime on top of the engine: where
//! `fmtm run` executes a fixed cohort of instances and exits, this
//! crate keeps a process-template federation open for business —
//! accepting starts continuously, surviving restarts, and reporting
//! health — the client/server split of a FlowMark-class WFMS.
//!
//! Three layers:
//!
//! * [`shard`] — the sharded instance manager. N shards, each an
//!   [`wfms_engine::Engine`] with its own durable journal and worker
//!   thread; bounded submission queues with explicit `Overloaded`
//!   rejection past the high-water mark; per-shard **group commit**
//!   (one journal flush per batch, acknowledgements only after it);
//!   restart recovery through the engine's forward-recovery path.
//! * [`http`] — a hand-rolled, zero-dependency HTTP/1.1 subset over
//!   `std::net`: hard input limits, keep-alive, typed 400/413 errors.
//! * [`server`] — the route table (`POST /instances`,
//!   `GET /instances/:id`, `GET /worklist`,
//!   `POST /worklist/:item/complete`, `GET /metrics`,
//!   `POST /admin/drain`, `POST /admin/stop`) and the accept loop.
//!
//! [`client`] is the matching side: a keep-alive HTTP client, the
//! `fmtm load` generator with RPS pacing and latency percentiles, and
//! the verification helpers the crash-restart drill uses.
//!
//! The wire protocol, on-disk layout and recovery guarantee are
//! documented in `docs/serving.md`.

pub mod api;
pub mod client;
pub mod http;
pub mod server;
pub mod shard;

pub use client::{run_load, verify_ids, wait_ready, Http1Client, LoadOptions, LoadReport};
pub use server::{Server, ServerConfig};
pub use shard::{PoolConfig, PoolError, ShardPool, SubmitOutcome};
