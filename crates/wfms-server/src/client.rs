//! A minimal HTTP/1.1 client and the `fmtm load` generator.
//!
//! [`Http1Client`] keeps one keep-alive connection and reconnects
//! transparently when the server closes it; [`Http1Client::pipelined`]
//! writes a burst of requests before reading any response, exercising
//! the server's pipelining path. [`run_load`] drives N connection
//! threads against `POST /instances` with optional request-rate
//! pacing and reports achieved throughput plus latency percentiles
//! (recorded in a [`wfms_observe::Histogram`], so the percentiles are
//! log-linear-bucket estimates, same as the engine's own latency
//! metrics). With [`LoadOptions::open_loop`] the generator keeps an
//! open-loop arrival schedule: latency is measured from each
//! request's *scheduled* send time and the schedule never resets when
//! the server falls behind, so queueing delay is charged to the
//! server rather than silently absorbed (no coordinated omission).
//! [`latency_curve`] sweeps offered rates and reports
//! latency-under-load at each.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use wfms_observe::Histogram;

use crate::api::{StatusResponse, SubmitResponse};

/// Strips an `http://` prefix and any trailing path, leaving
/// `host:port`.
pub fn host_of(url: &str) -> &str {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    rest.split('/').next().unwrap_or(rest)
}

/// One keep-alive HTTP/1.1 connection with automatic reconnect.
pub struct Http1Client {
    host: String,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
    /// Rendered `authorization` header line, empty when unset.
    auth_header: String,
}

impl Http1Client {
    /// A client for `url` (`http://host:port` or bare `host:port`).
    pub fn new(url: &str) -> Self {
        Self {
            host: host_of(url).to_owned(),
            timeout: Duration::from_secs(10),
            conn: None,
            auth_header: String::new(),
        }
    }

    /// Sends `authorization: Bearer <key>` with every request — how a
    /// tenant authenticates against a `--tenants` server.
    pub fn with_api_key(mut self, key: Option<&str>) -> Self {
        self.set_api_key(key);
        self
    }

    /// Sets or clears the bearer API key on an existing client.
    pub fn set_api_key(&mut self, key: Option<&str>) {
        self.auth_header = match key {
            Some(k) => format!("authorization: Bearer {k}\r\n"),
            None => String::new(),
        };
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.host)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("connected above"))
    }

    /// Sends one request and reads the response, reconnecting and
    /// retrying once if the pooled connection turned out dead.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        for attempt in 0..2 {
            match self.try_request(method, path, body) {
                Ok(answer) => return Ok(answer),
                Err(e) => {
                    self.conn = None;
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on success or second failure")
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let host = self.host.clone();
        let auth = self.auth_header.clone();
        let conn = self.connect()?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {host}\r\n{auth}content-length: {}\r\n\r\n",
            payload.len()
        );
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        read_response(conn)
    }

    /// Writes `n` copies of the same request back-to-back, then reads
    /// the `n` responses in order — a pipelined burst. No reconnect
    /// retry: a dead connection fails the whole burst.
    pub fn pipelined(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        n: usize,
    ) -> std::io::Result<Vec<(u16, String)>> {
        let host = self.host.clone();
        let auth = self.auth_header.clone();
        self.connect()?;
        let mut conn = self.conn.take().expect("connected above");
        let payload = body.unwrap_or("");
        let one = format!(
            "{method} {path} HTTP/1.1\r\nhost: {host}\r\n{auth}content-length: {}\r\n\r\n{payload}",
            payload.len()
        );
        let mut burst = Vec::with_capacity(one.len() * n);
        for _ in 0..n {
            burst.extend_from_slice(one.as_bytes());
        }
        let stream = conn.get_mut();
        stream.write_all(&burst)?;
        stream.flush()?;
        let mut answers = Vec::with_capacity(n);
        for _ in 0..n {
            answers.push(read_response(&mut conn)?);
        }
        // Only a fully-read burst leaves the connection reusable.
        self.conn = Some(conn);
        Ok(answers)
    }
}

/// Reads one `Content-Length`-framed response.
fn read_response(r: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status_line = String::new();
    if r.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed in headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok((status, body))
}

/// Options for [`run_load`].
#[derive(Clone)]
pub struct LoadOptions {
    /// Target, `http://host:port` or `host:port`.
    pub url: String,
    /// Process to start (server default when `None`).
    pub process: Option<String>,
    /// Stop after this many requests (across all connections).
    pub count: Option<u64>,
    /// Stop after this long (whichever of count/duration hits first;
    /// at least one must be set).
    pub duration: Option<Duration>,
    /// Target request rate across all connections (unpaced if
    /// `None` — as fast as the server answers).
    pub rps: Option<f64>,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Collect accepted instance ids (for later verification).
    pub collect_ids: bool,
    /// Open-loop mode (needs `rps`): latency is measured from each
    /// request's *scheduled* arrival time and the schedule never
    /// resets when the server lags, so percentiles include the
    /// queueing delay a real open population would see.
    pub open_loop: bool,
    /// Bearer API key sent with every request (tenancy-enabled
    /// servers refuse unauthenticated submissions with 401).
    pub api_key: Option<String>,
}

impl LoadOptions {
    /// A `count`-bounded load against `url`, one connection, unpaced.
    pub fn new(url: impl Into<String>) -> Self {
        Self {
            url: url.into(),
            process: None,
            count: None,
            duration: None,
            rps: None,
            connections: 1,
            collect_ids: false,
            open_loop: false,
            api_key: None,
        }
    }
}

/// What [`run_load`] measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `201 Accepted` answers.
    pub accepted: u64,
    /// `429 Overloaded` rejections.
    pub overloaded: u64,
    /// Transport errors and non-201/429 answers.
    pub errors: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Latency percentiles over accepted requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Accepted instance ids (only when `collect_ids` was set).
    pub ids: Vec<u64>,
}

impl LoadReport {
    /// Accepted starts per second.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.accepted as f64 / secs
        } else {
            0.0
        }
    }
}

/// Drives `POST /instances` from `connections` threads and measures.
pub fn run_load(opts: &LoadOptions) -> LoadReport {
    let connections = opts.connections.max(1);
    let body = opts
        .process
        .as_ref()
        .map(|p| format!("{{\"process\":\"{p}\"}}"));
    let sent = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latency = Histogram::new();
    let ids: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let deadline = opts.duration.map(|d| Instant::now() + d);
    // Per-thread pacing interval: each of C threads sends at rps/C.
    let interval = opts
        .rps
        .filter(|r| *r > 0.0)
        .map(|r| Duration::from_secs_f64(connections as f64 / r));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                let mut client = Http1Client::new(&opts.url).with_api_key(opts.api_key.as_deref());
                let mut next_send = Instant::now();
                let mut local_ids = Vec::new();
                loop {
                    if let Some(limit) = opts.count {
                        if sent.fetch_add(1, Ordering::Relaxed) >= limit {
                            sent.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    } else {
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(end) = deadline {
                        if Instant::now() >= end {
                            sent.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    // `scheduled` is the arrival the rate schedule
                    // prescribed; under open loop the clock for this
                    // request starts there even if the connection was
                    // still busy with the previous one.
                    let mut scheduled = Instant::now();
                    if let Some(step) = interval {
                        let now = Instant::now();
                        if next_send > now {
                            std::thread::sleep(next_send - now);
                        }
                        scheduled = next_send;
                        next_send += step;
                    }
                    let sent_at = Instant::now();
                    let t0 = if opts.open_loop { scheduled } else { sent_at };
                    match client.request("POST", "/instances", body.as_deref()) {
                        Ok((201, answer)) => {
                            latency.record(t0.elapsed().as_micros() as u64);
                            accepted.fetch_add(1, Ordering::Relaxed);
                            if opts.collect_ids {
                                if let Ok(resp) = serde_json::from_str::<SubmitResponse>(&answer) {
                                    local_ids.push(resp.id);
                                }
                            }
                        }
                        Ok((429, _)) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if !local_ids.is_empty() {
                    ids.lock().extend(local_ids);
                }
            });
        }
    });

    let snap = latency.snapshot();
    let mut ids = ids.into_inner();
    ids.sort_unstable();
    LoadReport {
        sent: sent.load(Ordering::Relaxed),
        accepted: accepted.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        p50_us: snap.p50,
        p95_us: snap.p95,
        p99_us: snap.p99,
        ids,
    }
}

/// One offered rate on a latency-under-load curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered rate (requests/s the schedule prescribed).
    pub offered_rps: f64,
    /// Achieved accepted rate.
    pub achieved_rps: f64,
    /// Requests sent at this point.
    pub sent: u64,
    /// `201` answers.
    pub accepted: u64,
    /// Transport errors and unexpected statuses.
    pub errors: u64,
    /// Open-loop (scheduled-arrival) latency percentiles, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
}

/// Sweeps the offered rates in `rates`, running an open-loop load of
/// `per_rate` duration at each, and returns latency-under-load per
/// rate. The base options' url/process/connections are reused; count
/// is cleared so each point is purely duration-bounded.
pub fn latency_curve(base: &LoadOptions, rates: &[f64], per_rate: Duration) -> Vec<CurvePoint> {
    let mut curve = Vec::with_capacity(rates.len());
    for &rate in rates {
        let mut opts = base.clone();
        opts.count = None;
        opts.duration = Some(per_rate);
        opts.rps = Some(rate);
        opts.open_loop = true;
        opts.collect_ids = false;
        let report = run_load(&opts);
        curve.push(CurvePoint {
            offered_rps: rate,
            achieved_rps: report.rps(),
            sent: report.sent,
            accepted: report.accepted,
            errors: report.errors,
            p50_us: report.p50_us,
            p95_us: report.p95_us,
            p99_us: report.p99_us,
        });
    }
    curve
}

/// Polls `GET /healthz` until the server answers or `timeout` passes.
pub fn wait_ready(url: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    let mut client = Http1Client::new(url);
    while Instant::now() < deadline {
        if matches!(client.request("GET", "/healthz", None), Ok((200, _))) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

/// Polls every id's status until all are `finished` (or `timeout`
/// passes). Returns the ids that never finished, with the last
/// observation (`"missing"` for ids the server does not know).
pub fn verify_ids(url: &str, ids: &[u64], timeout: Duration) -> Vec<(u64, String)> {
    verify_ids_as(url, None, ids, timeout)
}

/// [`verify_ids`] authenticated as a tenant — the ids must carry that
/// tenant's slot or the server answers 403.
pub fn verify_ids_as(
    url: &str,
    api_key: Option<&str>,
    ids: &[u64],
    timeout: Duration,
) -> Vec<(u64, String)> {
    let deadline = Instant::now() + timeout;
    let mut client = Http1Client::new(url).with_api_key(api_key);
    let mut pending: Vec<u64> = ids.to_vec();
    let mut last: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    while !pending.is_empty() && Instant::now() < deadline {
        pending.retain(
            |id| match client.request("GET", &format!("/instances/{id}"), None) {
                Ok((200, body)) => match serde_json::from_str::<StatusResponse>(&body) {
                    Ok(resp) if resp.status == "finished" => false,
                    Ok(resp) => {
                        last.insert(*id, resp.status);
                        true
                    }
                    Err(_) => {
                        last.insert(*id, "unparseable".to_owned());
                        true
                    }
                },
                Ok((code, _)) => {
                    last.insert(*id, format!("missing ({code})"));
                    true
                }
                Err(e) => {
                    last.insert(*id, format!("unreachable ({e})"));
                    true
                }
            },
        );
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    pending
        .into_iter()
        .map(|id| {
            let state = last.remove(&id).unwrap_or_else(|| "unknown".to_owned());
            (id, state)
        })
        .collect()
}

/// `POST /admin/deploy` with a serialized
/// [`crate::api::DeployRequest`] body. Returns the raw
/// `(status, body)` so callers can render either the
/// [`crate::api::DeployResponse`] or the error detail.
pub fn deploy(url: &str, body: &str) -> std::io::Result<(u16, String)> {
    Http1Client::new(url).request("POST", "/admin/deploy", Some(body))
}

/// `POST /admin/drain`; true on 200.
pub fn drain(url: &str) -> bool {
    matches!(
        Http1Client::new(url).request("POST", "/admin/drain", None),
        Ok((200, _))
    )
}

/// `POST /admin/stop`; true on 200.
pub fn stop(url: &str) -> bool {
    matches!(
        Http1Client::new(url).request("POST", "/admin/stop", None),
        Ok((200, _))
    )
}
