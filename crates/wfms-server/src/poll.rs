//! A tiny, dependency-free readiness poller over raw `epoll`
//! syscalls (Linux), plus an `eventfd`-based waker.
//!
//! The repository's offline-shims policy rules out `mio`/`libc` as
//! crates, but `std` already links the platform C library — so the
//! handful of symbols the reactor needs are declared here directly.
//! The surface is deliberately minimal: level-triggered interest
//! registration keyed by a caller-chosen `u64` token, a bounded wait,
//! and a cross-thread wake. Everything else (connection state,
//! buffers, timeouts) lives in [`crate::server`].

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable interest (level-triggered).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Wake only one of the epoll instances sharing a listener — avoids
/// the thundering herd when several reactors watch the same socket.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
/// ABI has no padding there); natural alignment elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct Event {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The token registered with the file descriptor.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall; the returned fd (once validated) is
        // owned by the OwnedFd and closed on drop.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = Event { events, token };
        // SAFETY: `ev` outlives the call; DEL ignores the event
        // pointer on any kernel this code targets (≥ 2.6.9).
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with `events` interest under `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest list (also implicit on close).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for ready events,
    /// filling `events` from the start. Returns the ready count.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries
            // and the kernel writes at most that many.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A cross-thread waker: an `eventfd` registered in the reactor's
/// epoll. Any thread calls [`Waker::wake`]; the reactor drains it
/// with [`Waker::drain`] when its token fires.
pub struct Waker {
    file: File,
}

impl Waker {
    /// Creates a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall; ownership transfers to the File.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The fd to register under the reactor's wake token.
    pub fn fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signals the reactor. Safe from any thread; coalesces.
    pub fn wake(&self) {
        // A full counter (EAGAIN) already guarantees a pending wake.
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Consumes pending wake signals so level-triggered polling
    /// quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [Event {
            events: 0,
            token: 0,
        }; 8];
        // Nothing to read yet: a zero-timeout wait reports nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.token }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        epoll.delete(server.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let epoll = Epoll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        epoll.add(waker.fd(), EPOLLIN, 1).unwrap();

        let w = std::sync::Arc::clone(&waker);
        std::thread::spawn(move || {
            w.wake();
            w.wake();
        })
        .join()
        .unwrap();

        let mut events = [Event {
            events: 0,
            token: 0,
        }; 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        waker.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained");
    }
}
