//! End-to-end loopback tests: a real [`Server`] on an ephemeral port,
//! driven through the real [`Http1Client`] — submit → manual-worklist
//! complete → status → drain — plus the pool-level contracts the HTTP
//! layer rides on: admission control, group-commit durability and
//! crash-restart recovery on the same data directory.

use std::sync::Arc;
use std::time::Duration;

use txn_substrate::{DurabilityPolicy, MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{InstanceStatus, OrgModel};
use wfms_model::{Activity, ProcessBuilder, ProcessDefinition};
use wfms_observe::Registry;
use wfms_server::api::{DeployResponse, StatusResponse, SubmitResponse, WorklistResponse};
use wfms_server::{
    Http1Client, MigrationPolicy, PoolConfig, Server, ServerConfig, ShardPool, SubmitOutcome,
};

fn provision(_shard: usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    (fed, registry)
}

/// An all-automatic two-step process.
fn auto_process() -> ProcessDefinition {
    ProcessBuilder::new("auto")
        .program("A", "ok")
        .program("B", "ok")
        .connect_when("A", "B", "RC = 1")
        .build()
        .unwrap()
}

/// A manual activity for role `clerk`, then an automatic tail.
fn manual_process() -> ProcessDefinition {
    ProcessBuilder::new("manual")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .program("Tail", "ok")
        .connect_when("M", "Tail", "RC = 1")
        .build()
        .unwrap()
}

fn pool_config(dir: &std::path::Path) -> PoolConfig {
    let mut cfg = PoolConfig::new(dir);
    cfg.shards = 2;
    cfg.org = OrgModel::new().person("ann", &["clerk"]);
    cfg.templates = vec![auto_process(), manual_process()];
    cfg
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wfms-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &std::path::Path) -> Server {
    let pool = ShardPool::open(pool_config(dir), Arc::new(Registry::new()), &provision).unwrap();
    Server::start(Arc::new(pool), ServerConfig::new("auto")).unwrap()
}

#[test]
fn submit_complete_status_drain_over_http() {
    let dir = temp_dir("e2e");
    let server = start_server(&dir);
    let url = server.local_addr().to_string();
    let mut client = Http1Client::new(&url);

    // Submit an automatic instance: finishes inside the call.
    let (code, body) = client
        .request("POST", "/instances", Some(r#"{"process":"auto"}"#))
        .unwrap();
    assert_eq!(code, 201, "{body}");
    let auto: SubmitResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(auto.status, "finished");

    // Submit a manual instance: parks on the worklist.
    let (code, body) = client
        .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
        .unwrap();
    assert_eq!(code, 201, "{body}");
    let manual: SubmitResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(manual.status, "running");

    // The item is on ann's worklist, with external ids.
    let (code, body) = client.request("GET", "/worklist?person=ann", None).unwrap();
    assert_eq!(code, 200, "{body}");
    let wl: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(wl.items.len(), 1);
    assert_eq!(wl.items[0].instance, manual.id);
    assert_eq!(wl.items[0].path, "M");

    // An unknown person has an empty worklist; no person is a 400.
    let (code, body) = client.request("GET", "/worklist?person=bob", None).unwrap();
    assert_eq!(code, 200);
    let empty: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert!(empty.items.is_empty());
    let (code, _) = client.request("GET", "/worklist", None).unwrap();
    assert_eq!(code, 400);

    // Complete the item; the automatic tail then finishes the
    // instance.
    let (code, body) = client
        .request(
            "POST",
            &format!("/worklist/{}/complete", wl.items[0].id),
            Some(r#"{"person":"ann"}"#),
        )
        .unwrap();
    assert_eq!(code, 200, "{body}");
    let (code, body) = client
        .request("GET", &format!("/instances/{}", manual.id), None)
        .unwrap();
    assert_eq!(code, 200);
    let status: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(status.status, "finished");
    assert_eq!(status.process, "manual");

    // Completing a closed item is a conflict, not a 500.
    let (code, _) = client
        .request(
            "POST",
            &format!("/worklist/{}/complete", wl.items[0].id),
            Some(r#"{"person":"ann"}"#),
        )
        .unwrap();
    assert_eq!(code, 409);

    // Unknown instance and unknown process are 404s.
    let (code, _) = client.request("GET", "/instances/999999", None).unwrap();
    assert_eq!(code, 404);
    let (code, _) = client
        .request("POST", "/instances", Some(r#"{"process":"nope"}"#))
        .unwrap();
    assert_eq!(code, 404);

    // Metrics exposition mentions the server counters.
    let (code, text) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(text.contains("server_submit_accepted"));
    assert!(text.contains("server_instances_finished"));

    // Drain: new submissions are parked with 503.
    let (code, _) = client.request("POST", "/admin/drain", None).unwrap();
    assert_eq!(code, 200);
    let (code, _) = client
        .request("POST", "/instances", Some(r#"{"process":"auto"}"#))
        .unwrap();
    assert_eq!(code, 503);
    // Reads still work while draining.
    let (code, _) = client
        .request("GET", &format!("/instances/{}", manual.id), None)
        .unwrap();
    assert_eq!(code, 200);

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_restart_resumes_instances_and_work_items() {
    let dir = temp_dir("crash");

    let (finished_id, parked_id) = {
        let server = start_server(&dir);
        let url = server.local_addr().to_string();
        let mut client = Http1Client::new(&url);
        let (_, body) = client
            .request("POST", "/instances", Some(r#"{"process":"auto"}"#))
            .unwrap();
        let auto: SubmitResponse = serde_json::from_str(&body).unwrap();
        let (_, body) = client
            .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
            .unwrap();
        let manual: SubmitResponse = serde_json::from_str(&body).unwrap();
        // Abrupt shutdown: no drain checkpoint — the acknowledged
        // submissions must survive on the strength of group commit
        // alone.
        server.shutdown(false);
        (auto.id, manual.id)
    };

    // Reopen the same data directory: the finished instance is still
    // finished, the parked one is still running with its work item
    // re-offered, and completing it finishes the flow.
    let server = start_server(&dir);
    let url = server.local_addr().to_string();
    let mut client = Http1Client::new(&url);

    let (code, body) = client
        .request("GET", &format!("/instances/{finished_id}"), None)
        .unwrap();
    assert_eq!(code, 200, "{body}");
    let status: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(status.status, "finished");

    let (_, body) = client
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    let status: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(status.status, "running");

    let (_, body) = client.request("GET", "/worklist?person=ann", None).unwrap();
    let wl: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(wl.items.len(), 1, "work item survives the crash");
    assert_eq!(wl.items[0].instance, parked_id);
    let (code, _) = client
        .request(
            "POST",
            &format!("/worklist/{}/complete", wl.items[0].id),
            Some(r#"{"person":"ann"}"#),
        )
        .unwrap();
    assert_eq!(code, 200);
    let (_, body) = client
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    let status: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(status.status, "finished");

    // New submissions after recovery get fresh ids.
    let (code, body) = client
        .request("POST", "/instances", Some(r#"{"process":"auto"}"#))
        .unwrap();
    assert_eq!(code, 201);
    let fresh: SubmitResponse = serde_json::from_str(&body).unwrap();
    assert_ne!(fresh.id, finished_id);
    assert_ne!(fresh.id, parked_id);

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_count_mismatch_is_rejected() {
    let dir = temp_dir("meta");
    {
        let pool =
            ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision).unwrap();
        drop(pool);
    }
    let mut cfg = pool_config(&dir);
    cfg.shards = 3;
    let Err(err) = ShardPool::open(cfg, Arc::new(Registry::new()), &provision) else {
        panic!("shard mismatch must be rejected");
    };
    assert!(
        err.to_string().contains("--shards"),
        "mismatch names the knob: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// v2 of the manual process: same park point, different automatic
/// tail — a different spec hash under the same name.
fn manual_process_v2() -> ProcessDefinition {
    ProcessBuilder::new("manual")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .program("Tail2", "ok")
        .connect_when("M", "Tail2", "RC = 1")
        .build()
        .unwrap()
}

/// `POST /admin/deploy` with `drain-old`: the new version becomes the
/// default for *new* submits, parked instances keep their pinned
/// version and finish under it — across an abrupt restart too.
#[test]
fn deploy_over_http_pins_old_instances_to_their_version() {
    let dir = temp_dir("deploy");
    let (old_id, new_id, v1, v2);
    {
        let server = start_server(&dir);
        let url = server.local_addr().to_string();
        let mut client = Http1Client::new(&url);

        // Park a v1 instance on the worklist.
        let (code, body) = client
            .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
            .unwrap();
        assert_eq!(code, 201, "{body}");
        let old: SubmitResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(old.status, "running");
        old_id = old.id;
        let (_, body) = client
            .request("GET", &format!("/instances/{old_id}"), None)
            .unwrap();
        let st: StatusResponse = serde_json::from_str(&body).unwrap();
        v1 = st.version;

        // Deploy v2.
        let deploy_body = format!(
            r#"{{"definition":{},"policy":"drain-old"}}"#,
            serde_json::to_string(&manual_process_v2()).unwrap()
        );
        let (code, body) = client
            .request("POST", "/admin/deploy", Some(&deploy_body))
            .unwrap();
        assert_eq!(code, 200, "{body}");
        let dep: DeployResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(dep.process, "manual");
        assert_ne!(dep.version, v1);
        assert_eq!(dep.migrated, 0, "drain-old migrates nothing");
        v2 = dep.version;

        // New submits run the deployed version.
        let (code, body) = client
            .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
            .unwrap();
        assert_eq!(code, 201, "{body}");
        let new: SubmitResponse = serde_json::from_str(&body).unwrap();
        new_id = new.id;
        let (_, body) = client
            .request("GET", &format!("/instances/{new_id}"), None)
            .unwrap();
        let st: StatusResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(st.version, v2);

        // A body without "definition", an unknown policy and a
        // non-validating definition are 400s, not 500s.
        let (code, _) = client
            .request("POST", "/admin/deploy", Some(r#"{"policy":"drain-old"}"#))
            .unwrap();
        assert_eq!(code, 400);
        let bad_policy = format!(
            r#"{{"definition":{},"policy":"nope"}}"#,
            serde_json::to_string(&manual_process_v2()).unwrap()
        );
        let (code, _) = client
            .request("POST", "/admin/deploy", Some(&bad_policy))
            .unwrap();
        assert_eq!(code, 400);
        let mut invalid = ProcessDefinition::new("manual");
        invalid.control.push(wfms_model::ControlConnector {
            from: "X".into(),
            to: "Y".into(),
            condition: wfms_model::Expr::var_eq_int("RC", 1),
        });
        let bad_def = format!(
            r#"{{"definition":{}}}"#,
            serde_json::to_string(&invalid).unwrap()
        );
        let (code, body) = client
            .request("POST", "/admin/deploy", Some(&bad_def))
            .unwrap();
        assert_eq!(
            code, 400,
            "invalid definition is the client's fault: {body}"
        );

        // Abrupt shutdown: the deploy must be durable.
        server.shutdown(false);
    }

    // Restart on the same directory with the ORIGINAL v1 template set:
    // the stored v2 is loaded from the templates directory and stays
    // the default; the parked v1 instance still completes under v1.
    let server = start_server(&dir);
    let url = server.local_addr().to_string();
    let mut client = Http1Client::new(&url);

    let (_, body) = client.request("GET", "/worklist?person=ann", None).unwrap();
    let wl: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(wl.items.len(), 2, "both parked instances survive");
    for item in &wl.items {
        let (code, body) = client
            .request(
                "POST",
                &format!("/worklist/{}/complete", item.id),
                Some(r#"{"person":"ann"}"#),
            )
            .unwrap();
        assert_eq!(code, 200, "{body}");
    }
    for (id, want_version) in [(old_id, &v1), (new_id, &v2)] {
        let (_, body) = client
            .request("GET", &format!("/instances/{id}"), None)
            .unwrap();
        let st: StatusResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(st.status, "finished", "{body}");
        assert_eq!(&st.version, want_version, "{body}");
    }
    // A post-restart submit still defaults to v2.
    let (_, body) = client
        .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
        .unwrap();
    let fresh: SubmitResponse = serde_json::from_str(&body).unwrap();
    let (_, body) = client
        .request("GET", &format!("/instances/{}", fresh.id), None)
        .unwrap();
    let st: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(st.version, v2);

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `migrate-at-scope-boundary` policy moves parked instances to
/// the deployed version; their tail runs under v2.
#[test]
fn deploy_migrate_policy_moves_parked_instances() {
    let dir = temp_dir("deploy-migrate");
    let pool = ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision).unwrap();
    let SubmitOutcome::Accepted { id, status, .. } =
        pool.submit("manual", wfms_model::Container::empty())
    else {
        panic!("submit rejected");
    };
    assert_eq!(status, InstanceStatus::Running);

    let report = pool
        .deploy(manual_process_v2(), MigrationPolicy::MigrateAtScopeBoundary)
        .unwrap();
    assert_eq!(report.migrated, 1, "{report:?}");
    let (_, _, version, _) = pool.status(id).unwrap();
    assert_eq!(version, report.version, "parked instance now on v2");

    let items = pool.worklist("ann");
    assert_eq!(items.len(), 1);
    pool.complete(items[0].0, "ann").unwrap();
    let (_, status, version, _) = pool.status(id).unwrap();
    assert_eq!(status, InstanceStatus::Finished);
    assert_eq!(version, report.version);

    // Deploying the same definition again is a no-op for instances.
    let again = pool
        .deploy(manual_process_v2(), MigrationPolicy::MigrateAtScopeBoundary)
        .unwrap();
    assert_eq!(again.version, report.version);
    assert_eq!(again.migrated, 0);
    drop(pool);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: reopening a data directory with a *changed* definition
/// under an already-registered name is refused with both hashes named
/// — silently re-interpreting journals against a different spec was
/// the spec-identity bug.
#[test]
fn reopen_with_changed_spec_is_rejected() {
    let dir = temp_dir("specpin");
    {
        let pool =
            ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision).unwrap();
        drop(pool);
    }
    let mut cfg = pool_config(&dir);
    cfg.templates = vec![auto_process(), manual_process_v2()];
    let Err(err) = ShardPool::open(cfg, Arc::new(Registry::new()), &provision) else {
        panic!("changed spec must be rejected");
    };
    let msg = err.to_string();
    let on_disk = format!("{:016x}", wfms_engine::spec_hash_of(&manual_process()));
    let requested = format!("{:016x}", wfms_engine::spec_hash_of(&manual_process_v2()));
    assert!(msg.contains("manual"), "names the process: {msg}");
    assert!(
        msg.contains(&on_disk) && msg.contains(&requested),
        "names both hashes: {msg}"
    );
    assert!(msg.contains("deploy"), "points at the escape hatch: {msg}");

    // The original spec still opens.
    let pool = ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision).unwrap();
    drop(pool);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_rejects_beyond_high_water() {
    let dir = temp_dir("admission");
    let mut cfg = pool_config(&dir);
    cfg.shards = 1;
    cfg.queue_capacity = 2;
    cfg.batch_max = 1;
    cfg.throttle = Some(Duration::from_millis(20));
    let pool = Arc::new(ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap());

    // 12 concurrent submitters against a queue of 2 and a worker that
    // takes 20ms per job: some must be rejected, none may hang, and
    // accepted + overloaded covers everything.
    let outcomes: Vec<SubmitOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let pool = Arc::clone(&pool);
                s.spawn(move || pool.submit("auto", wfms_model::Container::empty()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let accepted = outcomes
        .iter()
        .filter(|o| matches!(o, SubmitOutcome::Accepted { .. }))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|o| matches!(o, SubmitOutcome::Overloaded { .. }))
        .count();
    assert_eq!(accepted + overloaded, 12, "no third outcome: {outcomes:?}");
    assert!(accepted >= 1, "the queue makes progress");
    assert!(overloaded >= 1, "the high-water mark rejects");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads one `Content-Length`-framed response off a raw socket:
/// `(status, lowercased header block, body)`.
fn read_raw_response(r: &mut impl std::io::BufRead) -> (u16, String, String) {
    let mut status_line = String::new();
    assert!(
        r.read_line(&mut status_line).unwrap() > 0,
        "connection closed before response"
    );
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert!(r.read_line(&mut line).unwrap() > 0, "closed in headers");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        headers.push_str(&line.to_ascii_lowercase());
        headers.push('\n');
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

fn raw_socket(url: &str) -> std::io::BufReader<std::net::TcpStream> {
    let stream = std::net::TcpStream::connect(url).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::io::BufReader::new(stream)
}

#[test]
fn pipelined_requests_get_ordered_replies() {
    use std::io::Write;

    let dir = temp_dir("pipeline");
    let server = start_server(&dir);
    let url = server.local_addr().to_string();

    // Three different requests written back-to-back on one socket —
    // two async submits around a synchronous health check — must come
    // back in request order: the sync answer may be ready first, but
    // it must still wait behind the first submit's group commit.
    let mut conn = raw_socket(&url);
    let burst = concat!(
        "POST /instances HTTP/1.1\r\ncontent-length: 18\r\n\r\n{\"process\":\"auto\"}",
        "GET /healthz HTTP/1.1\r\n\r\n",
        "POST /instances HTTP/1.1\r\ncontent-length: 20\r\n\r\n{\"process\":\"manual\"}",
    );
    conn.get_mut().write_all(burst.as_bytes()).unwrap();
    conn.get_mut().flush().unwrap();

    let (code, _, body) = read_raw_response(&mut conn);
    assert_eq!(code, 201, "{body}");
    let first: SubmitResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(first.status, "finished", "auto process runs to completion");
    let (code, _, body) = read_raw_response(&mut conn);
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"shards\""), "healthz answer: {body}");
    let (code, _, body) = read_raw_response(&mut conn);
    assert_eq!(code, 201, "{body}");
    let third: SubmitResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(third.status, "running", "manual process parks");

    // The client-side pipelining helper: 3 submits, 3 ordered 201s.
    let mut client = Http1Client::new(&url);
    let answers = client
        .pipelined("POST", "/instances", Some(r#"{"process":"auto"}"#), 3)
        .unwrap();
    assert_eq!(answers.len(), 3);
    for (code, body) in &answers {
        assert_eq!(*code, 201, "{body}");
        let resp: SubmitResponse = serde_json::from_str(body).unwrap();
        assert_eq!(resp.status, "finished");
    }

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_method_on_known_route_is_405_with_allow() {
    use std::io::Write;

    let dir = temp_dir("methods");
    let server = start_server(&dir);
    let url = server.local_addr().to_string();

    for (request, allow) in [
        (
            "PUT /instances HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
            "post",
        ),
        ("GET /admin/drain HTTP/1.1\r\n\r\n", "post"),
        (
            "POST /worklist HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
            "get",
        ),
        ("DELETE /metrics HTTP/1.1\r\n\r\n", "get"),
    ] {
        let mut conn = raw_socket(&url);
        conn.get_mut().write_all(request.as_bytes()).unwrap();
        let (code, headers, body) = read_raw_response(&mut conn);
        assert_eq!(code, 405, "{request:?}: {body}");
        assert!(
            headers.contains(&format!("allow: {allow}")),
            "{request:?} must advertise Allow, got:\n{headers}"
        );
    }

    // A genuinely unknown path is still a 404.
    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"GET /nope HTTP/1.1\r\n\r\n")
        .unwrap();
    let (code, _, _) = read_raw_response(&mut conn);
    assert_eq!(code, 404);

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http10_request_defaults_to_close() {
    use std::io::{Read, Write};

    let dir = temp_dir("http10");
    let server = start_server(&dir);
    let url = server.local_addr().to_string();

    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
        .unwrap();
    let (code, headers, _) = read_raw_response(&mut conn);
    assert_eq!(code, 200);
    assert!(
        headers.contains("connection: close"),
        "HTTP/1.0 without keep-alive must close:\n{headers}"
    );
    // And the server actually closes: EOF, not a 30s timeout.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after the response");

    // An explicit keep-alive on HTTP/1.0 keeps the connection open
    // for a second request.
    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"GET /healthz HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
        .unwrap();
    let (code, headers, _) = read_raw_response(&mut conn);
    assert_eq!(code, 200);
    assert!(headers.contains("connection: keep-alive"), "{headers}");
    conn.get_mut()
        .write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
        .unwrap();
    let (code, _, _) = read_raw_response(&mut conn);
    assert_eq!(code, 200);

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_response_says_close_then_stops() {
    use std::io::{Read, Write};

    let dir = temp_dir("stopclose");
    let server = start_server(&dir);
    let url = server.local_addr().to_string();

    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"POST /admin/stop HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let (code, headers, body) = read_raw_response(&mut conn);
    assert_eq!(code, 200, "{body}");
    assert!(
        headers.contains("connection: close"),
        "stop closes the connection and must say so:\n{headers}"
    );
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // The stop was delivered: wait_stop returns without help.
    server.wait_stop();
    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------- tenancy

fn tenant_specs() -> Vec<wfms_server::TenantSpec> {
    wfms_server::parse_tenants(
        r#"{"tenants":[
            {"name":"acme","key":"k-acme","weight":4},
            {"name":"beta","key":"k-beta"}
        ]}"#,
    )
    .unwrap()
}

fn tenant_pool_config(dir: &std::path::Path) -> PoolConfig {
    let mut cfg = pool_config(dir);
    cfg.tenants = tenant_specs();
    cfg
}

/// The full auth taxonomy over real HTTP: no key and a wrong key are
/// `401` (with `WWW-Authenticate` and `Connection: close`); a good key
/// reaches the data plane; another tenant's instance answers `403`;
/// the ops plane stays unauthenticated; `/metrics` grows per-tenant
/// families.
#[test]
fn tenancy_auth_and_isolation_over_http() {
    use std::io::{Read, Write};

    let dir = temp_dir("tenancy-auth");
    let pool = ShardPool::open(
        tenant_pool_config(&dir),
        Arc::new(Registry::new()),
        &provision,
    )
    .unwrap();
    let server = Server::start(Arc::new(pool), ServerConfig::new("auto")).unwrap();
    let url = server.local_addr().to_string();

    // No Authorization header → 401, advertised scheme, forced close.
    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"POST /instances HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}")
        .unwrap();
    let (code, headers, body) = read_raw_response(&mut conn);
    assert_eq!(code, 401, "{body}");
    assert!(body.contains("unauthorized"), "{body}");
    assert!(headers.contains("www-authenticate: bearer"), "{headers}");
    assert!(headers.contains("connection: close"), "{headers}");
    let mut rest = Vec::new();
    conn.get_mut().read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "401 actually closes the connection");

    // A key no tenant holds → the same 401 answer (no tenant oracle).
    let mut conn = raw_socket(&url);
    conn.get_mut()
        .write_all(b"GET /worklist?person=ann HTTP/1.1\r\nauthorization: Bearer nope\r\n\r\n")
        .unwrap();
    let (code, headers, _) = read_raw_response(&mut conn);
    assert_eq!(code, 401);
    assert!(headers.contains("connection: close"), "{headers}");

    // The ops plane needs no key.
    let mut plain = Http1Client::new(&url);
    let (code, _) = plain.request("GET", "/healthz", None).unwrap();
    assert_eq!(code, 200);

    // acme submits; the id decodes to acme's slot on reads.
    let mut acme = Http1Client::new(&url).with_api_key(Some("k-acme"));
    let (code, body) = acme
        .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
        .unwrap();
    assert_eq!(code, 201, "{body}");
    let submitted: SubmitResponse = serde_json::from_str(&body).unwrap();
    let (code, body) = acme
        .request("GET", &format!("/instances/{}", submitted.id), None)
        .unwrap();
    assert_eq!(code, 200, "{body}");

    // beta cannot read acme's instance, its worklist item, nor see it
    // on the worklist.
    let mut beta = Http1Client::new(&url).with_api_key(Some("k-beta"));
    let (code, body) = beta
        .request("GET", &format!("/instances/{}", submitted.id), None)
        .unwrap();
    assert_eq!(code, 403, "{body}");
    assert!(body.contains("forbidden"), "{body}");
    let (code, body) = acme.request("GET", "/worklist?person=ann", None).unwrap();
    assert_eq!(code, 200, "{body}");
    let wl: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(wl.items.len(), 1, "acme sees its own item");
    assert_eq!(wl.items[0].instance, submitted.id);
    let (code, body) = beta.request("GET", "/worklist?person=ann", None).unwrap();
    assert_eq!(code, 200);
    let wl_beta: WorklistResponse = serde_json::from_str(&body).unwrap();
    assert!(
        wl_beta.items.is_empty(),
        "beta's worklist is scoped: {body}"
    );
    let (code, _) = beta
        .request(
            "POST",
            &format!("/worklist/{}/complete", wl.items[0].id),
            Some(r#"{"person":"ann"}"#),
        )
        .unwrap();
    assert_eq!(code, 403, "cross-tenant complete is forbidden");

    // acme itself can complete the item.
    let (code, body) = acme
        .request(
            "POST",
            &format!("/worklist/{}/complete", wl.items[0].id),
            Some(r#"{"person":"ann"}"#),
        )
        .unwrap();
    assert_eq!(code, 200, "{body}");

    // Per-tenant metric families are exposed, labelled by name.
    let (code, text) = plain.request("GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(
        text.contains("server_tenant_accepted{tenant=\"acme\"}"),
        "{text}"
    );
    assert!(
        text.contains("server_tenant_inflight{tenant=\"acme\"}"),
        "{text}"
    );

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tenant past its inflight quota answers `429` with `Retry-After`
/// and `Connection: close` — while another tenant keeps submitting.
#[test]
fn tenant_quota_answers_429_with_retry_after() {
    use std::io::Write;

    let dir = temp_dir("tenancy-quota");
    let mut cfg = tenant_pool_config(&dir);
    cfg.shards = 1;
    cfg.tenants[0].max_inflight = 2; // acme
    cfg.throttle = Some(Duration::from_millis(100));
    let pool = ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap();
    let server = Server::start(Arc::new(pool), ServerConfig::new("auto")).unwrap();
    let url = server.local_addr().to_string();

    // Three pipelined submits against a quota of 2 and a worker that
    // takes 100ms per job: the first two are admitted, the third is
    // quota-rejected. Replies come back in request order.
    let mut conn = raw_socket(&url);
    let one = "POST /instances HTTP/1.1\r\nauthorization: Bearer k-acme\r\n\
               content-length: 18\r\n\r\n{\"process\":\"auto\"}";
    let burst = format!("{one}{one}{one}");
    conn.get_mut().write_all(burst.as_bytes()).unwrap();
    conn.get_mut().flush().unwrap();
    let (code, _, body) = read_raw_response(&mut conn);
    assert_eq!(code, 201, "{body}");
    let (code, _, body) = read_raw_response(&mut conn);
    assert_eq!(code, 201, "{body}");
    let (code, headers, body) = read_raw_response(&mut conn);
    assert_eq!(code, 429, "third submit breaches the quota: {body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(headers.contains("retry-after: 1"), "{headers}");
    assert!(headers.contains("connection: close"), "{headers}");

    // The quiet tenant is not collateral damage.
    let mut beta = Http1Client::new(&url).with_api_key(Some("k-beta"));
    let (code, body) = beta
        .request("POST", "/instances", Some(r#"{"process":"auto"}"#))
        .unwrap();
    assert_eq!(code, 201, "beta submits while acme is throttled: {body}");

    // The rejection shows up in acme's overloaded counter.
    let mut plain = Http1Client::new(&url);
    let (_, text) = plain.request("GET", "/metrics", None).unwrap();
    assert!(
        text.contains("server_tenant_overloaded{tenant=\"acme\"} 1"),
        "{text}"
    );

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart + hot reload: instances recover under their tenant, a
/// rotated key takes effect via `POST /admin/reload-tenants`, and the
/// old key dies.
#[test]
fn restart_and_reload_tenants_rotates_keys_and_keeps_identity() {
    let dir = temp_dir("tenancy-reload");
    let tenants_file = dir.join("tenants.json");

    let start = |specs: Vec<wfms_server::TenantSpec>| {
        let mut cfg = pool_config(&dir);
        cfg.tenants = specs;
        let pool = ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap();
        let mut scfg = ServerConfig::new("auto");
        scfg.tenants_path = Some(tenants_file.clone());
        Server::start(Arc::new(pool), scfg).unwrap()
    };

    let parked_id;
    {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            &tenants_file,
            r#"{"tenants":[{"name":"acme","key":"k-acme"},{"name":"beta","key":"k-beta"}]}"#,
        )
        .unwrap();
        let server = start(tenant_specs());
        let url = server.local_addr().to_string();
        let mut acme = Http1Client::new(&url).with_api_key(Some("k-acme"));
        let (code, body) = acme
            .request("POST", "/instances", Some(r#"{"process":"manual"}"#))
            .unwrap();
        assert_eq!(code, 201, "{body}");
        let submitted: SubmitResponse = serde_json::from_str(&body).unwrap();
        parked_id = submitted.id;
        server.shutdown(false); // abrupt: no drain checkpoint
    }

    let server = start(tenant_specs());
    let url = server.local_addr().to_string();

    // The recovered instance still belongs to acme: readable with
    // acme's key, 403 with beta's.
    let mut acme = Http1Client::new(&url).with_api_key(Some("k-acme"));
    let (code, body) = acme
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    assert_eq!(code, 200, "{body}");
    let st: StatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(st.status, "running");
    let mut beta = Http1Client::new(&url).with_api_key(Some("k-beta"));
    let (code, _) = beta
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    assert_eq!(code, 403, "tenant identity survives the crash");

    // Rotate acme's key on disk and hot-reload.
    std::fs::write(
        &tenants_file,
        r#"{"tenants":[{"name":"acme","key":"rotated"},{"name":"beta","key":"k-beta"}]}"#,
    )
    .unwrap();
    let mut plain = Http1Client::new(&url);
    let (code, body) = plain
        .request("POST", "/admin/reload-tenants", None)
        .unwrap();
    assert_eq!(code, 200, "{body}");
    let reloaded: wfms_server::api::ReloadTenantsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(reloaded.tenants, 2);

    // Old key dead, rotated key reaches the same instance.
    let (code, _) = acme
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    assert_eq!(code, 401, "pre-rotation key no longer authenticates");
    let mut rotated = Http1Client::new(&url).with_api_key(Some("rotated"));
    let (code, body) = rotated
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    assert_eq!(code, 200, "{body}");

    // A tenants file that fails validation answers 400 and leaves the
    // live table untouched.
    std::fs::write(&tenants_file, r#"{"tenants":[{"name":"","key":"k"}]}"#).unwrap();
    let (code, _) = plain
        .request("POST", "/admin/reload-tenants", None)
        .unwrap();
    assert_eq!(code, 400);
    let (code, _) = rotated
        .request("GET", &format!("/instances/{parked_id}"), None)
        .unwrap();
    assert_eq!(code, 200, "failed reload keeps the previous table");

    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reopening a data directory with a different tenancy layout —
/// enabled↔disabled — is refused with the knob named, exactly like a
/// `--shards` mismatch.
#[test]
fn tenancy_flip_on_reopen_is_rejected() {
    let dir = temp_dir("tenancy-flip");
    {
        let pool = ShardPool::open(
            tenant_pool_config(&dir),
            Arc::new(Registry::new()),
            &provision,
        )
        .unwrap();
        drop(pool);
    }
    // Tenanted directory, untenanted reopen: refused.
    let Err(err) = ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision) else {
        panic!("tenancy flip must be rejected");
    };
    assert!(
        err.to_string().contains("--tenants"),
        "names the knob: {err}"
    );
    // The original layout still opens, and new tenants may be added.
    let mut cfg = tenant_pool_config(&dir);
    cfg.tenants.push(wfms_server::TenantSpec {
        name: "gamma".to_owned(),
        key: "k-gamma".to_owned(),
        weight: 1,
        max_inflight: 16,
    });
    let pool = ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap();
    drop(pool);
    let _ = std::fs::remove_dir_all(&dir);

    // And the reverse: an untenanted directory refuses a tenanted
    // reopen (ids on disk have no slot bits).
    let dir = temp_dir("tenancy-flip2");
    {
        let pool =
            ShardPool::open(pool_config(&dir), Arc::new(Registry::new()), &provision).unwrap();
        drop(pool);
    }
    let Err(err) = ShardPool::open(
        tenant_pool_config(&dir),
        Arc::new(Registry::new()),
        &provision,
    ) else {
        panic!("reverse tenancy flip must be rejected");
    };
    assert!(err.to_string().contains("--tenants"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acknowledged_submissions_are_durable_before_reply() {
    let dir = temp_dir("durable");
    let mut cfg = pool_config(&dir);
    cfg.shards = 1;
    // An enormous batch threshold: the policy alone would flush
    // (almost) never, so any durability must come from the group
    // commit the worker issues before acknowledging.
    cfg.durability = DurabilityPolicy::Batched { n: 1_000_000 };
    let pool = ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap();

    for _ in 0..10 {
        match pool.submit("auto", wfms_model::Container::empty()) {
            SubmitOutcome::Accepted { status, .. } => {
                assert_eq!(status, InstanceStatus::Finished)
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
    }
    // Read the journal file directly — bypassing the engine — right
    // after the last acknowledgement: all ten starts must be on disk.
    let text = std::fs::read_to_string(dir.join("shard-0.journal")).unwrap();
    let starts = text
        .lines()
        .filter(|l| l.contains("InstanceStarted"))
        .count();
    assert_eq!(starts, 10, "every ACKed start is on disk");
    drop(pool);
    let _ = std::fs::remove_dir_all(&dir);
}
