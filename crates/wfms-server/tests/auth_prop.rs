//! Property tests for the API-key authentication path.
//!
//! Every input here can arrive from the network (header values) or
//! from an operator-edited tenants file, so the properties are about
//! totality: arbitrary inputs never panic, and the accept/reject
//! decision agrees with a plain-equality oracle.

use proptest::prelude::*;
use wfms_observe::Registry;
use wfms_server::{parse_tenants, TenantSpec, TenantTable};

fn spec(name: &str, key: &str) -> TenantSpec {
    TenantSpec {
        name: name.to_owned(),
        key: key.to_owned(),
        weight: 1,
        max_inflight: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `bearer_token` is total over arbitrary header values: it never
    /// panics, and any token it does extract is a plausible bearer
    /// token (non-empty, no interior spaces, a substring of the
    /// header).
    #[test]
    fn bearer_token_never_panics(header in "\\PC{0,64}") {
        match wfms_server::tenant::bearer_token(&header) {
            None => {}
            Some(token) => {
                prop_assert!(!token.is_empty());
                prop_assert!(!token.contains(' '));
                prop_assert!(header.contains(token));
                prop_assert!(
                    header.len() >= "Bearer x".len(),
                    "a token needs at least the scheme and one byte"
                );
            }
        }
    }

    /// A well-formed `Bearer <token>` header always round-trips the
    /// token, whatever the token bytes (no spaces by construction).
    #[test]
    fn bearer_token_roundtrips(token in "[!-~]{1,32}") {
        let header = format!("Bearer {token}");
        prop_assert_eq!(wfms_server::tenant::bearer_token(&header), Some(token.as_str()));
    }

    /// `constant_time_eq` agrees with plain equality on every byte
    /// pair, except that empty inputs never match (an unset key must
    /// not authenticate an empty bearer).
    #[test]
    fn constant_time_eq_matches_oracle(
        a in prop::collection::vec(any::<u8>(), 0..48),
        b in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let expect = a == b && !a.is_empty();
        prop_assert_eq!(wfms_server::tenant::constant_time_eq(&a, &b), expect);
        // Reflexivity on the same non-empty buffer.
        if !a.is_empty() {
            prop_assert!(wfms_server::tenant::constant_time_eq(&a, &a));
        }
    }

    /// `parse_tenants` is total over arbitrary text: garbage is an
    /// `Err`, never a panic, and anything accepted satisfies the
    /// validation rules.
    #[test]
    fn parse_tenants_never_panics(text in "\\PC{0,128}") {
        if let Ok(specs) = parse_tenants(&text) {
            for s in &specs {
                prop_assert!(!s.name.is_empty());
                prop_assert!(!s.key.is_empty());
                prop_assert!(s.weight >= 1);
                prop_assert!(s.max_inflight >= 1);
            }
        }
    }

    /// The authentication decision is total and agrees with the
    /// oracle: an arbitrary presented key authenticates exactly when
    /// it equals some live tenant's key.
    #[test]
    fn authenticate_agrees_with_oracle(
        keys in prop::collection::vec("[!-~]{1,24}", 1..6),
        probe in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        // Distinct names; keys may collide, in which case any of the
        // colliding tenants is an acceptable answer.
        let specs: Vec<TenantSpec> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| spec(&format!("t{i}"), k))
            .collect();
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let table = TenantTable::build(&names, &specs, None, &Registry::new());
        let expect = specs.iter().any(|s| s.key.as_bytes() == probe.as_slice());
        match table.authenticate(&probe) {
            Some(t) => {
                prop_assert!(expect, "authenticated a key no tenant holds");
                prop_assert!(
                    specs.iter().any(|s| s.name == t.name && s.key.as_bytes() == probe.as_slice()),
                    "authenticated as a tenant whose key differs"
                );
            }
            None => prop_assert!(!expect, "rejected a live tenant's key"),
        }
    }
}
