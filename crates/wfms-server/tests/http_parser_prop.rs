//! Property tests for the hand-rolled HTTP/1.1 request parser.
//!
//! The parser faces the network directly, so the properties are about
//! robustness rather than protocol completeness: arbitrary bytes never
//! panic, size limits always answer `413`, malformed syntax always
//! answers `400`, and well-formed requests round-trip their method,
//! target, headers and body.

use std::io::Cursor;

use proptest::prelude::*;
use wfms_server::http::{read_request, HttpError, MAX_BODY, MAX_HEADERS, MAX_LINE};

/// Feeds raw bytes to the parser and returns the outcome.
fn parse(bytes: &[u8]) -> Result<Option<wfms_server::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes))
}

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z-]{1,12}"
}

fn header_value() -> impl Strategy<Value = String> {
    // Printable ASCII minus CR/LF; leading/trailing spaces are trimmed
    // by the parser so the generator avoids them.
    "[!-~]{0,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic: every input yields `Ok` or a
    /// classified `HttpError` (the test passing at all proves no
    /// panic; the match proves the error taxonomy is total).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse(&bytes) {
            Ok(_) => {}
            Err(e) => {
                let status = e.status();
                prop_assert!(
                    status == 400 || status == 413,
                    "unexpected status {status} for parse error"
                );
            }
        }
    }

    /// Garbage request lines (no two spaces, bad version, …) answer
    /// `400`, never a parsed request and never `413`.
    #[test]
    fn garbage_request_line_is_400(line in "[a-z ]{0,40}") {
        // Lines that happen to form `METHOD SP TARGET SP HTTP/1.x` are
        // excluded by construction (lowercase letters and spaces only,
        // so the version token can never match).
        let input = format!("{line}\r\n\r\n");
        match parse(input.as_bytes()) {
            Ok(None) => prop_assert!(line.is_empty(), "clean EOF only for empty input"),
            Ok(Some(req)) => prop_assert!(false, "parsed garbage as {:?}", req.method),
            Err(e) => prop_assert_eq!(e.status(), 400),
        }
    }

    /// A header line longer than `MAX_LINE` answers `413` regardless
    /// of the padding content.
    #[test]
    fn oversized_header_is_413(pad in MAX_LINE..MAX_LINE + 64) {
        let input = format!(
            "GET / HTTP/1.1\r\nx-big: {}\r\n\r\n",
            "v".repeat(pad)
        );
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// More header lines than `MAX_HEADERS` answers `413`.
    #[test]
    fn too_many_headers_is_413(extra in 1usize..8) {
        let mut input = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + extra {
            input.push_str(&format!("x-h{i}: v\r\n"));
        }
        input.push_str("\r\n");
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// A declared body length larger than `MAX_BODY` answers `413`
    /// without reading the body.
    #[test]
    fn oversized_body_is_413(over in 1usize..1024) {
        let input = format!(
            "POST /instances HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + over
        );
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// A body shorter than its declared `content-length` (connection
    /// cut mid-body) answers `400`, never a partial request.
    #[test]
    fn truncated_body_is_400(body in prop::collection::vec(any::<u8>(), 1..64), cut in 1usize..64) {
        let cut = cut.min(body.len());
        let mut input = format!(
            "POST /instances HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        input.extend_from_slice(&body[..body.len() - cut]);
        match parse(&input) {
            Err(e) => prop_assert_eq!(e.status(), 400),
            other => prop_assert!(false, "expected 400, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// Well-formed requests round-trip method, target, header values
    /// (names case-insensitively) and the exact body bytes.
    #[test]
    fn valid_request_roundtrips(
        name in token(),
        value in header_value(),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut input = format!(
            "POST /worklist/7/complete?person=ann HTTP/1.1\r\n{name}: {value}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        input.extend_from_slice(&body);
        let req = match parse(&input) {
            Ok(Some(req)) => req,
            other => return Err(TestCaseError::fail(format!("parse failed: {other:?}"))),
        };
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), "/worklist/7/complete");
        prop_assert_eq!(req.query_param("person"), Some("ann"));
        // Header names are lowercased on read; values survive verbatim
        // modulo edge trimming (excluded by the generator).
        prop_assert_eq!(req.header(&name.to_ascii_lowercase()), Some(value.as_str()));
        prop_assert_eq!(req.body, body);
    }
}
