//! Property tests for the hand-rolled HTTP/1.1 request parser.
//!
//! The parser faces the network directly, so the properties are about
//! robustness rather than protocol completeness: arbitrary bytes never
//! panic, size limits always answer `413`, malformed syntax always
//! answers `400`, and well-formed requests round-trip their method,
//! target, headers and body.

use std::io::Cursor;

use proptest::prelude::*;
use wfms_server::http::{
    read_request, Decoder, HttpError, Version, MAX_BODY, MAX_HEADERS, MAX_LINE,
};

/// Feeds raw bytes to the parser and returns the outcome.
fn parse(bytes: &[u8]) -> Result<Option<wfms_server::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes))
}

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z-]{1,12}"
}

fn header_value() -> impl Strategy<Value = String> {
    // Printable ASCII minus CR/LF; leading/trailing spaces are trimmed
    // by the parser so the generator avoids them.
    "[!-~]{0,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic: every input yields `Ok` or a
    /// classified `HttpError` (the test passing at all proves no
    /// panic; the match proves the error taxonomy is total).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse(&bytes) {
            Ok(_) => {}
            Err(e) => {
                let status = e.status();
                prop_assert!(
                    status == 400 || status == 413,
                    "unexpected status {status} for parse error"
                );
            }
        }
    }

    /// Garbage request lines (no two spaces, bad version, …) answer
    /// `400`, never a parsed request and never `413`.
    #[test]
    fn garbage_request_line_is_400(line in "[a-z ]{0,40}") {
        // Lines that happen to form `METHOD SP TARGET SP HTTP/1.x` are
        // excluded by construction (lowercase letters and spaces only,
        // so the version token can never match).
        let input = format!("{line}\r\n\r\n");
        match parse(input.as_bytes()) {
            Ok(None) => prop_assert!(line.is_empty(), "clean EOF only for empty input"),
            Ok(Some(req)) => prop_assert!(false, "parsed garbage as {:?}", req.method),
            Err(e) => prop_assert_eq!(e.status(), 400),
        }
    }

    /// A header line longer than `MAX_LINE` answers `413` regardless
    /// of the padding content.
    #[test]
    fn oversized_header_is_413(pad in MAX_LINE..MAX_LINE + 64) {
        let input = format!(
            "GET / HTTP/1.1\r\nx-big: {}\r\n\r\n",
            "v".repeat(pad)
        );
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// More header lines than `MAX_HEADERS` answers `413`.
    #[test]
    fn too_many_headers_is_413(extra in 1usize..8) {
        let mut input = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + extra {
            input.push_str(&format!("x-h{i}: v\r\n"));
        }
        input.push_str("\r\n");
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// A declared body length larger than `MAX_BODY` answers `413`
    /// without reading the body.
    #[test]
    fn oversized_body_is_413(over in 1usize..1024) {
        let input = format!(
            "POST /instances HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + over
        );
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// A body shorter than its declared `content-length` (connection
    /// cut mid-body) answers `400`, never a partial request.
    #[test]
    fn truncated_body_is_400(body in prop::collection::vec(any::<u8>(), 1..64), cut in 1usize..64) {
        let cut = cut.min(body.len());
        let mut input = format!(
            "POST /instances HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        input.extend_from_slice(&body[..body.len() - cut]);
        match parse(&input) {
            Err(e) => prop_assert_eq!(e.status(), 400),
            other => prop_assert!(false, "expected 400, got {:?}", other.map(|r| r.is_some())),
        }
    }

    /// Well-formed requests round-trip method, target, header values
    /// (names case-insensitively) and the exact body bytes.
    #[test]
    fn valid_request_roundtrips(
        name in token(),
        value in header_value(),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut input = format!(
            "POST /worklist/7/complete?person=ann HTTP/1.1\r\n{name}: {value}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        input.extend_from_slice(&body);
        let req = match parse(&input) {
            Ok(Some(req)) => req,
            other => return Err(TestCaseError::fail(format!("parse failed: {other:?}"))),
        };
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), "/worklist/7/complete");
        let person = req.query_param("person").unwrap();
        prop_assert_eq!(person.as_deref(), Some("ann"));
        // Header names are lowercased on read; values survive verbatim
        // modulo edge trimming (excluded by the generator).
        prop_assert_eq!(req.header(&name.to_ascii_lowercase()), Some(value.as_str()));
        prop_assert_eq!(req.body, body);
    }

    /// N concatenated requests fed to the incremental decoder in
    /// arbitrary chunk sizes parse to exactly N requests, each with
    /// its own body bytes intact, and leave no bytes behind.
    #[test]
    fn pipelined_streams_parse_without_byte_loss(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(
                format!(
                    "POST /instances?seq={i} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            stream.extend_from_slice(body);
        }
        let mut decoder = Decoder::new();
        let mut parsed = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(req) = decoder.next_request().map_err(|e| {
                TestCaseError::fail(format!("decode error: {e:?}"))
            })? {
                parsed.push(req);
            }
        }
        prop_assert_eq!(parsed.len(), bodies.len(), "request count");
        for (i, (req, body)) in parsed.iter().zip(&bodies).enumerate() {
            let seq = format!("{i}");
            let got = req.query_param("seq").unwrap();
            prop_assert_eq!(got.as_deref(), Some(seq.as_str()));
            prop_assert_eq!(&req.body, body, "body {i}");
        }
        prop_assert!(decoder.is_clean(), "no unconsumed bytes");
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// HTTP/1.0 defaults to close; HTTP/1.1 defaults to keep-alive;
    /// an explicit `connection` header wins in either version.
    #[test]
    fn http10_close_semantics(
        one_zero in any::<bool>(),
        conn in prop::option::of(prop_oneof!["keep-alive", "close", "Keep-Alive", "CLOSE"]),
    ) {
        let version = if one_zero { "HTTP/1.0" } else { "HTTP/1.1" };
        let header = conn
            .as_ref()
            .map(|v| format!("connection: {v}\r\n"))
            .unwrap_or_default();
        let input = format!("GET / {version}\r\n{header}\r\n");
        let req = match parse(input.as_bytes()) {
            Ok(Some(req)) => req,
            other => return Err(TestCaseError::fail(format!("parse failed: {other:?}"))),
        };
        prop_assert_eq!(
            req.version,
            if one_zero { Version::Http10 } else { Version::Http11 }
        );
        let expect_close = match conn.as_deref().map(str::to_ascii_lowercase) {
            Some(ref v) if v == "close" => true,
            Some(_) => false,
            None => one_zero,
        };
        prop_assert_eq!(req.wants_close(), expect_close);
    }

    /// Any UTF-8 query value survives a percent-encode → parse →
    /// `query_param` round trip, byte for byte.
    #[test]
    fn encoded_query_values_roundtrip(value in "\\PC{0,24}") {
        let mut encoded = String::new();
        for b in value.bytes() {
            if b.is_ascii_alphanumeric() {
                encoded.push(b as char);
            } else {
                encoded.push_str(&format!("%{b:02X}"));
            }
        }
        let input = format!("GET /worklist?person={encoded} HTTP/1.1\r\n\r\n");
        let req = match parse(input.as_bytes()) {
            Ok(Some(req)) => req,
            other => return Err(TestCaseError::fail(format!("parse failed: {other:?}"))),
        };
        let got = req.query_param("person").unwrap();
        prop_assert_eq!(got.as_deref(), Some(value.as_str()));
    }

    /// A `%` not followed by two hex digits answers `400` from
    /// `query_param`, never a silently mangled value.
    #[test]
    fn malformed_query_escape_is_400(
        prefix in "[a-z0-9]{0,8}",
        bad in prop_oneof!["%", "%[0-9a-f]", "%[g-z][0-9]", "%[0-9][g-z]", "%%"],
    ) {
        let input = format!("GET /worklist?p={prefix}{bad} HTTP/1.1\r\n\r\n");
        let req = match parse(input.as_bytes()) {
            Ok(Some(req)) => req,
            other => return Err(TestCaseError::fail(format!("parse failed: {other:?}"))),
        };
        match req.query_param("p") {
            Err(e) => prop_assert_eq!(e.status(), 400, "query {:?}", bad),
            Ok(v) => prop_assert!(false, "malformed escape {:?} decoded to {:?}", bad, v),
        }
    }

    /// `Content-Length` values with any non-digit byte — leading `+`,
    /// embedded whitespace, sign, hex — answer `400`, never parse.
    #[test]
    fn non_digit_content_length_is_400(
        value in prop_oneof![
            "\\+[0-9]{1,6}",
            "-[0-9]{1,6}",
            "[0-9]{1,3} [0-9]{1,3}",
            "0x[0-9a-f]{1,4}",
            "[0-9]{1,4}[a-z]",
        ],
    ) {
        let input = format!("POST / HTTP/1.1\r\ncontent-length: {value}\r\n\r\n");
        match parse(input.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 400, "value {:?}", value),
            other => prop_assert!(
                false,
                "content-length {:?} accepted: {:?}",
                value,
                other.map(|r| r.is_some())
            ),
        }
    }
}
