//! `navbench` — measures the two headline navigation numbers and
//! writes them to `BENCH_nav.json` (the artifact uploaded by CI):
//!
//! * **nav_compiled**: per-run navigation latency of the compiled
//!   engine vs. the string-keyed reference interpreter on a
//!   100-activity chain (templates registered once; the timed body is
//!   start + run-to-quiescence);
//! * **parallel_throughput**: instances/sec of `run_all` vs.
//!   `run_all_parallel(8)` on 1 000 saga-shaped instances;
//! * **observe_overhead**: the same 100-activity chain with the
//!   observability layer on (live metrics registry) vs. off — the
//!   overhead the `fmtm run --metrics-out` / `fmtm top` paths pay;
//! * **const_prune**: a constant-condition-heavy template run from
//!   its raw compiled form vs. the optimized form the analyzer-driven
//!   optimizer produces (plans decided, dead branches pruned) — the
//!   navigator win `wfms_engine::optimize` buys at registration time;
//! * **patterns**: the workflow-pattern gallery shapes
//!   (`examples/patterns/`: parallel split/sync, discriminator,
//!   2-of-3 quorum), reference vs. compiled — chain workloads miss
//!   the join bookkeeping these exercise;
//! * **submit_path**: µs per submission through the service runtime,
//!   at the shard-pool layer (group commit, no network), over a
//!   loopback HTTP/1.1 keep-alive connection request-by-request, and
//!   pipelined in bursts of 64 (the batch shares one group commit, so
//!   the wire cost amortizes); plus an open-loop `latency_curve` —
//!   latency-under-load percentiles at fixed offered rates, measured
//!   from each request's scheduled arrival.
//!
//! The host's core count is recorded alongside the numbers: the
//! scheduler can only show parallel speedup on multi-core hardware
//! (on a single core the worker threads just time-slice).
//!
//! ```sh
//! cargo run --release -p bench --bin navbench -- [--quick] [--out PATH]
//! ```

use bench::nav::{
    assert_all_finished, compiled_engine, const_heavy_process, engine_with_instances,
    observed_engine, pattern_workload, pure_saga_world, reference_engine, run_compiled_once,
    run_reference_once, saga_process, unoptimized_engine, PATTERN_WORKLOADS,
};
use bench::{chain_process, plain_world, time_us};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wfms_model::Container;
use wfms_server::{
    latency_curve, Http1Client, LoadOptions, PoolConfig, Server, ServerConfig, ShardPool,
    SubmitOutcome,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_nav.json".to_string());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (iters, chain_len, instances): (u32, usize, usize) = if quick {
        (15, 100, 200)
    } else {
        (50, 100, 1000)
    };

    // -- nav_compiled: 100-activity chain, register once, run many --
    let def = chain_process(chain_len, "ok");
    let w = plain_world(0);
    let mut reference = reference_engine(&w, &def);
    let t_ref = time_us(iters, || {
        run_reference_once(&mut reference, "chain");
    });
    let engine = compiled_engine(&w, &def);
    let t_compiled = time_us(iters, || {
        run_compiled_once(&engine, "chain");
    });
    let nav_speedup = t_ref / t_compiled;
    println!("nav_compiled ({chain_len}-activity chain, mean of {iters}):");
    println!("  reference  {t_ref:>10.1} µs/run");
    println!("  compiled   {t_compiled:>10.1} µs/run   ({nav_speedup:.2}x)");

    // -- observe_overhead: same chain, observability layer on --
    // Interleaved rounds with min-of-means: a single long mean absorbs
    // scheduler spikes on shared hosts and can swamp a sub-5% effect;
    // the per-round minimum is a robust floor for both engines.
    let observed = observed_engine(&w, &def);
    let rounds = if quick { 5 } else { 8 };
    let per_round = (iters / 3).max(5);
    let (mut t_off, mut t_on) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        t_off = t_off.min(time_us(per_round, || {
            run_compiled_once(&engine, "chain");
        }));
        t_on = t_on.min(time_us(per_round, || {
            run_compiled_once(&observed, "chain");
        }));
    }
    let overhead_pct = (t_on / t_off - 1.0) * 100.0;
    println!("observe_overhead (same chain, metrics registry live, best of {rounds} rounds):");
    println!("  metrics off {t_off:>9.1} µs/run");
    println!("  metrics on  {t_on:>9.1} µs/run   ({overhead_pct:+.1}%)");

    // -- const_prune: constant-heavy template, optimizer on vs off --
    // Same interleaved min-of-means discipline as observe_overhead.
    let (gates, dead_len) = if quick { (20, 4) } else { (40, 5) };
    let cdef = const_heavy_process(gates, dead_len);
    let (_, opt_stats) =
        wfms_engine::optimize::optimize(&wfms_engine::CompiledProcess::compile(cdef.clone()));
    let unopt = unoptimized_engine(&w, &cdef);
    let opt = compiled_engine(&w, &cdef);
    let (mut t_unopt, mut t_opt) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        t_unopt = t_unopt.min(time_us(per_round, || {
            run_compiled_once(&unopt, "const_heavy");
        }));
        t_opt = t_opt.min(time_us(per_round, || {
            run_compiled_once(&opt, "const_heavy");
        }));
    }
    let prune_speedup = t_unopt / t_opt;
    println!(
        "const_prune ({gates} gates x {dead_len} dead, {} plans fixed, \
         {} activities pruned, best of {rounds} rounds):",
        opt_stats.plans_fixed, opt_stats.dead_acts
    );
    println!("  unoptimized {t_unopt:>9.1} µs/run");
    println!("  optimized   {t_opt:>9.1} µs/run   ({prune_speedup:.2}x)");

    // -- patterns: the gallery shapes, reference vs compiled --
    // Tiny processes (4–10 activities), so many iterations per
    // measurement; what varies across them is the join bookkeeping
    // (AND/OR decisions, dead-path elimination of losing branches).
    let pattern_iters = iters * 4;
    let mut pattern_rows = Vec::new();
    println!("patterns (gallery shapes, mean of {pattern_iters}):");
    for name in PATTERN_WORKLOADS {
        let (pdef, pw) = pattern_workload(name);
        let mut reference = reference_engine(&pw, &pdef);
        let p_ref = time_us(pattern_iters, || {
            run_reference_once(&mut reference, &pdef.name);
        });
        let engine = compiled_engine(&pw, &pdef);
        let p_compiled = time_us(pattern_iters, || {
            run_compiled_once(&engine, &pdef.name);
        });
        let p_speedup = p_ref / p_compiled;
        println!(
            "  {name:<20} reference {p_ref:>6.1} µs/run   \
             compiled {p_compiled:>6.1} µs/run   ({p_speedup:.2}x)"
        );
        pattern_rows.push(format!(
            "    \"{name}\": {{\n      \"reference_us\": {p_ref:.1},\n      \
             \"compiled_us\": {p_compiled:.1},\n      \"speedup\": {p_speedup:.2}\n    }}"
        ));
    }
    let patterns_json = pattern_rows.join(",\n");

    // -- submit_path: service-runtime submissions, pool and wire --
    // One shard so the measurement is per-submit cost, not spread.
    // The pool path is start + navigate + group commit; the HTTP path
    // adds parse + serialize on a keep-alive loopback connection.
    let submit_iters = if quick { 200 } else { 1000 };
    let data_dir = std::env::temp_dir().join(format!("navbench-submit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let submit_def = chain_process(8, "ok");
    let mut pool_cfg = PoolConfig::new(&data_dir);
    pool_cfg.templates = vec![submit_def.clone()];
    // Group-commit batches as deep as the pipelining burst below, so
    // a full burst shares a single journal flush.
    pool_cfg.batch_max = 128;
    let provision = |_shard: usize| {
        let (fed, registry) = plain_world(0);
        (fed, registry)
    };
    let pool = ShardPool::open(
        pool_cfg,
        Arc::new(wfms_observe::Registry::new()),
        &provision,
    )
    .expect("pool opens");
    let t_pool = time_us(submit_iters, || {
        let outcome = pool.submit("chain", Container::empty());
        assert!(matches!(outcome, SubmitOutcome::Accepted { .. }));
    });
    let server = Server::start(Arc::new(pool), ServerConfig::new("chain")).expect("server starts");
    let url = server.local_addr().to_string();
    let mut client = Http1Client::new(&url);
    let t_http = time_us(submit_iters, || {
        let (code, _body) = client.request("POST", "/instances", Some("{}")).unwrap();
        assert_eq!(code, 201);
    });
    // Pipelined wire cost: bursts share the shard's group commit, so
    // the per-submit price amortizes parse + flush + wakeups across
    // the batch — the number the event-loop front end exists for.
    let burst = 128usize;
    let bursts = (submit_iters as usize / burst).max(4);
    let start = Instant::now();
    for _ in 0..bursts {
        let answers = client
            .pipelined("POST", "/instances", Some("{}"), burst)
            .expect("pipelined burst");
        assert_eq!(answers.len(), burst);
        for (code, _body) in &answers {
            assert_eq!(*code, 201);
        }
    }
    let t_http_pipelined = start.elapsed().as_secs_f64() * 1e6 / (bursts * burst) as f64;
    let pipelined_accept_per_sec = 1e6 / t_http_pipelined;
    // Latency under offered load: open-loop schedule per rate, so the
    // percentiles charge queueing delay to the server.
    let curve_rates: &[f64] = if quick {
        &[1000.0, 4000.0]
    } else {
        &[1000.0, 4000.0, 8000.0]
    };
    let per_rate = Duration::from_millis(if quick { 400 } else { 1000 });
    let mut curve_opts = LoadOptions::new(url.clone());
    curve_opts.connections = 2;
    let curve = latency_curve(&curve_opts, curve_rates, per_rate);
    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&data_dir);
    let wire_overhead = t_http / t_pool;
    println!("submit_path (8-step chain, 1 shard, mean of {submit_iters}):");
    println!("  pool       {t_pool:>10.1} µs/submit");
    println!("  http       {t_http:>10.1} µs/submit   ({wire_overhead:.2}x pool)");
    println!(
        "  pipelined  {t_http_pipelined:>10.1} µs/submit   \
         ({pipelined_accept_per_sec:.0} accepted/sec, bursts of {burst})"
    );
    let mut curve_rows = Vec::with_capacity(curve.len());
    for p in &curve {
        println!(
            "  open-loop  offered {:>6.0}/s  achieved {:>6.0}/s  \
             p50 {:>6}us p95 {:>6}us p99 {:>6}us  ({} errors)",
            p.offered_rps, p.achieved_rps, p.p50_us, p.p95_us, p.p99_us, p.errors
        );
        curve_rows.push(format!(
            "      {{\n        \"offered_rps\": {:.0},\n        \
             \"achieved_rps\": {:.0},\n        \"accepted\": {},\n        \
             \"errors\": {},\n        \"p50_us\": {},\n        \
             \"p95_us\": {},\n        \"p99_us\": {}\n      }}",
            p.offered_rps, p.achieved_rps, p.accepted, p.errors, p.p50_us, p.p95_us, p.p99_us
        ));
    }
    let curve_json = curve_rows.join(",\n");

    // -- parallel_throughput: saga-shaped instances, pure programs --
    let steps = 8;
    let saga = saga_process(steps);
    let runs = if quick { 3 } else { 5 };
    let throughput = |workers: usize| {
        let mut best = f64::MIN;
        for _ in 0..runs {
            let w = pure_saga_world(steps);
            let engine = engine_with_instances(&w, &saga, instances);
            let start = Instant::now();
            if workers == 1 {
                engine.run_all().unwrap();
            } else {
                engine.run_all_parallel(workers).unwrap();
            }
            let dt = start.elapsed().as_secs_f64();
            assert_all_finished(&engine);
            best = best.max(instances as f64 / dt);
        }
        best
    };
    let seq = throughput(1);
    let par8 = throughput(8);
    let par_speedup = par8 / seq;
    println!(
        "parallel_throughput ({instances} saga instances, {steps} steps, \
         best of {runs}, {cores} core(s)):"
    );
    println!("  sequential {seq:>10.0} instances/sec");
    println!("  8 workers  {par8:>10.0} instances/sec   ({par_speedup:.2}x)");

    // The workspace serde_json shim has no `json!` macro; the schema
    // is fixed, so emit it directly.
    let (plans_fixed, dead_acts) = (opt_stats.plans_fixed, opt_stats.dead_acts);
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"nav_compiled\": {{\n    \"chain_len\": {chain_len},\n    \
         \"reference_us\": {t_ref:.1},\n    \"compiled_us\": {t_compiled:.1},\n    \
         \"speedup\": {nav_speedup:.2}\n  }},\n  \
         \"observe_overhead\": {{\n    \"chain_len\": {chain_len},\n    \
         \"baseline_us\": {t_off:.1},\n    \"observed_us\": {t_on:.1},\n    \
         \"overhead_pct\": {overhead_pct:.1}\n  }},\n  \
         \"const_prune\": {{\n    \"gates\": {gates},\n    \"dead_len\": {dead_len},\n    \
         \"plans_fixed\": {plans_fixed},\n    \"dead_acts\": {dead_acts},\n    \
         \"unoptimized_us\": {t_unopt:.1},\n    \"optimized_us\": {t_opt:.1},\n    \
         \"speedup\": {prune_speedup:.2}\n  }},\n  \
         \"patterns\": {{\n{patterns_json}\n  }},\n  \
         \"submit_path\": {{\n    \"chain_len\": 8,\n    \"shards\": 1,\n    \
         \"pool_us\": {t_pool:.1},\n    \"http_us\": {t_http:.1},\n    \
         \"wire_overhead\": {wire_overhead:.2},\n    \
         \"http_pipelined_us\": {t_http_pipelined:.1},\n    \
         \"pipelined_accept_per_sec\": {pipelined_accept_per_sec:.0},\n    \
         \"latency_curve\": [\n{curve_json}\n    ]\n  }},\n  \
         \"parallel_throughput\": {{\n    \"instances\": {instances},\n    \
         \"saga_steps\": {steps},\n    \"sequential_per_sec\": {seq:.0},\n    \
         \"workers8_per_sec\": {par8:.0},\n    \"speedup\": {par_speedup:.2}\n  }},\n  \
         \"quick\": {quick}\n}}\n"
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
