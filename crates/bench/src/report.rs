//! `report` — regenerates every table in EXPERIMENTS.md.
//!
//! Unlike the Criterion benches (statistically rigorous, per-experiment),
//! this binary runs all experiments once with moderate iteration counts
//! and prints compact tables: the per-figure functional results (E-series)
//! and the quantitative sweeps (B-series).
//!
//! ```sh
//! cargo run --release -p bench --bin report
//! ```

use atm::fixtures;
use bench::*;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
use wfms_engine::{recover_from, Journal, OrgModel};

fn main() {
    println!("wftx experiment report (see EXPERIMENTS.md for interpretation)");
    println!("================================================================\n");
    e_series();
    b1_saga_scaling();
    b2_compensation();
    b3_flex_success();
    b4_dpe();
    b5_recovery();
    b6_worklist();
    b7_translator();
    b8_substrate();
    b9_ablation();
    b10_makespan();
    b11_global_atomicity();
    b12_simulation();
    b13_nav_compiled();
    b14_parallel_throughput();
}

/// E-series: functional reproduction of every figure / appendix trace.
fn e_series() {
    println!("-- E-series: figure reproductions (functional) --");
    // E1: meta-model + FDL round trip.
    let def = exotica::translate_saga(&fixtures::linear_saga("e1", 3)).unwrap();
    let fdl = wfms_fdl::emit(&def);
    let back = wfms_fdl::parse_and_validate(&fdl).unwrap();
    println!(
        "E1 figure1  meta-model + FDL round trip: {}",
        ok(back == def)
    );

    // E2: saga guarantee at every abort point (n = 6).
    let n = 6;
    let spec = fixtures::linear_saga("e2", n);
    let def = exotica::translate_saga(&spec).unwrap();
    let mut all = true;
    for j in 1..=n {
        let w = saga_world(n, 0);
        script(&w, &[(&format!("S{j}"), FailurePlan::Always)]);
        let committed = run_workflow(&w, &def);
        let mut okay = !committed;
        for i in 1..j {
            okay &= fixtures::marker(&w.0, &format!("S{i}")) == Some(-1);
        }
        for i in j..=n {
            okay &= fixtures::marker(&w.0, &format!("S{i}")) != Some(1);
        }
        all &= okay;
    }
    println!(
        "E2 figure2  saga translation, all abort points: {}",
        ok(all)
    );

    // E3: Figure 3 spec well-formed, three paths.
    let f3 = fixtures::figure3_spec();
    println!(
        "E3 figure3  flexible spec well-formed ({} steps, {} paths): {}",
        f3.steps.len(),
        f3.paths.len(),
        ok(atm::check_flex(&f3).is_empty())
    );

    // E4: translation equivalence over single permanent failures.
    let installer: exotica::verify::Installer<'_> = &fixtures::register_figure3_programs;
    let mut all = true;
    for fail in fixtures::FIGURE3_STEPS {
        if f3.class_of(fail).is_retriable() {
            continue;
        }
        let plans = vec![(fail.to_string(), FailurePlan::Always)];
        let r = exotica::compare_flex(&f3, installer, &plans, 1).unwrap();
        all &= r.equivalent();
    }
    println!(
        "E4 figure4  flex translation ≡ native (all failures): {}",
        ok(all)
    );

    // E5: pipeline stages.
    let spec_text = exotica::emit_spec(&exotica::ParsedSpec::Flexible(f3.clone()));
    let out = exotica::run_pipeline(&spec_text);
    println!(
        "E5 figure5  spec→FDL→template pipeline: {}",
        ok(out.is_ok())
    );

    println!("E6/E7 appendix traces: covered by `cargo test --test appendix_traces`\n");
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "FAILED"
    }
}

fn b9_ablation() {
    use txn_substrate::FailurePlan;
    println!("-- B9 (ablation): Figure 2 blocks vs flat construction (µs/run, mean of 200) --");
    println!(
        "{:>4} {:>14} {:>12} {:>16} {:>14}",
        "n", "blocks_ok", "flat_ok", "blocks_comp", "flat_comp"
    );
    for n in [4usize, 16, 64] {
        let spec = fixtures::linear_saga("s", n);
        let block = exotica::translate_saga(&spec).unwrap();
        let flat = exotica::translate_saga_flat(&spec).unwrap();
        let mid = format!("S{}", n / 2 + 1);
        let t_block = time_us(200, || {
            let w = saga_world(n, 0);
            assert!(run_workflow(&w, &block));
        });
        let t_flat = time_us(200, || {
            let w = saga_world(n, 0);
            assert!(run_workflow(&w, &flat));
        });
        let t_block_c = time_us(200, || {
            let w = saga_world(n, 0);
            script(&w, &[(&mid, FailurePlan::Always)]);
            assert!(!run_workflow(&w, &block));
        });
        let t_flat_c = time_us(200, || {
            let w = saga_world(n, 0);
            script(&w, &[(&mid, FailurePlan::Always)]);
            assert!(!run_workflow(&w, &flat));
        });
        println!(
            "{:>4} {:>14.1} {:>12.1} {:>16.1} {:>14.1}",
            n, t_block, t_flat, t_block_c, t_flat_c
        );
    }
    println!();
}

fn b10_makespan() {
    use txn_substrate::{KvProgram, Value};
    println!("-- B10: simulated business makespan of Figure 3 scenarios (virtual ticks) --");
    let durations: &[(&str, u64)] = &[
        ("T1", 10),
        ("T2", 20),
        ("T3", 40),
        ("T4", 20),
        ("T5", 30),
        ("T6", 30),
        ("T7", 50),
        ("T8", 20),
    ];
    let scenarios: &[(&str, Vec<(&str, FailurePlan)>)] = &[
        ("happy (p1)", vec![]),
        (
            "T8 fails (comp T6,T5; p2)",
            vec![("T8", FailurePlan::Always)],
        ),
        ("T4 fails (p3)", vec![("T4", FailurePlan::Always)]),
        (
            "T4 fails + T3 flaky x2",
            vec![("T4", FailurePlan::Always), ("T3", FailurePlan::FirstN(2))],
        ),
        ("T2 fails (abort)", vec![("T2", FailurePlan::Always)]),
    ];
    let def = exotica::translate_flex(&fixtures::figure3_spec()).unwrap();
    println!("{:<28} {:>9}", "scenario", "ticks");
    for (name, plans) in scenarios {
        let fed = MultiDatabase::new(0);
        fed.add_database("db");
        let registry = Arc::new(ProgramRegistry::new());
        for (step, d) in durations {
            registry.register(Arc::new(
                KvProgram::write(&format!("prog_{step}"), "db", step, 1i64)
                    .with_label(step)
                    .with_duration(*d),
            ));
            registry.register(Arc::new(
                KvProgram::write(&format!("comp_{step}"), "db", step, Value::Int(-1))
                    .with_duration(*d / 2),
            ));
        }
        for (label, plan) in plans {
            fed.injector().set_plan(label, plan.clone());
        }
        let engine = wfms_engine::Engine::new(Arc::clone(&fed), registry);
        engine.register(def.clone()).unwrap();
        let id = engine
            .start("figure3", wfms_model::Container::empty())
            .unwrap();
        engine.run_to_quiescence(id).unwrap();
        println!("{:<28} {:>9}", name, engine.clock().now());
    }
    println!();
}

fn b11_global_atomicity() {
    use atm::{GlobalTxn, SiteWrites, StepSpec, TwoPcExecutor, TwoPcOutcome};
    use txn_substrate::{KvProgram, Value};
    println!("-- B11: 2PC global transaction vs saga under per-site commit failures --");
    println!(
        "   (1000 trials/point, 3 sites; probability p of unilateral abort at each site's commit)"
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10} | {:>10} {:>12} {:>6}",
        "p", "2pc_ok", "2pc_abort", "2pc_TORN", "saga_ok", "saga_comp", "torn"
    );
    let sites = ["site_a", "site_b", "site_c"];
    for p10 in [0, 1, 2, 4] {
        let p = p10 as f64 / 10.0;
        let trials = 1000;
        let (mut ok2, mut ab2, mut torn2) = (0, 0, 0);
        let (mut oks, mut comps, mut torns) = (0, 0, 0);
        for t in 0..trials {
            // --- 2PC world ---
            let fed = MultiDatabase::new(5000 + t);
            for s in sites {
                fed.add_database(s);
                fed.injector()
                    .set_plan(&format!("{s}/commit"), FailurePlan::Probability { p });
            }
            let g = GlobalTxn {
                name: "g".into(),
                sites: sites
                    .iter()
                    .map(|s| SiteWrites {
                        db: s.to_string(),
                        writes: vec![("k".into(), Value::Int(1))],
                    })
                    .collect(),
            };
            match TwoPcExecutor::new(Arc::clone(&fed)).run(&g).outcome {
                TwoPcOutcome::Committed => ok2 += 1,
                TwoPcOutcome::Aborted { .. } | TwoPcOutcome::Blocked { .. } => ab2 += 1,
                TwoPcOutcome::Heuristic { .. } => torn2 += 1,
            }
            // --- saga world (same failure probability, at the step label) ---
            let fed = MultiDatabase::new(5000 + t);
            let registry = Arc::new(ProgramRegistry::new());
            let mut steps = Vec::new();
            for s in sites {
                fed.add_database(s);
                fed.injector().set_plan(s, FailurePlan::Probability { p });
                registry.register(Arc::new(
                    KvProgram::write(&format!("w_{s}"), s, "k", 1i64).with_label(s),
                ));
                registry.register(Arc::new(KvProgram::delete(&format!("u_{s}"), s, "k")));
                steps.push(StepSpec::compensatable(
                    s,
                    &format!("w_{s}"),
                    &format!("u_{s}"),
                ));
            }
            let exec = atm::SagaExecutor::new(Arc::clone(&fed), registry);
            let res = exec.run(&atm::SagaSpec::linear("s", steps)).unwrap();
            // Torn = some but not all keys present afterwards.
            let present = sites
                .iter()
                .filter(|s| fed.db(s).unwrap().peek("k").is_some())
                .count();
            if res.is_committed() {
                oks += 1;
            } else {
                comps += 1;
            }
            if present != 0 && present != sites.len() {
                torns += 1;
            }
        }
        println!(
            "{:>5.1} {:>10} {:>10} {:>10} | {:>10} {:>12} {:>6}",
            p, ok2, ab2, torn2, oks, comps, torns
        );
    }
    println!();
}

fn b12_simulation() {
    use txn_substrate::{KvProgram, Value};
    println!("-- B12: Monte-Carlo process simulation (Figure 3, durations as B10) --");
    println!("   (the §3.3 'simulation' WFMS feature: makespan distribution at failure prob p)");
    let durations: &[(&str, u64)] = &[
        ("T1", 10),
        ("T2", 20),
        ("T3", 40),
        ("T4", 20),
        ("T5", 30),
        ("T6", 30),
        ("T7", 50),
        ("T8", 20),
    ];
    let spec = fixtures::figure3_spec();
    let def = exotica::translate_flex(&spec).unwrap();
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "p", "commit%", "p50", "p90", "p99", "max"
    );
    for p10 in [1, 2, 3] {
        let p = p10 as f64 / 10.0;
        let trials = 400;
        let mut makespans = Vec::with_capacity(trials);
        let mut commits = 0;
        for t in 0..trials {
            let fed = MultiDatabase::new(9000 + t as u64);
            fed.add_database("db");
            let registry = Arc::new(ProgramRegistry::new());
            for (step, d) in durations {
                registry.register(Arc::new(
                    KvProgram::write(&format!("prog_{step}"), "db", step, 1i64)
                        .with_label(step)
                        .with_duration(*d),
                ));
                registry.register(Arc::new(
                    KvProgram::write(&format!("comp_{step}"), "db", step, Value::Int(-1))
                        .with_duration(*d / 2),
                ));
            }
            for st in &spec.steps {
                if !st.class.is_retriable() {
                    fed.injector()
                        .set_plan(&st.name, FailurePlan::Probability { p });
                }
            }
            let engine = wfms_engine::Engine::new(Arc::clone(&fed), registry);
            engine.register(def.clone()).unwrap();
            let id = engine
                .start("figure3", wfms_model::Container::empty())
                .unwrap();
            engine.run_to_quiescence(id).unwrap();
            if engine
                .output(id)
                .unwrap()
                .get("Committed")
                .and_then(|v| v.as_int())
                == Some(1)
            {
                commits += 1;
            }
            makespans.push(engine.clock().now());
        }
        makespans.sort_unstable();
        let q = |f: f64| makespans[((makespans.len() - 1) as f64 * f) as usize];
        println!(
            "{:>5.1} {:>8.1}% {:>7} {:>7} {:>7} {:>7}",
            p,
            commits as f64 / trials as f64 * 100.0,
            q(0.5),
            q(0.9),
            q(0.99),
            makespans.last().unwrap()
        );
    }
    println!();
}

fn b1_saga_scaling() {
    println!("-- B1: saga latency, native vs workflow (µs/run, mean of 200) --");
    println!(
        "{:>4} {:>12} {:>12} {:>7}",
        "n", "native", "workflow", "ratio"
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let spec = fixtures::linear_saga("s", n);
        let def = exotica::translate_saga(&spec).unwrap();
        let t_native = time_us(200, || {
            let w = saga_world(n, 0);
            assert!(run_saga_native(&w, &spec));
        });
        let t_wf = time_us(200, || {
            let w = saga_world(n, 0);
            assert!(run_workflow(&w, &def));
        });
        println!(
            "{:>4} {:>12.1} {:>12.1} {:>7.2}",
            n,
            t_native,
            t_wf,
            t_wf / t_native
        );
    }
    println!();
}

fn b2_compensation() {
    let n = 16;
    println!("-- B2: abort position vs cost (16-step saga, µs/run of 200) --");
    println!(
        "{:>9} {:>10} {:>12} {:>12}",
        "abort_at", "comps", "native", "workflow"
    );
    let spec = fixtures::linear_saga("s", n);
    let def = exotica::translate_saga(&spec).unwrap();
    for j in [1usize, 4, 8, 12, 16] {
        let label = format!("S{j}");
        let t_native = time_us(200, || {
            let w = saga_world(n, 0);
            script(&w, &[(&label, FailurePlan::Always)]);
            assert!(!run_saga_native(&w, &spec));
        });
        let t_wf = time_us(200, || {
            let w = saga_world(n, 0);
            script(&w, &[(&label, FailurePlan::Always)]);
            assert!(!run_workflow(&w, &def));
        });
        println!("{:>9} {:>10} {:>12.1} {:>12.1}", j, j - 1, t_native, t_wf);
    }
    println!();
}

fn b3_flex_success() {
    println!("-- B3: Figure 3 success rate vs per-step abort probability --");
    println!("   (1000 trials/point; native executor; pivots+compensatables fail with p)");
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>7} {:>8}",
        "p", "commit%", "via_p1", "via_p2", "via_p3", "aborted"
    );
    let spec = fixtures::figure3_spec();
    for p10 in 0..=8 {
        let p = p10 as f64 / 10.0;
        let mut via = [0u32; 3];
        let mut aborted = 0u32;
        let trials = 1000;
        for t in 0..trials {
            let fed = MultiDatabase::new(1000 + t as u64);
            let registry = Arc::new(ProgramRegistry::new());
            fixtures::register_figure3_programs(&fed, &registry);
            for step in &spec.steps {
                if !step.class.is_retriable() {
                    fed.injector()
                        .set_plan(&step.name, FailurePlan::Probability { p });
                }
            }
            let exec = atm::FlexExecutor::new(Arc::clone(&fed), registry);
            match exec.run(&spec).unwrap().outcome {
                atm::FlexOutcome::CommittedVia(k) => via[k] += 1,
                atm::FlexOutcome::Aborted => aborted += 1,
                atm::FlexOutcome::Stuck { .. } => aborted += 1,
            }
        }
        let commit = via.iter().sum::<u32>() as f64 / trials as f64 * 100.0;
        println!(
            "{:>5.1} {:>8.1}% {:>7} {:>7} {:>7} {:>8}",
            p, commit, via[0], via[1], via[2], aborted
        );
    }
    println!();
}

fn b4_dpe() {
    println!("-- B4: dead path elimination (µs/run, mean of 100) --");
    println!(
        "{:>9} {:>14} {:>14} {:>7}",
        "n", "eliminated", "executed", "ratio"
    );
    for n in [8usize, 32, 128, 512] {
        let dead = chain_process(n, "fail");
        let live = chain_process(n, "ok");
        let t_dead = time_us(100, || {
            let w = plain_world(0);
            run_process(&w, &dead);
        });
        let t_live = time_us(100, || {
            let w = plain_world(0);
            run_process(&w, &live);
        });
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>7.2}",
            n,
            t_dead,
            t_live,
            t_dead / t_live
        );
    }
    println!();
}

fn b5_recovery() {
    println!("-- B5: journal replay (µs, mean of 50) --");
    println!("{:>10} {:>12}", "events", "replay");
    for instances in [2usize, 8, 32, 128] {
        let n = 8;
        let spec = fixtures::linear_saga("s", n);
        let def = exotica::translate_saga(&spec).unwrap();
        let w = saga_world(n, 0);
        let engine = wfms_engine::Engine::new(Arc::clone(&w.0), Arc::clone(&w.1));
        engine.register(def.clone()).unwrap();
        for _ in 0..instances {
            let id = engine
                .start(&def.name, wfms_model::Container::empty())
                .unwrap();
            engine.run_to_quiescence(id).unwrap();
        }
        let events = engine.journal_events();
        let len = events.len();
        let t = time_us(50, || {
            let w2 = saga_world(n, 0);
            let _ = recover_from(
                Journal::new(),
                events.clone(),
                vec![def.clone()],
                OrgModel::new(),
                Arc::clone(&w2.0),
                Arc::clone(&w2.1),
            )
            .unwrap();
        });
        println!("{:>10} {:>12.1}", len, t);
    }
    // Checkpoint ablation: same 128-instance journal, compacted.
    {
        let n = 8;
        let spec = fixtures::linear_saga("s", n);
        let def = exotica::translate_saga(&spec).unwrap();
        let w = saga_world(n, 0);
        let engine = wfms_engine::Engine::new(Arc::clone(&w.0), Arc::clone(&w.1));
        engine.register(def.clone()).unwrap();
        for _ in 0..128 {
            let id = engine
                .start(&def.name, wfms_model::Container::empty())
                .unwrap();
            engine.run_to_quiescence(id).unwrap();
        }
        engine.checkpoint();
        let events = engine.journal_events();
        let len = events.len();
        let t = time_us(50, || {
            let w2 = saga_world(n, 0);
            let _ = recover_from(
                Journal::new(),
                events.clone(),
                vec![def.clone()],
                OrgModel::new(),
                Arc::clone(&w2.0),
                Arc::clone(&w2.1),
            )
            .unwrap();
        });
        println!(
            "{:>10} {:>12.1}   (after engine checkpoint: 128 instances -> {len} events)",
            len, t
        );
    }
    println!();
}

fn b6_worklist() {
    use wfms_engine::{Engine, EngineConfig};
    use wfms_model::{Activity, Container, ProcessBuilder};
    println!("-- B6: worklist offer+claim+execute (µs/item, mean of 200) --");
    println!("{:>7} {:>12}", "clerks", "cycle");
    for m in [1usize, 4, 16, 64] {
        let mut org = OrgModel::new().person("boss", &["manager"]);
        for i in 0..m {
            org = org.person_under(&format!("clerk{i}"), &["clerk"], "boss", 2);
        }
        let def = ProcessBuilder::new("manual")
            .activity(Activity::program("M", "ok").for_role("clerk"))
            .build()
            .unwrap();
        let t = time_us(200, || {
            let w = plain_world(0);
            let engine = Engine::with_config(
                Arc::clone(&w.0),
                Arc::clone(&w.1),
                EngineConfig {
                    org: org.clone(),
                    ..EngineConfig::default()
                },
            );
            engine.register(def.clone()).unwrap();
            let id = engine.start("manual", Container::empty()).unwrap();
            engine.run_to_quiescence(id).unwrap();
            let who = format!("clerk{}", m - 1);
            let item = engine.worklist(&who)[0].id;
            engine.execute_item(item, &who).unwrap();
        });
        println!("{:>7} {:>12.1}", m, t);
    }
    println!();
}

fn b7_translator() {
    println!("-- B7: Exotica/FMTM pre-processor (µs, mean of 300) --");
    println!(
        "{:>6} {:>11} {:>10} {:>11} {:>10}",
        "steps", "translate", "emit", "import", "fdl_bytes"
    );
    for n in [4usize, 16, 64] {
        let spec = fixtures::linear_saga("s", n);
        let t_tr = time_us(300, || {
            exotica::translate_saga(&spec).unwrap();
        });
        let def = exotica::translate_saga(&spec).unwrap();
        let t_emit = time_us(300, || {
            wfms_fdl::emit(&def);
        });
        let fdl = wfms_fdl::emit(&def);
        let t_imp = time_us(300, || {
            wfms_fdl::parse_and_validate(&fdl).unwrap();
        });
        println!(
            "{:>6} {:>11.1} {:>10.1} {:>11.1} {:>10}",
            n,
            t_tr,
            t_emit,
            t_imp,
            fdl.len()
        );
    }
    let f3 = fixtures::figure3_spec();
    let t = time_us(300, || {
        exotica::translate_flex(&f3).unwrap();
    });
    println!("figure3 flexible translation: {t:.1} µs\n");
}

fn b13_nav_compiled() {
    use bench::nav::{compiled_engine, reference_engine, run_compiled_once, run_reference_once};
    println!("-- B13: compiled navigator vs reference interpreter (µs/run, mean of 50) --");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "n", "reference", "compiled", "speedup"
    );
    for n in [25usize, 100, 400] {
        let def = chain_process(n, "ok");
        let w = plain_world(0);
        let mut reference = reference_engine(&w, &def);
        let t_ref = time_us(50, || {
            run_reference_once(&mut reference, "chain");
        });
        let engine = compiled_engine(&w, &def);
        let t_cmp = time_us(50, || {
            run_compiled_once(&engine, "chain");
        });
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8.2}",
            n,
            t_ref,
            t_cmp,
            t_ref / t_cmp
        );
    }
    println!();
}

fn b14_parallel_throughput() {
    use bench::nav::{assert_all_finished, engine_with_instances, pure_saga_world, saga_process};
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "-- B14: multi-instance scheduler (1000 saga instances, 8 steps, best of 3, \
         {cores} core(s)) --"
    );
    println!("{:>8} {:>14} {:>8}", "workers", "instances/s", "speedup");
    let def = saga_process(8);
    let mut base = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let mut best = f64::MIN;
        for _ in 0..3 {
            let w = pure_saga_world(8);
            let engine = engine_with_instances(&w, &def, 1000);
            let start = std::time::Instant::now();
            if workers == 1 {
                engine.run_all().unwrap();
            } else {
                engine.run_all_parallel(workers).unwrap();
            }
            let dt = start.elapsed().as_secs_f64();
            assert_all_finished(&engine);
            best = best.max(1000.0 / dt);
        }
        if workers == 1 {
            base = best;
        }
        println!("{:>8} {:>14.0} {:>8.2}", workers, best, best / base);
    }
    println!();
}

fn b8_substrate() {
    use txn_substrate::{Database, DbConfig};
    println!("-- B8: substrate 2PL (increments on 4 hot keys) --");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "threads", "txns", "txn/s", "deadlocks"
    );
    for threads in [1usize, 2, 4, 8] {
        let db = Arc::new(Database::new(DbConfig::named("d")));
        let per = 5_000usize;
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..per {
                        let key = format!("hot{}", i % 4);
                        loop {
                            let mut t = db.begin();
                            let cur = match t.get(&key) {
                                Ok(v) => v.and_then(|v| v.as_int()).unwrap_or(0),
                                Err(_) => continue,
                            };
                            if t.put(&key, cur + 1).is_err() {
                                continue;
                            }
                            if t.commit().is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let dt = start.elapsed().as_secs_f64();
        let total = per * threads;
        println!(
            "{:>8} {:>12} {:>12.0} {:>10}",
            threads,
            total,
            total as f64 / dt,
            db.stats().deadlock_aborts
        );
    }
    println!();
}
