//! Shared workloads for the navigation benchmarks (B13 `nav_compiled`
//! and B14 `parallel_throughput`): a long chain process for the
//! compiled-vs-reference comparison and a pure-program saga shape for
//! the multi-instance scheduler.

use crate::World;
use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_engine::{CompiledProcess, Engine, EngineConfig, InstanceStatus, Observer, RefEngine};
use wfms_model::{Container, ProcessBuilder, ProcessDefinition};

/// The saga-translated process used by the scheduler benchmarks:
/// identical control shape to the real translated saga, but backed by
/// pure programs (see [`pure_saga_world`]).
pub fn saga_process(n: usize) -> ProcessDefinition {
    exotica::translate_saga(&fixtures::linear_saga("s", n)).expect("saga translates")
}

/// A world where every `do_Si` / `undo_Si` program is a pure function
/// (commits unconditionally, touches no database keys). The real saga
/// fixtures write shared keys through 2PL, which would serialize
/// concurrent instances and measure the lock manager instead of the
/// scheduler; pure programs keep instances independent so the
/// benchmark isolates navigation + scheduling cost.
pub fn pure_saga_world(n: usize) -> World {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    for i in 1..=n {
        registry.register_fn(&format!("do_S{i}"), |_| ProgramOutcome::committed());
        registry.register_fn(&format!("undo_S{i}"), |_| ProgramOutcome::committed());
    }
    (fed, registry)
}

/// A reference interpreter (the string-keyed definition-walking
/// navigator kept as an executable specification) with `def`
/// registered. Registration happens once so per-run timing measures
/// navigation, not setup — mirror of [`compiled_engine`].
pub fn reference_engine(world: &World, def: &ProcessDefinition) -> RefEngine {
    let mut reference = RefEngine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    reference.register(def.clone());
    reference
}

/// A compiled engine with `def` registered (compiled at registration);
/// per-run timing then measures the indexed navigator alone.
pub fn compiled_engine(world: &World, def: &ProcessDefinition) -> Engine {
    let engine = Engine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    engine.register(def.clone()).expect("validated");
    engine
}

/// Starts one instance on the reference interpreter and drives it to
/// quiescence (the timed body of the `nav_compiled` baseline).
pub fn run_reference_once(reference: &mut RefEngine, process: &str) -> InstanceStatus {
    let id = reference.start(process, Container::empty());
    reference.run_to_quiescence(id)
}

/// Starts one instance on the compiled engine and drives it to
/// quiescence (the timed body of the `nav_compiled` measurement).
pub fn run_compiled_once(engine: &Engine, process: &str) -> InstanceStatus {
    let id = engine
        .start(process, Container::empty())
        .expect("template exists");
    engine.run_to_quiescence(id).expect("no step limit")
}

/// Like [`compiled_engine`], but with the observability layer turned
/// on (live metrics registry + trace sink). The `observe_overhead`
/// benchmark compares this against the default engine, whose observer
/// hooks collapse to a single branch on a disabled flag.
pub fn observed_engine(world: &World, def: &ProcessDefinition) -> Engine {
    let engine = Engine::with_config(
        Arc::clone(&world.0),
        Arc::clone(&world.1),
        EngineConfig {
            observer: Some(Arc::new(Observer::enabled())),
            ..EngineConfig::default()
        },
    );
    engine.register(def.clone()).expect("validated");
    engine
}

/// A constant-condition-heavy process for the `const_prune`
/// benchmark: a live chain of `gates` activities, each with an exit
/// condition `RC = 1` that pins the return code for everything
/// downstream. The connector to the next gate tests `RC = 1`
/// (propagation decides it true) and each gate also guards a
/// `dead_len` chain of activities behind `RC = 0` (decided false).
/// Syntactically every condition is environment-dependent — compile
/// time cannot fold any of them — but the optimizer's
/// condition-propagation pass decides every plan and prunes every
/// dead branch, so optimized navigation walks just the live chain
/// while the unoptimized template evaluates each condition and
/// dead-path eliminates the false branches instance by instance.
pub fn const_heavy_process(gates: usize, dead_len: usize) -> ProcessDefinition {
    use wfms_model::Activity;
    let mut b = ProcessBuilder::new("const_heavy");
    for g in 0..gates {
        b = b.activity(Activity::program(&format!("G{g}"), "ok").with_exit("RC = 1"));
    }
    for g in 1..gates {
        b = b.connect_when(&format!("G{}", g - 1), &format!("G{g}"), "RC = 1");
    }
    for g in 0..gates {
        for d in 0..dead_len {
            b = b.program(&format!("D{g}_{d}"), "ok");
        }
        b = b.connect_when(&format!("G{g}"), &format!("D{g}_0"), "RC = 0");
        for d in 1..dead_len {
            b = b.connect(&format!("D{g}_{}", d - 1), &format!("D{g}_{d}"));
        }
    }
    b.build().expect("const_heavy validates")
}

/// Like [`compiled_engine`], but registers the raw compiled template
/// *without* running the optimizer — the baseline the `const_prune`
/// benchmark compares the analysis-driven optimization against.
pub fn unoptimized_engine(world: &World, def: &ProcessDefinition) -> Engine {
    let engine = Engine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    let tpl = CompiledProcess::compile(def.clone());
    engine.register_compiled(Arc::new(tpl));
    engine
}

/// The workflow-pattern gallery shapes benchmarked by `navbench`'s
/// `patterns` section: a parallel split meeting at an AND-join, a
/// discriminator (OR-join race) and a composed 2-of-3 quorum. Chain
/// workloads exercise the sequential fast path; these exercise the
/// join bookkeeping (connector columns, AND/OR decisions, dead-path
/// elimination of the losing quorum pairs).
pub const PATTERN_WORKLOADS: &[&str] = &["parallel_split_sync", "discriminator", "n_of_m"];

/// Loads `examples/patterns/<name>.fdl` through the same import →
/// analyze route `fmtm run` takes and provisions a world whose
/// programs all commit — so per-run timing measures navigation of the
/// pattern's join structure, not program work.
pub fn pattern_workload(name: &str) -> (ProcessDefinition, World) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/patterns")
        .join(format!("{name}.fdl"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let (process, diags) =
        exotica::import_and_analyze(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(diags.is_empty(), "{name}: {diags:?}");
    let steps = exotica::steps_of_process(&process);
    let world = exotica::provision(&steps, 0, &[]);
    (process, world)
}

/// A fresh engine over `world` with `def` registered and `m`
/// instances started, ready for `run_all` / `run_all_parallel`.
pub fn engine_with_instances(world: &World, def: &ProcessDefinition, m: usize) -> Engine {
    let engine = Engine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    engine.register(def.clone()).expect("validated");
    for _ in 0..m {
        engine
            .start(&def.name, Container::empty())
            .expect("template exists");
    }
    engine
}

/// Asserts that every instance of `engine` finished.
pub fn assert_all_finished(engine: &Engine) {
    for (_, _, status) in engine.instances() {
        assert_eq!(status, InstanceStatus::Finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_process;

    #[test]
    fn reference_and_compiled_agree_on_chain() {
        let def = chain_process(20, "ok");
        let w = crate::plain_world(0);
        let mut reference = reference_engine(&w, &def);
        assert_eq!(
            run_reference_once(&mut reference, "chain"),
            InstanceStatus::Finished
        );
        let engine = compiled_engine(&w, &def);
        assert_eq!(
            run_compiled_once(&engine, "chain"),
            InstanceStatus::Finished
        );
    }

    #[test]
    fn observed_engine_records_latencies() {
        let def = chain_process(10, "ok");
        let w = crate::plain_world(0);
        let engine = observed_engine(&w, &def);
        assert_eq!(
            run_compiled_once(&engine, "chain"),
            InstanceStatus::Finished
        );
        let m = engine.metrics();
        assert!(m.activities.values().any(|s| s.count > 0));
    }

    #[test]
    fn const_heavy_runs_identically_optimized_or_not() {
        let def = const_heavy_process(6, 3);
        let w = crate::plain_world(0);
        // The optimizer has real work to do on this shape…
        let (_, stats) = wfms_engine::optimize::optimize(&CompiledProcess::compile(def.clone()));
        assert!(stats.plans_fixed > 0, "constant plans should be decided");
        assert_eq!(stats.dead_acts, 6 * 3, "every dead-branch activity pruned");
        // …and both templates drive an instance to the same end state.
        let unopt = unoptimized_engine(&w, &def);
        assert_eq!(
            run_compiled_once(&unopt, "const_heavy"),
            InstanceStatus::Finished
        );
        let opt = compiled_engine(&w, &def);
        assert_eq!(
            run_compiled_once(&opt, "const_heavy"),
            InstanceStatus::Finished
        );
    }

    #[test]
    fn pattern_workloads_run_on_both_navigators() {
        for name in PATTERN_WORKLOADS {
            let (def, w) = pattern_workload(name);
            let mut reference = reference_engine(&w, &def);
            assert_eq!(
                run_reference_once(&mut reference, &def.name),
                InstanceStatus::Finished,
                "{name} on the reference interpreter"
            );
            let engine = compiled_engine(&w, &def);
            assert_eq!(
                run_compiled_once(&engine, &def.name),
                InstanceStatus::Finished,
                "{name} on the compiled engine"
            );
        }
    }

    #[test]
    fn pure_saga_finishes_in_parallel() {
        let def = saga_process(6);
        let w = pure_saga_world(6);
        let engine = engine_with_instances(&w, &def, 32);
        engine.run_all_parallel(4).unwrap();
        assert_all_finished(&engine);
    }
}
