//! Shared workload builders for the benchmark harness (one Criterion
//! bench per experiment in EXPERIMENTS.md, plus the `report` binary
//! that prints the per-figure tables).

pub mod nav;

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry};
use wfms_engine::{Engine, InstanceStatus};
use wfms_model::{Container, ProcessBuilder, ProcessDefinition};

/// A provisioned world: federation + program registry.
pub type World = (Arc<MultiDatabase>, Arc<ProgramRegistry>);

/// A world with the saga fixture programs for `n` steps installed.
pub fn saga_world(n: usize, seed: u64) -> World {
    let fed = MultiDatabase::new(seed);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_saga_programs(&fed, &registry, n);
    (fed, registry)
}

/// A world with the Figure 3 programs installed.
pub fn figure3_world(seed: u64) -> World {
    let fed = MultiDatabase::new(seed);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_figure3_programs(&fed, &registry);
    (fed, registry)
}

/// Applies failure plans to a world.
pub fn script(world: &World, plans: &[(&str, FailurePlan)]) {
    for (label, plan) in plans {
        world.0.injector().set_plan(label, plan.clone());
    }
}

/// Runs the native saga executor once; returns true iff committed.
pub fn run_saga_native(world: &World, spec: &atm::SagaSpec) -> bool {
    let exec = atm::SagaExecutor::new(Arc::clone(&world.0), Arc::clone(&world.1));
    exec.run(spec).expect("well-formed").is_committed()
}

/// Runs the native flexible executor once; returns true iff committed.
pub fn run_flex_native(world: &World, spec: &atm::FlexSpec) -> bool {
    let exec = atm::FlexExecutor::new(Arc::clone(&world.0), Arc::clone(&world.1));
    exec.run(spec).expect("well-formed").is_committed()
}

/// Runs a translated process on a fresh engine over `world`; returns
/// true iff the process output reports `Committed = 1`.
pub fn run_workflow(world: &World, def: &ProcessDefinition) -> bool {
    let engine = Engine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    engine.register(def.clone()).expect("validated");
    let id = engine
        .start(&def.name, Container::empty())
        .expect("template exists");
    let status = engine.run_to_quiescence(id).expect("no step limit");
    assert_eq!(status, InstanceStatus::Finished);
    engine
        .output(id)
        .expect("instance exists")
        .get("Committed")
        .and_then(|v| v.as_int())
        == Some(1)
}

/// Runs a process that does not report `Committed` (plain workloads);
/// returns the engine for inspection.
pub fn run_process(world: &World, def: &ProcessDefinition) -> Engine {
    let engine = Engine::new(Arc::clone(&world.0), Arc::clone(&world.1));
    engine.register(def.clone()).expect("validated");
    let id = engine
        .start(&def.name, Container::empty())
        .expect("template exists");
    engine.run_to_quiescence(id).expect("no step limit");
    engine
}

/// A linear chain process of `n` activities where the first activity's
/// program is `first_prog` and the rest run `ok`; used by the dead
/// path elimination benchmark (a failing head kills the whole chain).
pub fn chain_process(n: usize, first_prog: &str) -> ProcessDefinition {
    let mut b = ProcessBuilder::new("chain");
    for i in 0..n {
        let prog = if i == 0 { first_prog } else { "ok" };
        b = b.program(&format!("A{i}"), prog);
    }
    for i in 1..n {
        b = b.connect_when(&format!("A{}", i - 1), &format!("A{i}"), "RC = 1");
    }
    b.build().expect("chain validates")
}

/// A fan-out/fan-in diamond: one head, `width` parallel branches of
/// `depth` activities each, one AND-join tail.
pub fn diamond_process(width: usize, depth: usize, head_prog: &str) -> ProcessDefinition {
    let mut b = ProcessBuilder::new("diamond").program("Head", head_prog);
    for w in 0..width {
        for d in 0..depth {
            b = b.program(&format!("B{w}_{d}"), "ok");
        }
        b = b.connect_when("Head", &format!("B{w}_0"), "RC = 1");
        for d in 1..depth {
            b = b.connect_when(&format!("B{w}_{}", d - 1), &format!("B{w}_{d}"), "RC = 1");
        }
    }
    b = b.program("Tail", "ok");
    for w in 0..width {
        b = b.connect_when(&format!("B{w}_{}", depth - 1), "Tail", "RC = 1");
    }
    b.build().expect("diamond validates")
}

/// A world with `ok` (always commits) and `fail` (always aborts)
/// programs, backed by one database.
pub fn plain_world(seed: u64) -> World {
    let fed = MultiDatabase::new(seed);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| txn_substrate::ProgramOutcome::committed());
    registry.register_fn("fail", |_| {
        txn_substrate::ProgramOutcome::aborted("scripted")
    });
    registry.register(Arc::new(KvProgram::write("write_one", "db", "k", 1i64)));
    (fed, registry)
}

/// Simple monotonic-time measurement helper: runs `f` `iters` times
/// and returns the per-iteration mean in microseconds.
pub fn time_us(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saga_workloads_run() {
        let spec = fixtures::linear_saga("s", 4);
        let def = exotica::translate_saga(&spec).unwrap();
        let w = saga_world(4, 0);
        assert!(run_saga_native(&w, &spec));
        let w2 = saga_world(4, 0);
        assert!(run_workflow(&w2, &def));
    }

    #[test]
    fn chain_and_diamond_build() {
        let w = plain_world(0);
        let chain = chain_process(16, "fail");
        let engine = run_process(&w, &chain);
        let s = wfms_engine::audit::summarize(&engine.journal_events(), wfms_engine::InstanceId(1));
        assert_eq!(s.eliminated, 15, "whole chain dead-path-eliminated");

        let d = diamond_process(3, 2, "ok");
        let w2 = plain_world(0);
        let engine2 = run_process(&w2, &d);
        let s2 =
            wfms_engine::audit::summarize(&engine2.journal_events(), wfms_engine::InstanceId(1));
        assert_eq!(s2.executions, 3 * 2 + 2);
        assert_eq!(s2.eliminated, 0);
    }

    #[test]
    fn figure3_workloads_run() {
        let spec = fixtures::figure3_spec();
        let def = exotica::translate_flex(&spec).unwrap();
        let w = figure3_world(0);
        script(&w, &[("T8", FailurePlan::Always)]);
        assert!(run_flex_native(&w, &spec));
        let w2 = figure3_world(0);
        script(&w2, &[("T8", FailurePlan::Always)]);
        assert!(run_workflow(&w2, &def));
    }
}
