//! Experiment B3 — flexible-transaction path selection: the Figure 3
//! transaction under the paper's failure scenarios, native vs
//! workflow-hosted.
//!
//! Shape claim: deeper fallbacks (more compensation + retries) cost
//! more; the workflow adds a constant navigation factor; the relative
//! ordering of scenarios is identical in both implementations.

use bench::{figure3_world, run_flex_native, run_workflow, script};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txn_substrate::FailurePlan;

fn flex_paths(c: &mut Criterion) {
    let spec = atm::fixtures::figure3_spec();
    let def = exotica::translate_flex(&spec).unwrap();
    let scenarios: &[(&str, Vec<(&str, FailurePlan)>)] = &[
        ("p1_happy", vec![]),
        ("p2_after_t8", vec![("T8", FailurePlan::Always)]),
        ("p3_after_t4", vec![("T4", FailurePlan::Always)]),
        ("abort_at_t2", vec![("T2", FailurePlan::Always)]),
    ];
    let mut group = c.benchmark_group("flex_paths");
    group.sample_size(30);
    for (name, plans) in scenarios {
        group.bench_with_input(BenchmarkId::new("native", name), name, |b, _| {
            b.iter(|| {
                let w = figure3_world(0);
                script(&w, plans);
                let _ = run_flex_native(&w, &spec);
            })
        });
        group.bench_with_input(BenchmarkId::new("workflow", name), name, |b, _| {
            b.iter(|| {
                let w = figure3_world(0);
                script(&w, plans);
                let _ = run_workflow(&w, &def);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, flex_paths);
criterion_main!(benches);
