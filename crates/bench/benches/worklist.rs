//! Experiment B6 — worklists: offer/claim/execute throughput as the
//! number of eligible persons grows (the §3.3 load-balancing
//! mechanism: one claim removes the item from every other worklist).
//!
//! Shape claim: claims are O(1)-ish in the store; worklist *views*
//! scale with the number of open items; end-to-end manual-step
//! throughput is dominated by navigation, not by the worklist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wfms_engine::{Engine, EngineConfig, OrgModel};
use wfms_model::{Activity, Container, ProcessBuilder};

fn org_with_clerks(m: usize) -> OrgModel {
    let mut org = OrgModel::new().person("boss", &["manager"]);
    for i in 0..m {
        org = org.person_under(&format!("clerk{i}"), &["clerk"], "boss", 2);
    }
    org
}

fn manual_process() -> wfms_model::ProcessDefinition {
    ProcessBuilder::new("manual")
        .activity(Activity::program("M", "ok").for_role("clerk"))
        .build()
        .unwrap()
}

fn worklist(c: &mut Criterion) {
    let mut group = c.benchmark_group("worklist");
    group.sample_size(30);
    for m in [1usize, 4, 16, 64] {
        let org = org_with_clerks(m);
        let def = manual_process();
        group.bench_with_input(BenchmarkId::new("offer_claim_execute", m), &m, |b, &m| {
            b.iter(|| {
                let w = bench::plain_world(0);
                let engine = Engine::with_config(
                    Arc::clone(&w.0),
                    Arc::clone(&w.1),
                    EngineConfig {
                        org: org.clone(),
                        ..EngineConfig::default()
                    },
                );
                engine.register(def.clone()).unwrap();
                let id = engine.start("manual", Container::empty()).unwrap();
                engine.run_to_quiescence(id).unwrap();
                // Everybody sees it; the last clerk claims it.
                let who = format!("clerk{}", m - 1);
                let item = engine.worklist(&who)[0].id;
                engine.execute_item(item, &who).unwrap();
            })
        });
        // Worklist view cost with k open items.
        group.bench_with_input(BenchmarkId::new("view_100_items", m), &m, |b, _| {
            let w = bench::plain_world(0);
            let engine = Engine::with_config(
                Arc::clone(&w.0),
                Arc::clone(&w.1),
                EngineConfig {
                    org: org.clone(),
                    ..EngineConfig::default()
                },
            );
            engine.register(def.clone()).unwrap();
            for _ in 0..100 {
                let id = engine.start("manual", Container::empty()).unwrap();
                engine.run_to_quiescence(id).unwrap();
            }
            b.iter(|| {
                assert_eq!(engine.worklist("clerk0").len(), 100);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, worklist);
criterion_main!(benches);
