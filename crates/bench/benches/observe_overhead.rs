//! Experiment B15 — observability overhead: the compiled navigator on
//! a 100-activity chain with the observability layer off (default
//! engine: every probe is one branch on a disabled flag) vs. on (live
//! metrics registry — atomic counters, log-linear latency histograms —
//! plus the trace sink at its no-op default).
//!
//! Shape claim: "on" stays within 5% of "off" at 100 activities, and
//! "off" is indistinguishable from the pre-observability engine — the
//! disabled path does no atomic work at all. The same two data points
//! are emitted into `BENCH_nav.json` by the `navbench` binary so CI
//! can track the overhead without running Criterion.

use bench::nav::{compiled_engine, observed_engine, run_compiled_once};
use bench::{chain_process, plain_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn observe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe_overhead");
    group.sample_size(20);
    for n in [25usize, 100, 400] {
        let def = chain_process(n, "ok");
        let w = plain_world(0);
        let off = compiled_engine(&w, &def);
        group.bench_with_input(BenchmarkId::new("off", n), &n, |b, _| {
            b.iter(|| run_compiled_once(&off, "chain"))
        });
        let on = observed_engine(&w, &def);
        group.bench_with_input(BenchmarkId::new("on", n), &n, |b, _| {
            b.iter(|| run_compiled_once(&on, "chain"))
        });
    }
    group.finish();
}

criterion_group!(benches, observe_overhead);
criterion_main!(benches);
