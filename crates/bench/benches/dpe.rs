//! Experiment B4 — dead path elimination cost: a failing head activity
//! retires a chain of n waiting activities (and, in the diamond
//! variant, width×depth parallel branches plus the AND-join tail).
//!
//! Shape claim: DPE is linear in the number of eliminated activities
//! and far cheaper than executing them.

use bench::{chain_process, diamond_process, plain_world, run_process};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn dpe(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpe");
    group.sample_size(25);
    for n in [8usize, 32, 128, 512] {
        let dead_chain = chain_process(n, "fail");
        let live_chain = chain_process(n, "ok");
        group.bench_with_input(BenchmarkId::new("chain_eliminated", n), &n, |b, _| {
            b.iter(|| {
                let w = plain_world(0);
                run_process(&w, &dead_chain);
            })
        });
        group.bench_with_input(BenchmarkId::new("chain_executed", n), &n, |b, _| {
            b.iter(|| {
                let w = plain_world(0);
                run_process(&w, &live_chain);
            })
        });
    }
    for width in [4usize, 16, 64] {
        let dead = diamond_process(width, 4, "fail");
        group.bench_with_input(
            BenchmarkId::new("diamond_eliminated_w", width),
            &width,
            |b, _| {
                b.iter(|| {
                    let w = plain_world(0);
                    run_process(&w, &dead);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, dpe);
criterion_main!(benches);
