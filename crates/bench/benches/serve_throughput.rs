//! Experiment B15 — service-runtime throughput: submissions through
//! the sharded instance manager, at the pool layer (group-commit
//! batching, no network) and over the HTTP loopback (full wire
//! protocol, keep-alive connection).
//!
//! Shape claim: the pool path amortises one journal flush over a
//! batch of starts, so per-submit cost stays well under a synchronous
//! per-instance flush; the HTTP path adds parse + serialize overhead
//! but stays in the same order of magnitude on loopback.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry};
use wfms_model::{Container, ProcessBuilder, ProcessDefinition};
use wfms_observe::Registry;
use wfms_server::{Http1Client, PoolConfig, Server, ServerConfig, ShardPool, SubmitOutcome};

fn provision(_shard: usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("ok", |_| ProgramOutcome::committed());
    (fed, registry)
}

fn auto_process() -> ProcessDefinition {
    ProcessBuilder::new("auto")
        .program("A", "ok")
        .program("B", "ok")
        .connect_when("A", "B", "RC = 1")
        .build()
        .unwrap()
}

fn open_pool(dir: &std::path::Path, shards: usize) -> ShardPool {
    let mut cfg = PoolConfig::new(dir);
    cfg.shards = shards;
    cfg.templates = vec![auto_process()];
    ShardPool::open(cfg, Arc::new(Registry::new()), &provision).unwrap()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wfms-serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);

    // Pool layer: start + run-to-quiescence + group-commit, no wire.
    for shards in [1usize, 2, 4] {
        let dir = fresh_dir(&format!("pool{shards}"));
        let pool = open_pool(&dir, shards);
        group.bench_with_input(BenchmarkId::new("pool_submit", shards), &shards, |b, _| {
            b.iter(|| {
                let outcome = pool.submit("auto", Container::empty());
                assert!(matches!(outcome, SubmitOutcome::Accepted { .. }));
            })
        });
        pool.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Wire layer: the same submission over an HTTP/1.1 keep-alive
    // loopback connection, JSON both ways.
    let dir = fresh_dir("http");
    let pool = open_pool(&dir, 1);
    let server = Server::start(Arc::new(pool), ServerConfig::new("auto")).unwrap();
    let url = server.local_addr().to_string();
    let mut client = Http1Client::new(&url);
    group.bench_function("http_submit", |b| {
        b.iter(|| {
            let (code, _body) = client.request("POST", "/instances", Some("{}")).unwrap();
            assert_eq!(code, 201);
        })
    });
    server.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
