//! Experiment B8 — substrate validation: local-database transaction
//! throughput under rising contention, and the deadlock-abort rate.
//!
//! Shape claim: single-thread throughput is flat; with more threads on
//! few keys, throughput saturates and deadlock aborts appear — the
//! unilateral aborts the flexible-transaction model is built around.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use txn_substrate::{Database, DbConfig};

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(40);
    group.bench_function("rw_txn_single_thread", |b| {
        let db = Database::new(DbConfig::named("d"));
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("k{}", i % 64);
            i += 1;
            let mut t = db.begin();
            let cur = t.get(&key).unwrap().and_then(|v| v.as_int()).unwrap_or(0);
            t.put(&key, cur + 1).unwrap();
            t.commit().unwrap();
        })
    });
    group.bench_function("wal_replay_10k_updates", |b| {
        let db = Database::new(DbConfig::named("d"));
        for i in 0..10_000u64 {
            let mut t = db.begin();
            t.put(&format!("k{}", i % 256), i as i64).unwrap();
            t.commit().unwrap();
        }
        b.iter(|| {
            db.crash();
            let replayed = db.recover();
            assert_eq!(replayed, 10_000);
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("contended_increment_threads", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let db = Arc::new(Database::new(DbConfig::named("d")));
                    let per = (iters as usize / threads).max(1);
                    let start = std::time::Instant::now();
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let db = Arc::clone(&db);
                            s.spawn(move || {
                                for i in 0..per {
                                    // 4 hot keys: heavy conflicts.
                                    let key = format!("hot{}", i % 4);
                                    loop {
                                        let mut t = db.begin();
                                        let cur = match t.get(&key) {
                                            Ok(v) => v.and_then(|v| v.as_int()).unwrap_or(0),
                                            Err(_) => continue,
                                        };
                                        if t.put(&key, cur + 1).is_err() {
                                            continue;
                                        }
                                        if t.commit().is_ok() {
                                            break;
                                        }
                                    }
                                }
                            });
                        }
                    });
                    start.elapsed()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, uncontended);
criterion_main!(benches);
