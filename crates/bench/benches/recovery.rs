//! Experiment B5 — forward-recovery cost: journal replay time vs the
//! number of journalled events (instances of the translated 8-step
//! saga accumulated into one journal).
//!
//! Shape claim: replay is linear in journal length; recovery of an
//! idle engine never re-executes completed work.

use bench::{run_workflow, saga_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wfms_engine::{recover_from, Journal, OrgModel};

/// Builds a journal with `instances` completed saga runs.
fn journal_events(instances: usize) -> (Vec<wfms_engine::Event>, wfms_model::ProcessDefinition) {
    let n = 8;
    let spec = atm::fixtures::linear_saga("s", n);
    let def = exotica::translate_saga(&spec).unwrap();
    let w = saga_world(n, 0);
    let engine = wfms_engine::Engine::new(Arc::clone(&w.0), Arc::clone(&w.1));
    engine.register(def.clone()).unwrap();
    for _ in 0..instances {
        let id = engine
            .start(&def.name, wfms_model::Container::empty())
            .unwrap();
        engine.run_to_quiescence(id).unwrap();
    }
    (engine.journal_events(), def)
}

fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    for instances in [2usize, 8, 32, 128] {
        let (events, def) = journal_events(instances);
        let label = events.len();
        group.bench_with_input(BenchmarkId::new("replay_events", label), &label, |b, _| {
            b.iter(|| {
                let w = saga_world(8, 0);
                let engine = recover_from(
                    Journal::new(),
                    events.clone(),
                    vec![def.clone()],
                    OrgModel::new(),
                    Arc::clone(&w.0),
                    Arc::clone(&w.1),
                )
                .unwrap();
                assert_eq!(engine.journal_events().len(), events.len());
            })
        });
    }
    // Baseline: running one instance from scratch, for comparison with
    // replaying one instance's journal.
    let spec = atm::fixtures::linear_saga("s", 8);
    let def = exotica::translate_saga(&spec).unwrap();
    group.bench_function("fresh_run_baseline", |b| {
        b.iter(|| {
            let w = saga_world(8, 0);
            assert!(run_workflow(&w, &def));
        })
    });
    group.finish();
}

criterion_group!(benches, recovery);
criterion_main!(benches);
