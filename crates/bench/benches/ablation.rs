//! Ablation — what does the Figure 2 block structure cost?
//!
//! The paper's construction wraps the forward phase and the
//! compensation phase in blocks (subprocess activities). The flat
//! variant produces the same behaviour with every activity at the top
//! level. Blocks buy modularity and per-phase containers; they cost a
//! child scope, extra navigation events and block finish/exit
//! processing per phase.
//!
//! Shape claim: the flat variant is slightly faster on the happy path
//! (no block overhead) and the gap narrows on compensating runs (the
//! work is dominated by compensation activities either way).

use bench::{run_workflow, saga_world, script};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txn_substrate::FailurePlan;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_blocks");
    group.sample_size(30);
    for n in [4usize, 16, 64] {
        let spec = atm::fixtures::linear_saga("s", n);
        let block = exotica::translate_saga(&spec).unwrap();
        let flat = exotica::translate_saga_flat(&spec).unwrap();
        group.bench_with_input(BenchmarkId::new("blocks_success", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                assert!(run_workflow(&w, &block));
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_success", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                assert!(run_workflow(&w, &flat));
            })
        });
        let mid = format!("S{}", n / 2 + 1);
        group.bench_with_input(BenchmarkId::new("blocks_compensating", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                script(&w, &[(&mid, FailurePlan::Always)]);
                assert!(!run_workflow(&w, &block));
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_compensating", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                script(&w, &[(&mid, FailurePlan::Always)]);
                assert!(!run_workflow(&w, &flat));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
