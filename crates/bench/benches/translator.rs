//! Experiment B7 — Exotica/FMTM pre-processor throughput: translation
//! time and emitted-FDL size vs specification size, plus the full
//! Figure 5 pipeline (spec text → validated template).
//!
//! Shape claim: translation is linear-ish in the number of steps
//! (quadratic lower-order terms from State-flag fan-out are visible
//! but small at realistic sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn translator(c: &mut Criterion) {
    let mut group = c.benchmark_group("translator");
    group.sample_size(40);
    for n in [4usize, 16, 64] {
        let spec = atm::fixtures::linear_saga("s", n);
        group.bench_with_input(BenchmarkId::new("translate_saga", n), &n, |b, _| {
            b.iter(|| exotica::translate_saga(&spec).unwrap())
        });
        let def = exotica::translate_saga(&spec).unwrap();
        group.bench_with_input(BenchmarkId::new("emit_fdl", n), &n, |b, _| {
            b.iter(|| wfms_fdl::emit(&def))
        });
        let fdl = wfms_fdl::emit(&def);
        group.bench_with_input(BenchmarkId::new("import_fdl", n), &n, |b, _| {
            b.iter(|| wfms_fdl::parse_and_validate(&fdl).unwrap())
        });
        let spec_text = exotica::emit_spec(&exotica::ParsedSpec::Saga(spec.clone()));
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &n, |b, _| {
            b.iter(|| exotica::run_pipeline(&spec_text).unwrap())
        });
    }
    group.bench_function("translate_flex_figure3", |b| {
        let spec = atm::fixtures::figure3_spec();
        b.iter(|| exotica::translate_flex(&spec).unwrap())
    });
    group.finish();
}

criterion_group!(benches, translator);
criterion_main!(benches);
