//! Experiment B1 — saga latency: native executor vs WFMS-hosted
//! (Figure 2 translation), sweeping the number of subtransactions.
//!
//! Shape claim: both are linear in n; the workflow engine adds a
//! modest constant factor (navigation, containers, journal) per step.

use bench::{run_saga_native, run_workflow, saga_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn saga_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("saga_scaling");
    group.sample_size(30);
    for n in [2usize, 4, 8, 16, 32, 64] {
        let spec = atm::fixtures::linear_saga("s", n);
        let def = exotica::translate_saga(&spec).unwrap();
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                assert!(run_saga_native(&w, &spec));
            })
        });
        group.bench_with_input(BenchmarkId::new("workflow", n), &n, |b, &n| {
            b.iter(|| {
                let w = saga_world(n, 0);
                assert!(run_workflow(&w, &def));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, saga_scaling);
criterion_main!(benches);
