//! Experiment B13 — compiled-template navigation: the indexed
//! navigator (interned activity ids, CSR adjacency, precompiled
//! condition plans, ready-heap) vs. the string-keyed reference
//! interpreter on chains of growing length.
//!
//! Each engine registers (and compiles) its template once; the timed
//! body is start + run-to-quiescence, i.e. pure navigation. Shape
//! claim: the reference interpreter rescans the definition after
//! every step (quadratic in chain length), the compiled navigator
//! pops a ready-heap (near-linear), so the speedup is ≥2× at 100
//! activities and widens with process size.

use bench::nav::{compiled_engine, reference_engine, run_compiled_once, run_reference_once};
use bench::{chain_process, plain_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn nav_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("nav_compiled");
    group.sample_size(20);
    for n in [25usize, 100, 400] {
        let def = chain_process(n, "ok");
        let w = plain_world(0);
        let mut reference = reference_engine(&w, &def);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| run_reference_once(&mut reference, "chain"))
        });
        let engine = compiled_engine(&w, &def);
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| run_compiled_once(&engine, "chain"))
        });
    }
    group.finish();
}

criterion_group!(benches, nav_compiled);
criterion_main!(benches);
