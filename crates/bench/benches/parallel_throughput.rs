//! Experiment B14 — multi-instance scheduler throughput: `run_all`
//! (sequential) vs. `run_all_parallel(n)` on 1 000 saga-shaped
//! instances with pure programs.
//!
//! Shape claim: instances are independent, so throughput scales with
//! worker count (≥3× at 8 workers) until navigation becomes
//! memory-bound; the sharded journal merge keeps the output
//! byte-identical to the sequential run.

use bench::nav::{engine_with_instances, pure_saga_world, saga_process};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

const STEPS: usize = 8;
const INSTANCES: usize = 1_000;

fn parallel_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_throughput");
    group.sample_size(10);
    let def = saga_process(STEPS);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        // Engine construction and instance seeding are
                        // setup, not scheduler work: time only the run.
                        let w = pure_saga_world(STEPS);
                        let engine = engine_with_instances(&w, &def, INSTANCES);
                        let start = Instant::now();
                        if workers == 1 {
                            engine.run_all().unwrap();
                        } else {
                            engine.run_all_parallel(workers).unwrap();
                        }
                        total += start.elapsed();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_throughput);
criterion_main!(benches);
