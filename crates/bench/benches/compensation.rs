//! Experiment B2 — compensation cost vs abort position: a 16-step saga
//! aborted at step j commits j−1 steps and compensates them in reverse;
//! dead path elimination retires the rest.
//!
//! Shape claim: run time grows with j (more forward work + more
//! compensations); the j = none (success) case is the upper envelope
//! of forward work with zero compensations.

use bench::{run_saga_native, run_workflow, saga_world, script};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txn_substrate::FailurePlan;

const N: usize = 16;

fn compensation(c: &mut Criterion) {
    let spec = atm::fixtures::linear_saga("s", N);
    let def = exotica::translate_saga(&spec).unwrap();
    let mut group = c.benchmark_group("compensation");
    group.sample_size(30);
    for j in [1usize, 4, 8, 12, 16] {
        let label = format!("S{j}");
        group.bench_with_input(BenchmarkId::new("workflow_abort_at", j), &j, |b, _| {
            b.iter(|| {
                let w = saga_world(N, 0);
                script(&w, &[(&label, FailurePlan::Always)]);
                assert!(!run_workflow(&w, &def));
            })
        });
        group.bench_with_input(BenchmarkId::new("native_abort_at", j), &j, |b, _| {
            b.iter(|| {
                let w = saga_world(N, 0);
                script(&w, &[(&label, FailurePlan::Always)]);
                assert!(!run_saga_native(&w, &spec));
            })
        });
    }
    group.bench_function("workflow_success", |b| {
        b.iter(|| {
            let w = saga_world(N, 0);
            assert!(run_workflow(&w, &def));
        })
    });
    group.finish();
}

criterion_group!(benches, compensation);
criterion_main!(benches);
