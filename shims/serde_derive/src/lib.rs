//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly over
//! `proc_macro::TokenStream` (no syn/quote in this environment).
//!
//! Supported input shapes — exactly what this workspace uses:
//! plain (non-generic) structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! `#[serde(...)]` attributes are NOT supported and other attributes
//! are ignored. Unsupported shapes produce a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ---- parsed shape ------------------------------------------------------

struct Input {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(iter: &mut Iter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracket group of the attribute.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Consumes tokens until a comma at angle-bracket depth zero (the end
/// of a field type or enum discriminant). Returns after eating the
/// comma, or at end of stream.
fn skip_to_top_level_comma(iter: &mut Iter) {
    let mut angle_depth = 0i32;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses `name: Type, ...` field lists (struct bodies and struct-like
/// enum variants), returning the field names in order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    _ => return Err(format!("expected `:` after field `{id}`")),
                }
                skip_to_top_level_comma(&mut iter);
            }
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
        }
    }
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut iter: Iter = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            return count;
        }
        count += 1;
        skip_to_top_level_comma(&mut iter);
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let kind = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        iter.next();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        iter.next();
                        VariantKind::Named(fields)
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name, kind });
                // Eats an optional `= discriminant` and the trailing comma.
                skip_to_top_level_comma(&mut iter);
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter: Iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the serde shim derive"
        ));
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                shape: Shape::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---- code generation ---------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, unreachable_patterns, clippy::all)]\n";

fn named_fields_to_content(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Content::Str(::std::string::String::from({f:?})), \
                 ::serde::Serialize::to_content(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn named_fields_from_content(
    type_path: &str,
    fields: &[String],
    source: &str,
    context: &str,
) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::Content::field({source}, {f:?}) {{ \
                   ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, \
                   ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::Error::msg(concat!(\"missing field `\", {f:?}, \"` in {context}\"))), \
                 }}"
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({type_path} {{ {} }})",
        inits.join(", ")
    )
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => named_fields_to_content(fields, "self."),
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_content(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!(
                                    "::serde::Content::Seq(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![\
                                 (::serde::Content::Str(::std::string::String::from({vname:?})), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inner = named_fields_to_content(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![\
                                 (::serde::Content::Str(::std::string::String::from({vname:?})), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
           fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => named_fields_from_content(name, fields, "content", name),
        Shape::UnitStruct => format!(
            "match content {{ \
               ::serde::Content::Null => ::std::result::Result::Ok({name}), \
               _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected null for unit struct {name}\")), \
             }}"
        ),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match content {{ \
                   ::serde::Content::Seq(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}({})), \
                   _ => ::std::result::Result::Err(::serde::Error::msg(\
                     \"expected {n}-element sequence for {name}\")), \
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let decode = match &v.kind {
                        VariantKind::Unit => return None,
                        VariantKind::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(value)?))"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match value {{ \
                                   ::serde::Content::Seq(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{vname}({})), \
                                   _ => ::std::result::Result::Err(::serde::Error::msg(\
                                     \"expected {n}-element sequence for variant {vname} of {name}\")), \
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => named_fields_from_content(
                            &format!("{name}::{vname}"),
                            fields,
                            "value",
                            &format!("{name}::{vname}"),
                        ),
                    };
                    Some(format!("{vname:?} => {{ {decode} }}"))
                })
                .collect();
            format!(
                "match content {{ \
                   ::serde::Content::Str(tag) => match tag.as_str() {{ \
                     {} \
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                       ::std::format!(\"unknown unit variant `{{other}}` of {name}\"))), \
                   }}, \
                   ::serde::Content::Map(entries) if entries.len() == 1 => {{ \
                     let (tag_content, value) = &entries[0]; \
                     let tag = match tag_content {{ \
                       ::serde::Content::Str(s) => s.as_str(), \
                       _ => return ::std::result::Result::Err(::serde::Error::msg(\
                         \"expected string variant tag for {name}\")), \
                     }}; \
                     match tag {{ \
                       {} \
                       other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::Error::msg(\
                     \"expected string or single-entry map for enum {name}\")), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
           fn from_content(content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

// ---- entry points ------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde shim codegen error: {e}"))),
        Err(e) => error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde shim codegen error: {e}"))),
        Err(e) => error(&e),
    }
}
