//! Offline shim for `criterion`: runs each benchmark closure a small
//! fixed number of iterations and prints a one-line mean timing. Good
//! enough for the CI smoke run (`cargo bench -- --quick`); it does NOT
//! implement statistical sampling, HTML reports, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations measured per benchmark (after one warmup call).
const MEASURED_ITERS: u64 = 3;

/// Identifier for a parameterised benchmark (`name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            label: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing callback handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warmup
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURED_ITERS;
    }

    /// Lets the routine time itself: `routine(iters)` must return the
    /// elapsed time for `iters` iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.total = routine(MEASURED_ITERS);
        self.iters = MEASURED_ITERS;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!("{label:<48} time: {}/iter", format_duration(per_iter));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_one(name, |b| f(b));
        self
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every group (CLI flags such as `--quick`
/// are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // One warmup + MEASURED_ITERS timed calls.
        assert_eq!(runs, 1 + MEASURED_ITERS as u32);
    }

    #[test]
    fn iter_custom_records_reported_time() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(100 * iters))
        });
    }
}
