//! Offline shim for `crossbeam` over `std::sync::mpsc`.
//!
//! Only the `channel` module is provided, and only the operations the
//! workspace uses: `unbounded`, `bounded`, cloneable senders,
//! `recv`/`recv_timeout`/`try_recv`, and blocking iteration.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub use std::sync::mpsc::SendError;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value),
                Tx::Bounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        /// Blocking iterator draining the channel until all senders
        /// are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.rx.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.rx.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fan_in_drains_on_drop() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn bounded_recv_timeout_times_out_when_empty() {
            let (_tx, rx) = bounded::<i32>(1);
            assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        }
    }
}
