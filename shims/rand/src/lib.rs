//! Offline shim for `rand` 0.8: a deterministic SplitMix64 generator
//! behind the `StdRng` / `SeedableRng` / `Rng` names the workspace
//! uses. Not cryptographic; statistically fine for failure injection
//! and test data.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion from raw bits to a sampled value, used by [`Rng::gen`].
pub trait SampleUniform: Sized {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl SampleUniform for u64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 32) as u32
    }
}

impl SampleUniform for i64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as i64
    }
}

impl SampleUniform for usize {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as usize
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (for floats: `[0, 1)`).
    fn gen<T: SampleUniform>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::sample(&mut next)
    }

    /// Samples uniformly from `low..high` (half-open).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators shipped with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(5..9);
            assert!((5..9).contains(&x));
        }
    }
}
