//! Offline shim for `proptest`: a deterministic property-testing
//! mini-framework exposing the subset of the proptest 1.x API this
//! workspace uses — `Strategy` with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, regex-subset string
//! strategies, tuple/vec composition, `prop_oneof!`, `proptest!`,
//! `prop_assert*!`, `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from upstream: generation is seeded deterministically
//! (no environment overrides), failing inputs are reported but NOT
//! shrunk, and the regex dialect covers only what the workspace's
//! generators need (literals, classes with ranges / negation / `&&`
//! intersection, `\PC`, `\d`, `\w`, `\s`, and `{m}` / `{m,n}` / `?` /
//! `*` / `+` quantifiers).

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Runner configuration (field-compatible construction with
    /// upstream: `ProptestConfig::with_cases(n)` or struct update
    /// syntax over `Default`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Cap on strategy rejections (filters) per property.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Failure raised by `prop_assert!` and friends inside a property
    /// body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Drives one property: generates inputs and runs the body.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            Self {
                config,
                rng: TestRng::seeded(0xC0FF_EE00_5EED),
            }
        }

        /// Runs `test` against `config.cases` generated inputs.
        /// Returns the first failure, formatted with the offending
        /// input's debug representation.
        pub fn run<S>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), String>
        where
            S: crate::strategy::Strategy,
            S::Value: fmt::Debug,
        {
            let mut rejects = 0u32;
            for case in 0..self.config.cases {
                let value = loop {
                    match strategy.generate(&mut self.rng) {
                        Ok(v) => break v,
                        Err(r) => {
                            rejects += 1;
                            if rejects > self.config.max_global_rejects {
                                return Err(format!(
                                    "too many strategy rejections ({rejects}): {}",
                                    r.0
                                ));
                            }
                        }
                    }
                };
                let repr = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(format!(
                        "property failed at case {case}/{}: {e}\ninput: {repr}",
                        self.config.cases
                    ));
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generation attempt was rejected (e.g. by `prop_filter`).
    #[derive(Debug, Clone)]
    pub struct Rejected(pub String);

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Recursive strategies: `f` maps a strategy for the current
        /// depth to a strategy one level deeper; leaves come from
        /// `self`. `desired_size` / `expected_branch_size` are
        /// accepted for API compatibility but depth alone bounds the
        /// trees here.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                // Bias 2:1 toward recursing until the depth budget is
                // spent; the innermost level is pure leaves.
                current = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<T, Rejected>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejected> {
            Ok(self.0.clone())
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
            self.base.generate(rng).map(&self.f)
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejected> {
            let seed = self.base.generate(rng)?;
            (self.f)(seed).generate(rng)
        }
    }

    /// `prop_filter` adapter: retries locally, then rejects upward.
    pub struct Filter<S, F> {
        base: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
            for _ in 0..64 {
                let v = self.base.generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejected(self.reason.clone()))
        }
    }

    // ---- tuple composition (element-wise) ------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                    Ok(($(self.$idx.generate(rng)?,)+))
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
    );

    /// A `Vec` of strategies generates element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    // ---- numeric ranges ------------------------------------------------

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                    if self.start >= self.end {
                        return Err(Rejected("empty range".into()));
                    }
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    Ok((self.start as i128 + off as i128) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                    let (start, end) = (*self.start(), *self.end());
                    if start > end {
                        return Err(Rejected("empty range".into()));
                    }
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    Ok((start as i128 + off as i128) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    // ---- regex-subset string strategies --------------------------------

    /// String literals act as regex-subset generators.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> Result<String, Rejected> {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Regex-subset string generation backing `impl Strategy for &str`.
pub mod string {
    use crate::strategy::Rejected;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7E;

    fn printable_set() -> BTreeSet<char> {
        PRINTABLE.map(char::from).collect()
    }

    struct Piece {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    struct PatternParser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl<'a> PatternParser<'a> {
        fn fail(&self, msg: &str) -> ! {
            panic!("proptest shim: unsupported regex {:?}: {msg}", self.pattern)
        }

        fn escape_set(&mut self) -> BTreeSet<char> {
            match self.chars.next() {
                Some('P') => {
                    // `\PC` — "not in Unicode category Other": the
                    // shim generates printable ASCII.
                    match self.chars.next() {
                        Some('C') => printable_set(),
                        _ => self.fail("only \\PC is supported of \\P escapes"),
                    }
                }
                Some('d') => ('0'..='9').collect(),
                Some('w') => ('a'..='z')
                    .chain('A'..='Z')
                    .chain('0'..='9')
                    .chain(std::iter::once('_'))
                    .collect(),
                Some('s') => [' ', '\t', '\n', '\r'].into_iter().collect(),
                Some(c) => std::iter::once(c).collect(),
                None => self.fail("dangling backslash"),
            }
        }

        /// Parses one `[...]` class body (after the `[`), consuming
        /// the closing `]`. Supports negation, ranges, nested classes
        /// and `&&` intersection.
        fn class(&mut self) -> BTreeSet<char> {
            let mut result: Option<BTreeSet<char>> = None;
            loop {
                let (operand, done) = self.class_operand();
                result = Some(match result {
                    None => operand,
                    Some(acc) => acc.intersection(&operand).copied().collect(),
                });
                if done {
                    return result.unwrap_or_default();
                }
            }
        }

        fn class_operand(&mut self) -> (BTreeSet<char>, bool) {
            let negated = if self.chars.peek() == Some(&'^') {
                self.chars.next();
                true
            } else {
                false
            };
            let mut set = BTreeSet::new();
            let done = loop {
                match self.chars.next() {
                    None => self.fail("unterminated character class"),
                    Some(']') => break true,
                    Some('&') if self.chars.peek() == Some(&'&') => {
                        self.chars.next();
                        break false;
                    }
                    Some('[') => {
                        set.extend(self.class());
                    }
                    Some('\\') => {
                        set.extend(self.escape_set());
                    }
                    Some(c) => {
                        // Range `c-d` unless `-` is the last char.
                        if self.chars.peek() == Some(&'-') {
                            let mut lookahead = self.chars.clone();
                            lookahead.next();
                            if !matches!(lookahead.peek(), Some(']') | None) {
                                self.chars.next(); // the '-'
                                let end = match self.chars.next() {
                                    Some('\\') => {
                                        let s = self.escape_set();
                                        *s.iter().next().unwrap_or(&c)
                                    }
                                    Some(e) => e,
                                    None => self.fail("unterminated range"),
                                };
                                set.extend((c as u32..=end as u32).filter_map(char::from_u32));
                                continue;
                            }
                        }
                        set.insert(c);
                    }
                }
            };
            if negated {
                let universe = printable_set();
                (universe.difference(&set).copied().collect(), done)
            } else {
                (set, done)
            }
        }

        fn quantifier(&mut self) -> (u32, u32) {
            match self.chars.peek() {
                Some('{') => {
                    self.chars.next();
                    let mut min_text = String::new();
                    let mut max_text = None;
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(',') => max_text = Some(String::new()),
                            Some(c) if c.is_ascii_digit() => match &mut max_text {
                                Some(t) => t.push(c),
                                None => min_text.push(c),
                            },
                            _ => self.fail("bad {m,n} quantifier"),
                        }
                    }
                    let min: u32 = min_text.parse().unwrap_or(0);
                    let max = match max_text {
                        None => min,
                        Some(t) => t.parse().unwrap_or(min),
                    };
                    (min, max)
                }
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            }
        }

        fn pieces(&mut self) -> Vec<Piece> {
            let mut pieces = Vec::new();
            while let Some(c) = self.chars.next() {
                let chars: Vec<char> = match c {
                    '[' => self.class().into_iter().collect(),
                    '\\' => self.escape_set().into_iter().collect(),
                    '(' | ')' | '|' | '.' | '^' | '$' => {
                        self.fail("groups, alternation and anchors are not supported")
                    }
                    c => vec![c],
                };
                let (min, max) = self.quantifier();
                pieces.push(Piece { chars, min, max });
            }
            pieces
        }
    }

    /// Generates one string matching the regex-subset `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> Result<String, Rejected> {
        let mut parser = PatternParser {
            chars: pattern.chars().peekable(),
            pattern,
        };
        let pieces = parser.pieces();
        let mut out = String::new();
        for piece in &pieces {
            if piece.chars.is_empty() {
                return Err(Rejected(format!(
                    "empty character class in pattern {pattern:?}"
                )));
            }
            let reps = piece.min + (rng.next_u64() % (piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..reps {
                out.push(piece.chars[rng.index(piece.chars.len())]);
            }
        }
        Ok(out)
    }
}

pub mod arbitrary {
    use crate::strategy::{Rejected, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn sample(rng: &mut TestRng) -> Self {
            rng.bool()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn sample(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
            Ok(T::sample(rng))
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::{Rejected, Strategy};
    use crate::test_runner::TestRng;

    /// Element-count bounds accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, 0..4)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::{Rejected, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy for optional values (3:1 biased toward `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
            if rng.next_u64() % 4 == 0 {
                Ok(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---- macros ------------------------------------------------------------

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion: fails the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)*);
                let outcome = runner.run(&strategy, |($($arg,)*)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!("{}", message);
                }
            }
        )*
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` (the attribute is written by the caller) that
/// runs the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// The glob-imported API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection`, `prop::option` namespace.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subsets_generate_matching_strings() {
        let mut rng = crate::test_runner::TestRng::seeded(1);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[A-Za-z_][A-Za-z0-9_]{0,8}", &mut rng)
                .unwrap();
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic() || s.starts_with('_'));
        }
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[ -~&&[^\\\\]]{0,12}", &mut rng).unwrap();
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '\\'));
        }
        for _ in 0..50 {
            let s = crate::string::generate_from_pattern("\\PC{0,80}", &mut rng).unwrap();
            assert!(s.len() <= 80);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in -50i64..50, m in 1u32..9) {
            prop_assert!((-50..50).contains(&n));
            prop_assert!((1..9).contains(&m));
        }

        #[test]
        fn oneof_and_filter_compose(
            v in prop_oneof![Just(1u64), Just(2), (5u64..9).prop_map(|x| x)]
                .prop_filter("nonzero", |v| *v != 2)
        ) {
            prop_assert_ne!(&v, &2);
        }

        #[test]
        fn collections_and_options(
            xs in prop::collection::vec((0usize..5, any::<bool>()), 0..6),
            o in prop::option::of(Just("x")),
        ) {
            prop_assert!(xs.len() < 6);
            if let Some(s) = o {
                prop_assert_eq!(s, "x");
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (-5i64..5)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::seeded(3);
        for _ in 0..100 {
            let t = strat.generate(&mut rng).unwrap();
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
        }
    }
}
