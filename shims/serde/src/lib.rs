//! Offline shim for `serde`.
//!
//! Instead of upstream serde's visitor architecture, serialization goes
//! through a concrete [`Content`] tree: `Serialize` renders a value
//! into a `Content`, `Deserialize` rebuilds a value from one, and
//! `serde_json` (the shim) renders/parses `Content` as JSON. The
//! encoding follows serde's conventions (structs as maps, externally
//! tagged enums, `None` as null) so the JSON is recognisable, but the
//! only compatibility guarantee is self-round-trip — which is all this
//! workspace needs (WAL/journal/audit persistence and tests).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data tree every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order (keys are usually `Str`).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Looks up a string-keyed entry (struct field access).
    pub fn field(&self, name: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == name => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let n = match content {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    // Integer-keyed maps render their keys as JSON
                    // strings; accept the quoted form back.
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::msg("expected integer string"))?,
                    other => return Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let n = match content {
                    Content::U64(n) => *n,
                    Content::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("negative where unsigned expected"))?,
                    // Integer-keyed maps render their keys as JSON
                    // strings; accept the quoted form back.
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::msg("expected integer string"))?,
                    other => return Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected char, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, found {other:?}"))),
        }
    }
}

// ---- reference / wrapper impls -----------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

// ---- sequence impls ----------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($idx)),+].len();
                match content {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {LEN}-tuple, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// ---- map impls ---------------------------------------------------------

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, found {other:?}"))),
        }
    }
}

/// `serde::de` namespace stub so `serde::de::Error`-style paths resolve.
pub mod de {
    pub use crate::{Deserialize, Error};
}

/// `serde::ser` namespace stub.
pub mod ser {
    pub use crate::{Error, Serialize};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<i64>> = vec![Some(3), None, Some(-7)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<i64>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let c = m.to_content();
        assert_eq!(BTreeMap::<String, u64>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn cross_signedness_integers_tolerated() {
        assert_eq!(u64::from_content(&Content::I64(5)).unwrap(), 5);
        assert_eq!(i64::from_content(&Content::U64(5)).unwrap(), 5);
        assert!(u64::from_content(&Content::I64(-5)).is_err());
    }
}
