//! Offline shim for `parking_lot` over `std::sync`.
//!
//! Matches the parking_lot API surface this workspace uses: guards are
//! returned directly (no `Result`), poisoning is ignored (a panic while
//! holding a lock does not poison it for later users), and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as st;

/// Mutual exclusion primitive (std-backed, poison-ignoring).
pub struct Mutex<T: ?Sized> {
    inner: st::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: st::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Returns a mutable reference to the underlying data (requires
    /// exclusive access, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance exists so
/// [`Condvar::wait`] can temporarily take the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<st::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock (std-backed, poison-ignoring).
pub struct RwLock<T: ?Sized> {
    inner: st::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: st::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: st::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: st::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: st::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: st::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while
    /// waiting and reacquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
