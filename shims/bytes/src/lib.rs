//! Offline shim for `bytes`: the workspace declares the dependency but
//! never uses it, so this crate is intentionally empty.
