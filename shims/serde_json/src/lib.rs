//! Offline shim for `serde_json`: renders / parses the serde shim's
//! [`Content`] tree as JSON. Self-round-trip is guaranteed; byte
//! compatibility with upstream serde_json is not (and is not needed —
//! the workspace only reads JSON it wrote itself).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---- writing -----------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a map key: strings directly, integers as quoted numbers
/// (matching upstream serde_json's behaviour for integer-keyed maps).
fn write_key(out: &mut String, key: &Content) -> Result<()> {
    match key {
        Content::Str(s) => {
            write_escaped(out, s);
            Ok(())
        }
        Content::I64(n) => {
            write_escaped(out, &n.to_string());
            Ok(())
        }
        Content::U64(n) => {
            write_escaped(out, &n.to_string());
            Ok(())
        }
        other => Err(Error::new(format!(
            "map key must be a string, got {other:?}"
        ))),
    }
}

fn write_value(out: &mut String, value: &Content, pretty: bool, indent: usize) -> Result<()> {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        (Default::default(), String::new(), String::new())
    };
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            out.push_str(&x.to_string());
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_value(out, item, pretty, indent + 1)?;
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_key(out, k)?;
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    write_value(out, v, pretty, indent + 1)?;
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), false, 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON appended to `out` — the
/// group-commit path: callers reuse one buffer across a batch instead
/// of allocating a `String` per record. Produces exactly the bytes
/// [`to_string`] would.
pub fn append_to_string<T: Serialize + ?Sized>(out: &mut String, value: &T) -> Result<()> {
    write_value(out, &value.to_content(), false, 0)
}

/// Serializes `value` to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), true, 0)?;
    Ok(out)
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consumes one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Content::I64(n));
                }
            } else {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Content::U64(n));
                }
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("bad number"))
    }

    fn parse_value(&mut self, depth: u32) -> Result<Content> {
        if depth > 512 {
            return Err(self.err("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Content::Null),
            Some(b't') => self.eat_literal("true", Content::Bool(true)),
            Some(b'f') => self.eat_literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
        }
    }
}

/// Parses `text` and deserializes a `T` from it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let content = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f — λ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_collections_round_trip() {
        let mut m: BTreeMap<String, Vec<Option<u64>>> = BTreeMap::new();
        m.insert("xs".into(), vec![Some(1), None, Some(3)]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"xs":[1,null,3]}"#);
        assert_eq!(
            from_str::<BTreeMap<String, Vec<Option<u64>>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut m: BTreeMap<u64, String> = BTreeMap::new();
        m.insert(7, "seven".into());
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"7":"seven"}"#);
        assert_eq!(from_str::<BTreeMap<u64, String>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("4x").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,,2]").is_err());
    }
}
