//! The workflow features the paper says transaction models lack
//! (§3.3): organizational roles, worklists with claim semantics,
//! deadline notifications, user interventions and forward recovery —
//! demonstrated on a loan-approval business process with human steps.
//!
//! ```sh
//! cargo run --example office_workflow
//! ```

use std::sync::Arc;
use txn_substrate::{KvProgram, MultiDatabase, ProgramRegistry};
use wftx::engine::{audit, recover_from, Engine, EngineConfig, InstanceStatus, Journal, OrgModel};
use wftx::model::{Activity, Container, ContainerSchema, DataType, ProcessBuilder};

fn build_process() -> wftx::model::ProcessDefinition {
    ProcessBuilder::new("loan_approval")
        .describe("a business process with human decision steps")
        .output(ContainerSchema::of(&[("disbursed", DataType::Int)]))
        .program("Register", "register_application")
        .activity(
            Activity::program("CreditCheck", "credit_check")
                .describe("any clerk may run the credit check")
                .for_role("clerk")
                .with_deadline(48),
        )
        .activity(
            Activity::program("Approve", "approve_loan")
                .describe("a manager must approve")
                .for_role("manager")
                .with_deadline(24),
        )
        .program("Disburse", "disburse_funds")
        .connect_when("Register", "CreditCheck", "RC = 1")
        .connect_when("CreditCheck", "Approve", "RC = 1")
        .connect_when("Approve", "Disburse", "RC = 1")
        .map_to_process_output("Disburse", &[("RC", "disbursed")])
        .build()
        .expect("definition validates")
}

fn new_world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>, OrgModel) {
    let fed = MultiDatabase::new(0);
    fed.add_database("bank");
    let programs = Arc::new(ProgramRegistry::new());
    for (name, key) in [
        ("register_application", "application"),
        ("credit_check", "credit"),
        ("approve_loan", "approval"),
        ("disburse_funds", "funds"),
    ] {
        programs.register(Arc::new(KvProgram::write(name, "bank", key, "done")));
    }
    // The organization: one branch manager, two clerks reporting to
    // her. A person can hold several roles — the manager is also a
    // clerk.
    let org = OrgModel::new()
        .person("grace", &["manager", "clerk"])
        .person_under("ann", &["clerk"], "grace", 2)
        .person_under("bob", &["clerk"], "grace", 2);
    (fed, programs, org)
}

fn main() {
    let (fed, programs, org) = new_world();
    let engine = Engine::with_config(
        Arc::clone(&fed),
        Arc::clone(&programs),
        EngineConfig {
            org: org.clone(),
            ..EngineConfig::default()
        },
    );
    engine.register(build_process()).unwrap();
    let id = engine.start("loan_approval", Container::empty()).unwrap();

    // Automatic steps run; the credit check waits for a human.
    engine.run_to_quiescence(id).unwrap();
    println!("worklists after automatic steps:");
    for person in ["ann", "bob", "grace"] {
        let items: Vec<String> = engine
            .worklist(person)
            .iter()
            .map(|it| format!("{} ({})", it.path, it.id))
            .collect();
        println!("  {person}: {items:?}");
    }

    // The same item is visible to every clerk; ann claims it and it
    // vanishes from the other worklists — the paper's load balancing.
    let item = engine.worklist("ann")[0].clone();
    engine.claim(item.id, "ann").unwrap();
    println!(
        "\nann claimed {}; bob now sees {:?}",
        item.id,
        engine.worklist("bob").len()
    );

    // Nobody touches the approval step for two days: the deadline
    // passes and the manager's manager — here grace herself manages
    // the clerks — is notified.
    engine.execute_item(item.id, "ann").unwrap();
    println!("\ncredit check done by ann; approval waits on grace");
    let notifications = engine.advance_clock(30);
    println!("after 30 ticks, notifications: {notifications:?}");

    // Crash the engine before grace gets to it. The journal is the
    // only thing that survives on the engine side; the bank's
    // databases are durable on their own.
    let events = engine.journal_events();
    engine.crash();
    println!(
        "\n-- engine crashed; recovering from {} journal events --",
        events.len()
    );

    let engine2 = recover_from(
        Journal::new(),
        events,
        vec![build_process()],
        org,
        Arc::clone(&fed),
        programs,
    )
    .unwrap();
    println!(
        "recovered; grace's worklist: {:?}",
        engine2
            .worklist("grace")
            .iter()
            .map(|it| it.path.clone())
            .collect::<Vec<_>>()
    );

    // Grace approves; the disbursement runs automatically.
    let item = engine2.worklist("grace")[0].clone();
    engine2.execute_item(item.id, "grace").unwrap();
    assert_eq!(engine2.status(id).unwrap(), InstanceStatus::Finished);
    println!(
        "\nprocess finished; disbursed = {:?}",
        engine2.output(id).unwrap().get("disbursed")
    );

    println!("\nfull audit trail:");
    for line in audit::render(&engine2.journal_events()) {
        println!("  {line}");
    }
}
