//! Quickstart: define a small workflow process with the builder, run
//! it on the engine against the transactional substrate, and inspect
//! the audit trail.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use txn_substrate::{KvProgram, MultiDatabase, ProgramOutcome, ProgramRegistry, Value};
use wftx::engine::{audit, Engine, InstanceStatus};
use wftx::model::{Activity, Container, ContainerSchema, DataType, ProcessBuilder};

fn main() {
    // 1. A federation with one local database, and two registered
    //    transactional programs.
    let fed = MultiDatabase::new(0);
    fed.add_database("orders");
    let programs = Arc::new(ProgramRegistry::new());
    programs.register(Arc::new(KvProgram::write(
        "reserve_stock",
        "orders",
        "stock/reserved",
        1i64,
    )));
    programs.register_fn("price_order", |ctx| {
        let qty = ctx.params.get("qty").and_then(|v| v.as_int()).unwrap_or(0);
        ProgramOutcome::Committed {
            rc: 1,
            outputs: [("total".to_string(), Value::Int(qty * 25))]
                .into_iter()
                .collect(),
        }
    });

    // 2. A two-step process: reserve stock, then price the order. The
    //    order quantity flows from the process input container into
    //    the pricing activity; the computed total flows out.
    let process = ProcessBuilder::new("order_entry")
        .describe("reserve stock, then price the order")
        .input(ContainerSchema::of(&[("quantity", DataType::Int)]))
        .output(ContainerSchema::of(&[("amount_due", DataType::Int)]))
        .program("Reserve", "reserve_stock")
        .activity(
            Activity::program("Price", "price_order")
                .with_input(ContainerSchema::of(&[("qty", DataType::Int)]))
                .with_output(ContainerSchema::of(&[("total", DataType::Int)])),
        )
        .connect_when("Reserve", "Price", "RC = 1")
        .map_process_input("Price", &[("quantity", "qty")])
        .map_to_process_output("Price", &[("total", "amount_due")])
        .build()
        .expect("definition validates");

    // 3. Run an instance.
    let engine = Engine::new(Arc::clone(&fed), programs);
    engine.register(process).unwrap();
    let mut input = Container::empty();
    input.set("quantity", Value::Int(4));
    let id = engine.start("order_entry", input).unwrap();
    let status = engine.run_to_quiescence(id).unwrap();
    assert_eq!(status, InstanceStatus::Finished);

    // 4. Results: the process output container and the audit trail.
    let output = engine.output(id).unwrap();
    println!("instance {id} finished");
    println!(
        "amount due: {}",
        output.get("amount_due").and_then(|v| v.as_int()).unwrap()
    );
    println!(
        "stock reserved in db: {:?}",
        fed.db("orders").unwrap().peek("stock/reserved")
    );
    println!("\naudit trail:");
    for line in audit::render(&engine.journal_events()) {
        println!("  {line}");
    }
}
