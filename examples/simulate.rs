//! Process simulation — one of the §3.3 features the paper credits
//! WFMSs with ("they do provide a great deal of support for …
//! monitoring, accounting, simulation …"): Monte-Carlo execution of
//! the Figure 3 flexible transaction with per-step business durations
//! and stochastic failures, reporting commit rates, path selection and
//! the makespan distribution.
//!
//! ```sh
//! cargo run --release --example simulate
//! ```

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
use wftx::engine::Engine;
use wftx::model::Container;

/// Business durations in hours (virtual-clock ticks).
const DURATIONS: &[(&str, u64)] = &[
    ("T1", 2),  // reserve
    ("T2", 8),  // contract (pivot)
    ("T3", 24), // manual fallback processing (retriable)
    ("T4", 4),  // payment authorization (pivot)
    ("T5", 6),  // shipping leg A
    ("T6", 6),  // shipping leg B
    ("T7", 16), // alternative carrier (retriable)
    ("T8", 4),  // final confirmation (pivot)
];

fn main() {
    let spec = fixtures::figure3_spec();
    let def = exotica::translate_flex(&spec).expect("figure 3 translates");
    println!(
        "simulating {:?} — {} trials per failure level\n",
        def.name, 500
    );
    println!(
        "{:>6} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "p", "commit%", "via_p1", "via_p2", "via_p3", "p50(h)", "p90(h)", "max(h)"
    );

    for p10 in 0..=5 {
        let p = p10 as f64 / 10.0;
        let trials = 500;
        let mut makespans = Vec::with_capacity(trials);
        let mut via = [0u32; 3];
        let mut aborted = 0u32;

        for trial in 0..trials {
            let fed = MultiDatabase::new(10_000 + trial as u64);
            fed.add_database("db");
            let registry = Arc::new(ProgramRegistry::new());
            for (step, hours) in DURATIONS {
                registry.register(Arc::new(
                    KvProgram::write(&format!("prog_{step}"), "db", step, 1i64)
                        .with_label(step)
                        .with_duration(*hours),
                ));
                registry.register(Arc::new(
                    KvProgram::write(&format!("comp_{step}"), "db", step, Value::Int(-1))
                        .with_duration(hours / 2),
                ));
            }
            // Pivots and compensatables fail stochastically; retriable
            // steps are flaky but bounded (they must eventually
            // commit, so a capped FirstN models their transient
            // failures).
            for st in &spec.steps {
                if st.class.is_retriable() {
                    fed.injector().set_plan(
                        &st.name,
                        FailurePlan::FirstN(if trial % 3 == 0 { 1 } else { 0 }),
                    );
                } else {
                    fed.injector()
                        .set_plan(&st.name, FailurePlan::Probability { p });
                }
            }

            let engine = Engine::new(Arc::clone(&fed), registry);
            engine.register(def.clone()).unwrap();
            let id = engine.start("figure3", Container::empty()).unwrap();
            engine.run_to_quiescence(id).unwrap();
            let out = engine.output(id).unwrap();
            let committed = out.get("Committed").and_then(|v| v.as_int()) == Some(1);
            if committed {
                for (k, count) in via.iter_mut().enumerate() {
                    if out
                        .get(&exotica::flexible::via_member(k))
                        .and_then(|v| v.as_int())
                        == Some(1)
                    {
                        *count += 1;
                        break;
                    }
                }
            } else {
                aborted += 1;
            }
            makespans.push(engine.clock().now());
        }

        makespans.sort_unstable();
        let q = |f: f64| makespans[((makespans.len() - 1) as f64 * f) as usize];
        let commit_pct = (trials as u32 - aborted) as f64 / trials as f64 * 100.0;
        println!(
            "{:>6.1} {:>7.1}% {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
            p,
            commit_pct,
            via[0],
            via[1],
            via[2],
            q(0.5),
            q(0.9),
            makespans.last().unwrap()
        );
    }

    println!(
        "\nreading: as per-step reliability degrades, commits shift from the\n\
         preferred path p1 to the fallbacks, and the makespan distribution\n\
         grows a long tail (failed-late runs pay forward work + compensation\n\
         + the fallback path). This is the §3.3 'simulation' capability: the\n\
         same engine, template and programs as production, run against a\n\
         virtual clock."
    );
}
