//! The Figure 3 flexible transaction, end to end: specification text
//! → Exotica pipeline → Figure 4 workflow process → execution on the
//! multidatabase under scripted failures, with the native flexible
//! transaction executor run alongside as the oracle.
//!
//! ```sh
//! cargo run --example flexible_multidb
//! ```

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
use wftx::engine::{audit, Engine, InstanceStatus};
use wftx::model::Container;

fn main() {
    // The specification, in the pre-processor's textual format.
    let spec_text = exotica::emit_spec(&exotica::ParsedSpec::Flexible(fixtures::figure3_spec()));
    println!("---- specification ----\n{spec_text}");

    let out = exotica::run_pipeline(&spec_text).expect("pipeline succeeds");
    println!(
        "translated to workflow process {:?}: {} activities ({} including blocks), depth {}",
        out.process.name,
        out.process.activities.len(),
        out.process.total_activities(),
        out.process.nesting_depth(),
    );

    let scenarios: &[(&str, Vec<(&str, FailurePlan)>)] = &[
        ("happy path (commits via p1)", vec![]),
        (
            "T8 aborts (compensate T6, T5; commit via p2)",
            vec![("T8", FailurePlan::Always)],
        ),
        (
            "T4 aborts (fall through to p3; T3 retried twice)",
            vec![("T4", FailurePlan::Always), ("T3", FailurePlan::FirstN(2))],
        ),
        (
            "T2 aborts (full abort; compensate T1)",
            vec![("T2", FailurePlan::Always)],
        ),
    ];

    for (title, plans) in scenarios {
        println!("==== {title} ====");
        let fed = MultiDatabase::new(0);
        let programs = Arc::new(ProgramRegistry::new());
        fixtures::register_figure3_programs(&fed, &programs);
        for (label, plan) in plans {
            fed.injector().set_plan(label, plan.clone());
        }

        let engine = Engine::new(Arc::clone(&fed), programs);
        engine.register(out.process.clone()).unwrap();
        let id = engine.start("figure3", Container::empty()).unwrap();
        assert_eq!(
            engine.run_to_quiescence(id).unwrap(),
            InstanceStatus::Finished
        );

        let output = engine.output(id).unwrap();
        let committed = output.get("Committed").and_then(|v| v.as_int()) == Some(1);
        let via = (0..3)
            .find(|k| {
                output
                    .get(&exotica::flexible::via_member(*k))
                    .and_then(|v| v.as_int())
                    == Some(1)
            })
            .map(|k| format!("p{}", k + 1))
            .unwrap_or_else(|| "-".into());
        println!(
            "outcome: {} {}",
            if committed {
                "COMMITTED via"
            } else {
                "ABORTED"
            },
            if committed { via } else { String::new() }
        );
        print!("markers:");
        for t in fixtures::FIGURE3_STEPS {
            match fixtures::marker(&fed, t) {
                Some(1) => print!(" {t}=committed"),
                Some(-1) => print!(" {t}=compensated"),
                _ => {}
            }
        }
        println!();

        let s = audit::summarize(&engine.journal_events(), id);
        println!(
            "navigation: {} executions, {} dead-path eliminations, {} reschedules",
            s.executions, s.eliminated, s.reschedules
        );

        // Oracle: the native executor under the same failure script.
        let plans_owned: Vec<(String, FailurePlan)> = plans
            .iter()
            .map(|(l, p)| (l.to_string(), p.clone()))
            .collect();
        let installer: exotica::verify::Installer<'_> = &fixtures::register_figure3_programs;
        let report =
            exotica::compare_flex(&fixtures::figure3_spec(), installer, &plans_owned, 7).unwrap();
        assert!(report.equivalent(), "{}", report.diff());
        println!("native executor agrees: OK\n");
    }
}
