//! A travel-booking saga through the full Exotica/FMTM pipeline
//! (Figure 5): textual specification → pre-processor → FDL →
//! import → executable template → run-time instances.
//!
//! Three scenarios are executed: everything succeeds; the payment
//! step aborts (booked legs are compensated in reverse order); and a
//! flaky compensation that needs retries.
//!
//! ```sh
//! cargo run --example trip_saga
//! ```

use std::sync::Arc;
use txn_substrate::{on_attempts, FailurePlan, KvProgram, MultiDatabase, ProgramRegistry};
use wftx::engine::{audit, Engine, InstanceStatus};
use wftx::model::Container;

const SPEC: &str = r#"
SAGA trip_booking
  STEP Flight PROGRAM "book_flight" COMPENSATION "cancel_flight"
  STEP Hotel  PROGRAM "book_hotel"  COMPENSATION "cancel_hotel"
  STEP Car    PROGRAM "book_car"    COMPENSATION "cancel_car"
  STEP Pay    PROGRAM "charge_card" COMPENSATION "refund_card"
END
"#;

fn install(fed: &Arc<MultiDatabase>, programs: &ProgramRegistry) {
    // Each booking lives on its own autonomous database, as in the
    // heterogeneous environments the paper targets.
    for (db, step, forward, comp) in [
        ("airline", "Flight", "book_flight", "cancel_flight"),
        ("hotel", "Hotel", "book_hotel", "cancel_hotel"),
        ("rental", "Car", "book_car", "cancel_car"),
        ("bank", "Pay", "charge_card", "refund_card"),
    ] {
        if fed.db(db).is_none() {
            fed.add_database(db);
        }
        programs.register(Arc::new(
            KvProgram::write(forward, db, step, "booked").with_label(step),
        ));
        programs.register(Arc::new(KvProgram::write(comp, db, step, "cancelled")));
    }
}

fn run_scenario(title: &str, plans: &[(&str, FailurePlan)]) {
    println!("==== {title} ====");
    let out = exotica::run_pipeline(SPEC).expect("pipeline succeeds");

    let fed = MultiDatabase::new(0);
    let programs = Arc::new(ProgramRegistry::new());
    install(&fed, &programs);
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }

    let engine = Engine::new(Arc::clone(&fed), programs);
    engine.register(out.process.clone()).unwrap();
    let id = engine.start("trip_booking", Container::empty()).unwrap();
    let status = engine.run_to_quiescence(id).unwrap();
    assert_eq!(status, InstanceStatus::Finished);

    let committed = engine
        .output(id)
        .unwrap()
        .get("Committed")
        .and_then(|v| v.as_int())
        == Some(1);
    println!(
        "outcome: {}",
        if committed {
            "trip booked"
        } else {
            "trip aborted, bookings compensated"
        }
    );
    for db in fed.names() {
        for (k, v) in fed.db(&db).unwrap().snapshot() {
            println!("  {db}: {k} = {v}");
        }
    }
    println!("trace:");
    for t in audit::trace(&engine.journal_events(), id) {
        println!("  {t}");
    }
    println!();
}

fn main() {
    // Show the generated FDL once: the pre-processor's actual output.
    let out = exotica::run_pipeline(SPEC).expect("pipeline succeeds");
    println!("---- FDL emitted by Exotica/FMTM ----");
    for line in out.fdl.lines().take(18) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", out.fdl.lines().count());

    run_scenario("scenario 1: all bookings succeed", &[]);
    run_scenario(
        "scenario 2: payment declined",
        &[("Pay", FailurePlan::Always)],
    );
    run_scenario(
        "scenario 3: payment declined, hotel cancellation flaky",
        &[
            ("Pay", FailurePlan::Always),
            ("cancel_hotel", on_attempts([0, 1])),
        ],
    );

    // The native saga executor agrees with the workflow execution in
    // every scenario (spot-check with the equivalence harness).
    let exotica::ParsedSpec::Saga(spec) = exotica::parse_spec(SPEC).unwrap() else {
        unreachable!()
    };
    let installer: exotica::verify::Installer<'_> = &|fed, reg| install(fed, reg);
    let report = exotica::compare_saga(
        &spec,
        installer,
        &[("Pay".to_string(), FailurePlan::Always)],
        99,
    )
    .unwrap();
    assert!(report.equivalent(), "{}", report.diff());
    println!("equivalence check vs native saga executor: OK");
}
