-- The flexible transaction of Figure 3 (Alonso et al., ICDE 1996).
-- Try:
--   cargo run -p exotica --bin fmtm -- translate examples/specs/figure3.flex
--   cargo run -p exotica --bin fmtm -- run examples/specs/figure3.flex --fail T8=always --trace
FLEXIBLE figure3
  STEP T1 PROGRAM "prog_T1" COMPENSATION "comp_T1"
  STEP T2 PROGRAM "prog_T2" PIVOT
  STEP T3 PROGRAM "prog_T3" RETRIABLE
  STEP T4 PROGRAM "prog_T4" PIVOT
  STEP T5 PROGRAM "prog_T5" COMPENSATION "comp_T5"
  STEP T6 PROGRAM "prog_T6" COMPENSATION "comp_T6"
  STEP T7 PROGRAM "prog_T7" RETRIABLE
  STEP T8 PROGRAM "prog_T8" PIVOT
  PATH T1 T2 T4 T5 T6 T8
  PATH T1 T2 T4 T7
  PATH T1 T2 T3
END
