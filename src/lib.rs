//! # wftx — Advanced Transaction Models in Workflow Contexts
//!
//! Facade crate re-exporting the whole stack. See the README for the
//! architecture and `DESIGN.md` for the paper-to-module map.
//!
//! * [`substrate`] — autonomous local databases (strict 2PL, WAL,
//!   failure injection): the multidatabase the subtransactions run on.
//! * [`model`] — the FlowMark/WfMC workflow meta-model (Figure 1).
//! * [`fdl`] — the FlowMark-Definition-Language-style textual format.
//! * [`engine`] — the navigator: execution, dead path elimination,
//!   worklists, organization, forward recovery.
//! * [`atm`] — advanced transaction models (sagas, flexible
//!   transactions) as specifications and native executors.
//! * [`exotica`] — the Exotica/FMTM pre-processor translating ATM
//!   specifications into workflow processes (Figures 2, 4 and 5).
//!
//! The headline act, end to end — a saga specification compiled to a
//! workflow process and executed with a scripted failure:
//!
//! ```
//! use std::sync::Arc;
//! use wftx::substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
//! use wftx::engine::{Engine, InstanceStatus};
//! use wftx::model::Container;
//!
//! // Figure 5, stage by stage: spec text → template (via FDL).
//! let out = wftx::exotica::run_pipeline(r#"
//!     SAGA transfer
//!       STEP Debit  PROGRAM "debit"  COMPENSATION "undo_debit"
//!       STEP Credit PROGRAM "credit" COMPENSATION "undo_credit"
//!     END
//! "#).unwrap();
//!
//! // A multidatabase with the programs the saga names.
//! let fed = MultiDatabase::new(0);
//! fed.add_database("bank");
//! let programs = Arc::new(ProgramRegistry::new());
//! programs.register(Arc::new(KvProgram::write("debit", "bank", "debit", 1i64).with_label("Debit")));
//! programs.register(Arc::new(KvProgram::write("undo_debit", "bank", "debit", Value::Int(-1))));
//! programs.register(Arc::new(KvProgram::write("credit", "bank", "credit", 1i64).with_label("Credit")));
//! programs.register(Arc::new(KvProgram::write("undo_credit", "bank", "credit", Value::Int(-1))));
//! // The credit leg always refuses: the saga must compensate.
//! fed.injector().set_plan("Credit", FailurePlan::Always);
//!
//! let engine = Engine::new(fed.clone(), programs);
//! engine.register(out.process).unwrap();
//! let id = engine.start("transfer", Container::empty()).unwrap();
//! assert_eq!(engine.run_to_quiescence(id).unwrap(), InstanceStatus::Finished);
//!
//! // García-Molina/Salem guarantee: the debit was compensated.
//! assert_eq!(engine.output(id).unwrap().get("Committed"), Some(&Value::Int(0)));
//! assert_eq!(fed.db("bank").unwrap().peek("debit"), Some(Value::Int(-1)));
//! assert_eq!(fed.db("bank").unwrap().peek("credit"), None);
//! ```

pub use atm;
pub use exotica;
pub use txn_substrate as substrate;
pub use wfms_engine as engine;
pub use wfms_fdl as fdl;
pub use wfms_model as model;
