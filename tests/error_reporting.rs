//! User-facing error rendering across the stack: the strings operators
//! and spec authors actually see. (Error *construction* is covered by
//! the functional tests; these pin the reporting surface.)

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry};
use wftx::engine::{Engine, EngineError};
use wftx::model::{Container, ProcessBuilder};

fn engine() -> Engine {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    Engine::new(fed, Arc::new(ProgramRegistry::new()))
}

#[test]
fn validation_errors_render_as_a_list() {
    let bad = ProcessBuilder::new("bad")
        .program("A", "p")
        .connect("A", "Ghost1")
        .connect("A", "Ghost2")
        .build_unchecked();
    let err = engine().register(bad).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("2 error(s)"), "{text}");
    assert!(text.contains("Ghost1"));
    assert!(text.contains("Ghost2"));
    assert!(text.contains("[bad]"));
}

#[test]
fn engine_errors_name_their_subjects() {
    let e = engine();
    let err = e.start("nope", Container::empty()).unwrap_err();
    assert_eq!(err.to_string(), "no process template named \"nope\"");

    let err = e.status(wftx::engine::InstanceId(7)).unwrap_err();
    assert_eq!(err.to_string(), "no instance inst#7");

    assert!(EngineError::StepLimit(5)
        .to_string()
        .contains("livelocked exit condition"));
    assert!(EngineError::BadActivityState {
        path: "Fwd/T1".into(),
        expected: "ready",
    }
    .to_string()
    .contains("\"Fwd/T1\" is not ready"));
}

#[test]
fn translate_errors_explain_the_rule() {
    let staged = atm::SagaSpec::staged(
        "par",
        vec![vec![
            atm::StepSpec::compensatable("A", "pa", "ca"),
            atm::StepSpec::compensatable("B", "pb", "cb"),
        ]],
    );
    let err = exotica::translate_saga(&staged).unwrap_err();
    assert!(err.to_string().contains("only linear sagas"));

    let bad = atm::SagaSpec::linear("b", vec![atm::StepSpec::pivot("P", "p")]);
    let err = exotica::translate_saga(&bad).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("not well-formed"), "{text}");
    assert!(text.contains("no compensating transaction"), "{text}");
}

#[test]
fn pipeline_errors_are_stage_tagged() {
    for (src, stage) in [
        ("not a spec", "stage 1"),
        ("SAGA s\nSTEP A PROGRAM \"p\"\nEND", "stage 2"),
        (
            "FLEXIBLE f\nSTEP A PROGRAM \"p\" COMPENSATION \"c\"\nSTEP B PROGRAM \"p\" RETRIABLE\nSTEP C PROGRAM \"p\" COMPENSATION \"c\"\nPATH A B\nPATH C B\nEND",
            "stage 3",
        ),
    ] {
        let err = exotica::run_pipeline(src).unwrap_err();
        assert!(
            err.to_string().contains(stage),
            "{src:?} should fail at {stage}: {err}"
        );
    }
}

#[test]
fn wellformed_errors_cite_the_violation() {
    let mut spec = atm::fixtures::figure3_spec();
    spec.steps
        .iter_mut()
        .find(|s| s.name == "T3")
        .unwrap()
        .class = txn_substrate::StepClass::Pivot;
    let errs = atm::check_flex(&spec);
    assert!(!errs.is_empty());
    let text: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
    assert!(
        text.iter().any(|t| t.contains("guarantee completion")),
        "{text:?}"
    );
}

#[test]
fn db_errors_render_ids_and_reasons() {
    use txn_substrate::{Database, DbConfig, FailurePlan, Injector};
    let inj = Injector::new(0);
    inj.set_plan("d/commit", FailurePlan::Always);
    let db = Database::new(DbConfig::named("d").with_injector(Arc::clone(&inj)));
    let mut t = db.begin();
    t.put("k", 1i64).unwrap();
    let err = t.commit().unwrap_err();
    let text = err.to_string();
    assert!(text.contains("unilaterally aborted"), "{text}");
    assert!(text.contains("d/commit"), "{text}");

    db.set_down(true);
    let mut t2 = db.begin();
    let err = t2.put("k", 1i64).unwrap_err();
    assert_eq!(err.to_string(), "database \"d\" is unavailable");
}

#[test]
fn recovery_error_names_the_missing_template() {
    let fed = MultiDatabase::new(0);
    let events = vec![wftx::engine::Event::InstanceStarted {
        instance: wftx::engine::InstanceId(1),
        process: "ghost".into(),
        input: Container::empty(),
        tenant: None,
        at: 0,
    }];
    let res = wftx::engine::recover_from(
        wftx::engine::Journal::new(),
        events,
        vec![],
        wftx::engine::OrgModel::new(),
        fed,
        Arc::new(ProgramRegistry::new()),
    );
    let Err(err) = res else {
        panic!("recovery must fail on an unknown template")
    };
    assert!(err.to_string().contains("\"ghost\""));
}

#[test]
fn deadline_renotifies_after_reschedule() {
    // A manual activity whose exit condition sends it back to ready:
    // each readiness period gets its own deadline notification.
    use txn_substrate::ProgramOutcome;
    use wftx::engine::{EngineConfig, OrgModel};
    use wftx::model::Activity;

    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("never_good", |_| ProgramOutcome::Committed {
        rc: 0, // exit condition RC = 1 fails: reschedule
        outputs: Default::default(),
    });
    let org = OrgModel::new()
        .person("boss", &["chief"])
        .person_under("ann", &["clerk"], "boss", 2);
    let def = ProcessBuilder::new("p")
        .activity(
            Activity::program("M", "never_good")
                .for_role("clerk")
                .with_exit("RC = 1")
                .with_deadline(5),
        )
        .build()
        .unwrap();
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let id = engine.start("p", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    // First deadline.
    assert_eq!(engine.advance_clock(6).len(), 1);
    assert!(engine.advance_clock(6).is_empty(), "no duplicate");
    // ann executes; exit condition fails; the activity is re-offered.
    let item = engine.worklist("ann")[0].clone();
    engine.execute_item(item.id, "ann").unwrap();
    let fresh = engine.worklist("ann");
    assert_eq!(fresh.len(), 1);
    assert_ne!(fresh[0].id, item.id, "a fresh offer");
    // The new readiness period deadlines independently.
    assert_eq!(engine.advance_clock(6).len(), 1, "re-notified");
}
