//! Operator interventions composed with the Exotica translations —
//! §3.3's "the user can stop an activity, restart it, force it to
//! finish" driving the Figure 2 failure machinery.

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry};
use wftx::engine::{ActState, Engine, EngineConfig, InstanceStatus, OrgModel};
use wftx::model::Container;

/// Force-finishing with rc = 0 drives the failure route (here: a
/// compensating saga) — the §3.3 "force it to finish" intervention
/// composed with the Figure 2 construction.
#[test]
fn force_finish_failure_route_on_nested_activity() {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    atm::fixtures::register_saga_programs(&fed, &registry, 3);
    let org = OrgModel::new().person("op", &["operator"]);
    let mut def = exotica::translate_saga(&atm::fixtures::linear_saga("s", 3)).unwrap();
    // Make S2 (inside the forward block) a manual operator step.
    {
        let wftx::model::ActivityKind::Block { process } = &mut def.activities[0].kind else {
            panic!("Forward is a block")
        };
        process.activities[1] = process.activities[1].clone().for_role("operator");
    }
    assert!(wftx::model::validate(&def).is_empty());

    let engine = Engine::with_config(
        Arc::clone(&fed),
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let id = engine.start("s", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    assert_eq!(
        engine.activity_state(id, "Forward/S2").unwrap().0,
        ActState::Ready
    );
    // The operator force-fails the pending step instead of running it.
    engine.force_finish(id, "Forward/S2", 0).unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    // S1 was compensated; S2's program never ran.
    assert_eq!(atm::fixtures::marker(&fed, "S1"), Some(-1));
    assert_eq!(atm::fixtures::marker(&fed, "S2"), None);
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(0));
}
